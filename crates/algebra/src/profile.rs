//! Per-operator execution profiles (`EXPLAIN ANALYZE`) and registry-level
//! algebra counters.
//!
//! A [`PlanProfile`] numbers the operators of one plan tree in **pre-order**
//! (the order [`Op::explain`](crate::Op::explain) prints them) and holds one
//! row of atomic statistics per node. The executor is handed the profile
//! through [`ExecCtx::profile`](crate::ExecCtx) and records calls, emitted
//! rows, and inclusive wall time per operator; [`Op::IndexPathScan`]
//! additionally records how many start values were answered from the
//! path-extent index versus the walk fallback.
//!
//! [`AlgebraMetrics`] is the registry-facing aggregate of the same events:
//! process-lifetime counters shared across queries, resolved once from a
//! [`MetricsRegistry`] and threaded through
//! [`ExecCtx::metrics`](crate::ExecCtx).
//!
//! Timing convention: a node's time **includes its children** (the
//! PostgreSQL `EXPLAIN ANALYZE` convention), and `calls` counts executor
//! invocations — the sub-plan of a `Semi`/`AntiSemi` runs once per input
//! row, so its `calls` can exceed 1 within a single query.

use crate::plan::Op;
use docql_obs::{Counter, MetricsRegistry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One operator's accumulated statistics.
#[derive(Debug, Default)]
struct NodeStats {
    calls: AtomicU64,
    rows: AtomicU64,
    nanos: AtomicU64,
    index_hits: AtomicU64,
    walk_fallbacks: AtomicU64,
}

/// The pre-order numbering and child table of one plan tree, flattened to
/// two arrays (CSR layout: `child_start[n]..child_start[n+1]` indexes
/// `child_ids`). Building it walks the tree; sharing it through an `Arc`
/// lets a cached plan pay that walk once, after which every traced
/// execution's [`PlanProfile`] is a single zeroed allocation.
#[derive(Debug)]
pub struct ProfileShape {
    child_start: Vec<u32>,
    child_ids: Vec<u32>,
}

fn build(op: &Op, children: &mut Vec<Vec<usize>>) -> usize {
    let id = children.len();
    children.push(Vec::new());
    let kids: Vec<usize> = op
        .children()
        .into_iter()
        .map(|c| build(c, children))
        .collect();
    children[id] = kids;
    id
}

impl ProfileShape {
    /// The shape of `plan` (node `0` is the root).
    pub fn of(plan: &Op) -> ProfileShape {
        let mut nested = Vec::new();
        build(plan, &mut nested);
        let mut child_start = Vec::with_capacity(nested.len() + 1);
        let mut child_ids = Vec::with_capacity(nested.len().saturating_sub(1));
        child_start.push(0);
        for kids in &nested {
            for k in kids {
                child_ids.push(u32::try_from(*k).unwrap_or(0));
            }
            child_start.push(u32::try_from(child_ids.len()).unwrap_or(u32::MAX));
        }
        ProfileShape {
            child_start,
            child_ids,
        }
    }

    /// Number of operators in the plan.
    pub fn len(&self) -> usize {
        self.child_start.len() - 1
    }

    /// True when the plan has no operators (a shape built from nothing).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn child(&self, node: usize, k: usize) -> usize {
        let (Some(start), Some(end)) = (self.child_start.get(node), self.child_start.get(node + 1))
        else {
            return 0;
        };
        let idx = (*start as usize).saturating_add(k);
        if idx >= *end as usize {
            return 0;
        }
        self.child_ids.get(idx).map(|c| *c as usize).unwrap_or(0)
    }
}

/// Per-operator statistics for one plan, indexed by pre-order position.
///
/// Built once per profiled execution from the plan tree (or, on the traced
/// cached-plan path, from a shared [`ProfileShape`]); recording uses
/// relaxed atomics so the profile can be shared (the executor takes it by
/// shared reference through `ExecCtx`).
#[derive(Debug)]
pub struct PlanProfile {
    /// One row per individually tracked operator, plus (when the plan is
    /// larger than the tracking cap) a trailing overflow row that
    /// accumulates every remaining operator. Generalized-path plans fan
    /// out to thousands of union branches; tracking them all would turn
    /// each record into a cold cache miss on a fresh multi-hundred-KB
    /// allocation, for statistics a trace would aggregate anyway.
    nodes: Vec<NodeStats>,
    /// Ids `0..tracked` get individual rows; everything else folds into
    /// the overflow row at index `tracked`.
    tracked: usize,
    shape: Arc<ProfileShape>,
    timed: bool,
}

impl PlanProfile {
    /// A zeroed profile shaped like `plan` (node `0` is the plan root),
    /// tracking every operator individually — the `EXPLAIN ANALYZE` shape.
    pub fn new(plan: &Op) -> PlanProfile {
        PlanProfile::from_shape(Arc::new(ProfileShape::of(plan)), true, usize::MAX)
    }

    /// Like [`PlanProfile::new`], but the executor skips the per-operator
    /// clock reads: `calls`, `rows`, and the scan split are still counted
    /// (relaxed atomics), `nanos` stays zero. The sub-plan of a semi-join
    /// re-enters the instrumentation shell once per input row, so two
    /// `Instant::now` calls per entry dominate tight plans — this is what
    /// lets query *tracing* collect estimated-vs-actual rows within its
    /// few-percent overhead budget, where `EXPLAIN ANALYZE` keeps full
    /// timing.
    pub fn untimed(plan: &Op) -> PlanProfile {
        PlanProfile::from_shape(Arc::new(ProfileShape::of(plan)), false, usize::MAX)
    }

    /// A profile over a prebuilt (typically plan-cached) shape. `timed`
    /// selects whether the executor reads the clock per operator call;
    /// `max_tracked` bounds the individually tracked operators (the rest
    /// share one overflow row — see the `nodes` field).
    pub fn from_shape(shape: Arc<ProfileShape>, timed: bool, max_tracked: usize) -> PlanProfile {
        let tracked = shape.len().min(max_tracked.max(1));
        let rows = if tracked < shape.len() {
            tracked + 1
        } else {
            tracked
        };
        let nodes = (0..rows).map(|_| NodeStats::default()).collect();
        PlanProfile {
            nodes,
            tracked,
            shape,
            timed,
        }
    }

    /// Does the executor read the clock for this profile?
    pub fn is_timed(&self) -> bool {
        self.timed
    }

    /// Number of operators in the profiled plan.
    pub fn len(&self) -> usize {
        self.shape.len()
    }

    /// Whether the profile covers no operators (never true for a profile
    /// built from a plan — every plan has at least one node).
    pub fn is_empty(&self) -> bool {
        self.shape.len() == 0
    }

    /// Number of operators with individual statistics rows; operators at
    /// ids `tracked()..len()` fold into one shared overflow row.
    pub fn tracked(&self) -> usize {
        self.tracked
    }

    /// The pre-order id of `node`'s `k`-th child (in
    /// [`Op::children`](crate::Op::children) order). Out-of-range lookups
    /// return node `0` rather than panicking; they indicate a profile built
    /// from a different plan than the one executing.
    pub fn child(&self, node: usize, k: usize) -> usize {
        self.shape.child(node, k)
    }

    /// Unsynchronized add on an atomic cell: executor recording is
    /// single-writer (one thread runs a plan), so a relaxed load + store
    /// beats the read-modify-write a `fetch_add` would lock the bus for —
    /// it shows up, the sub-plan of a semi-join records once per input
    /// row. Concurrent *readers* (a trace snapshot racing the run) stay
    /// race-free and at worst observe the previous value.
    #[inline]
    fn bump(cell: &AtomicU64, delta: u64) {
        cell.store(
            cell.load(Ordering::Relaxed).wrapping_add(delta),
            Ordering::Relaxed,
        );
    }

    pub(crate) fn record(&self, node: usize, nanos: u64, rows: u64) {
        // Past-the-cap operators share the overflow row at `tracked`; a
        // node id beyond even that (a profile built from a different plan)
        // misses `nodes` entirely and is ignored.
        if let Some(n) = self.nodes.get(node.min(self.tracked)) {
            Self::bump(&n.calls, 1);
            Self::bump(&n.rows, rows);
            Self::bump(&n.nanos, nanos);
        }
    }

    pub(crate) fn record_scan(&self, node: usize, index_hits: u64, walk_fallbacks: u64) {
        if let Some(n) = self.nodes.get(node.min(self.tracked)) {
            Self::bump(&n.index_hits, index_hits);
            Self::bump(&n.walk_fallbacks, walk_fallbacks);
        }
    }

    /// Executor invocations of `node`.
    pub fn calls(&self, node: usize) -> u64 {
        self.stat(node, |n| &n.calls)
    }

    /// Rows emitted by `node` across all calls.
    pub fn rows(&self, node: usize) -> u64 {
        self.stat(node, |n| &n.rows)
    }

    /// Inclusive nanoseconds spent in `node` (children included).
    pub fn nanos(&self, node: usize) -> u64 {
        self.stat(node, |n| &n.nanos)
    }

    /// Start values `node` answered from the path-extent index (nonzero only
    /// for `IndexPathScan` operators).
    pub fn index_hits(&self, node: usize) -> u64 {
        self.stat(node, |n| &n.index_hits)
    }

    /// Start values `node` answered by the fallback walk.
    pub fn walk_fallbacks(&self, node: usize) -> u64 {
        self.stat(node, |n| &n.walk_fallbacks)
    }

    /// Rows emitted by the plan root (node `0`) — the plan's result
    /// cardinality before head projection and deduplication.
    pub fn root_rows(&self) -> u64 {
        self.rows(0)
    }

    /// Total rows emitted across all operators.
    pub fn total_rows(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.rows.load(Ordering::Relaxed))
            .sum()
    }

    /// Total index-hit / walk-fallback counts across all scan operators.
    pub fn scan_totals(&self) -> (u64, u64) {
        let hits = self
            .nodes
            .iter()
            .map(|n| n.index_hits.load(Ordering::Relaxed))
            .sum();
        let walks = self
            .nodes
            .iter()
            .map(|n| n.walk_fallbacks.load(Ordering::Relaxed))
            .sum();
        (hits, walks)
    }

    fn stat(&self, node: usize, f: impl Fn(&NodeStats) -> &AtomicU64) -> u64 {
        // Individual statistics exist only for tracked operators; an
        // untracked id would otherwise read the overflow row.
        if node >= self.tracked {
            return 0;
        }
        self.nodes
            .get(node)
            .map(|n| f(n).load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// The per-node annotation appended to explain lines by [`render`]:
    /// `calls=…, rows=…, time=…` plus index-hit/walk-fallback counts when a
    /// scan recorded any.
    ///
    /// [`render`]: PlanProfile::render
    pub fn annotation(&self, node: usize) -> String {
        let calls = self.calls(node);
        if calls == 0 {
            return "never executed".to_string();
        }
        let mut s = format!(
            "calls={calls} rows={} time={:?}",
            self.rows(node),
            Duration::from_nanos(self.nanos(node)),
        );
        let (hits, walks) = (self.index_hits(node), self.walk_fallbacks(node));
        if hits != 0 || walks != 0 {
            s.push_str(&format!(" index_hits={hits} walk_fallbacks={walks}"));
        }
        s
    }

    /// Render `plan` as its explain tree with this profile's statistics
    /// appended to each operator line. `plan` must be the plan this profile
    /// was built from.
    pub fn render(&self, plan: &Op) -> String {
        plan.explain_annotated(&|id| format!("  [{}]", self.annotation(id)))
    }

    /// Render `plan` with planner estimates and measured actuals side by
    /// side on every operator line — the estimate-vs-actual view `EXPLAIN
    /// ANALYZE` prints for cost-based plans. Both the estimates and this
    /// profile must have been built from `plan` (they share its pre-order
    /// numbering).
    pub fn render_with_estimates(&self, plan: &Op, est: &crate::cost::PlanEstimates) -> String {
        plan.explain_annotated(&|id| {
            format!("  [{} | {}]", est.annotation(id), self.annotation(id))
        })
    }

    /// Flatten this profile into per-operator trace spans
    /// ([`docql_obs::OpSpan`]), pre-order with tree depth, pairing each
    /// operator's measured actuals with its estimated rows when the plan
    /// was costed. `plan` must be the plan this profile (and `est`) were
    /// built from.
    ///
    /// At most `max_spans` operators are rendered individually; the rest
    /// collapse into one trailing aggregate span (calls/rows/ns summed, no
    /// label formatting). Generalized-path queries fan a union out to
    /// thousands of branches, and rendering a label string per node — then
    /// retaining all of them in the flight-recorder ring — would dominate
    /// the cost of tracing such a query. Pre-order ids are assigned in
    /// emission order, so the elided tail is exactly ids
    /// `max_spans..len()`.
    pub fn op_spans(
        &self,
        plan: &Op,
        est: Option<&crate::cost::PlanEstimates>,
        max_spans: usize,
    ) -> Vec<docql_obs::OpSpan> {
        let mut labels = Vec::new();
        collect_labels(plan, 0, max_spans.max(1).min(self.len()), &mut labels);
        self.op_spans_with_labels(&labels, est)
    }

    /// [`PlanProfile::op_spans`] against pre-rendered labels — no plan walk
    /// and no string formatting. This is the traced cached-plan path: the
    /// labels come from the plan's one-time
    /// [`Algebraized::trace_shape`](crate::Algebraized::trace_shape)
    /// rendering, and each span's label is an `Arc` clone.
    pub fn op_spans_with_labels(
        &self,
        labels: &[(u32, Arc<str>)],
        est: Option<&crate::cost::PlanEstimates>,
    ) -> Vec<docql_obs::OpSpan> {
        let emitted = labels.len().min(self.tracked);
        let truncated = emitted < self.len();
        let mut out = Vec::with_capacity(emitted + usize::from(truncated));
        for (id, (depth, label)) in labels.iter().enumerate().take(emitted) {
            out.push(docql_obs::OpSpan {
                depth: *depth,
                label: Arc::clone(label),
                calls: self.calls(id),
                rows: self.rows(id),
                ns: self.nanos(id),
                est_rows: est.map(|e| e.rows(id).round().clamp(0.0, 1e15) as u64),
                index_hits: self.index_hits(id),
                walk_fallbacks: self.walk_fallbacks(id),
            });
        }
        if truncated {
            // Sum the statistics rows past the emitted prefix — for a
            // capped profile that is just the overflow row, never a scan
            // over thousands of per-node entries.
            let (mut calls, mut rows, mut ns, mut hits, mut falls) = (0u64, 0u64, 0u64, 0u64, 0u64);
            for n in &self.nodes[emitted..] {
                calls += n.calls.load(Ordering::Relaxed);
                rows += n.rows.load(Ordering::Relaxed);
                ns += n.nanos.load(Ordering::Relaxed);
                hits += n.index_hits.load(Ordering::Relaxed);
                falls += n.walk_fallbacks.load(Ordering::Relaxed);
            }
            out.push(docql_obs::OpSpan {
                depth: 0,
                label: format!("... {} more operators (aggregated)", self.len() - emitted).into(),
                calls,
                rows,
                ns,
                est_rows: None,
                index_hits: hits,
                walk_fallbacks: falls,
            });
        }
        out
    }
}

/// Collect `(depth, label)` pairs for the first `cap` operators of `plan`
/// in pre-order — the label half of a trace's op spans, separated from the
/// per-execution counters so a cached plan can render it once.
pub(crate) fn collect_labels(op: &Op, depth: u32, cap: usize, out: &mut Vec<(u32, Arc<str>)>) {
    if out.len() >= cap {
        return;
    }
    out.push((depth, op.node_label().into()));
    for c in op.children() {
        collect_labels(c, depth + 1, cap, out);
    }
}

/// Registry-level counters for algebra execution, shared across queries.
///
/// Cloning shares the underlying cells (see [`Counter`]).
#[derive(Clone, Debug, Default)]
pub struct AlgebraMetrics {
    /// Operator invocations (one per `calls` in profile terms).
    pub ops_executed: Counter,
    /// Rows emitted by all operators.
    pub rows_emitted: Counter,
    /// `IndexPathScan` start values answered from the path-extent index.
    pub index_scan_extent_hits: Counter,
    /// `IndexPathScan` start values answered by the fallback walk.
    pub index_scan_walk_fallbacks: Counter,
}

impl AlgebraMetrics {
    /// Free-standing counters, not attached to any registry.
    pub fn new() -> AlgebraMetrics {
        AlgebraMetrics::default()
    }

    /// Resolve (creating if absent) the algebra counters in `registry`.
    pub fn register(registry: &MetricsRegistry) -> AlgebraMetrics {
        AlgebraMetrics {
            ops_executed: registry.counter("docql_algebra_ops_executed_total"),
            rows_emitted: registry.counter("docql_algebra_rows_emitted_total"),
            index_scan_extent_hits: registry.counter("docql_index_scan_extent_hits_total"),
            index_scan_walk_fallbacks: registry.counter("docql_index_scan_walk_fallbacks_total"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use docql_model::sym;

    fn sample_plan() -> Op {
        // Project(0) -> Semi(1) { Walk(2) -> Root(3), Unit(4) }
        Op::Project {
            vars: vec![1],
            input: Box::new(Op::Semi {
                input: Box::new(Op::Walk {
                    start: 0,
                    steps: vec![crate::WalkStep::UnnestList(None)],
                    out: Some(1),
                    input: Box::new(Op::Root {
                        name: sym("Items"),
                        out: 0,
                    }),
                }),
                sub: Box::new(Op::Unit),
            }),
        }
    }

    #[test]
    fn preorder_numbering_matches_tree() {
        let plan = sample_plan();
        let p = PlanProfile::new(&plan);
        assert_eq!(p.len(), 5);
        assert_eq!(p.child(0, 0), 1, "Project's child is Semi");
        assert_eq!(p.child(1, 0), 2, "Semi's input is Walk");
        assert_eq!(p.child(1, 1), 4, "Semi's sub is Unit (after Walk subtree)");
        assert_eq!(p.child(2, 0), 3, "Walk's input is Root");
        assert_eq!(p.child(9, 3), 0, "out of range falls back to the root id");
    }

    #[test]
    fn annotations_render_in_tree_order() {
        let plan = sample_plan();
        let p = PlanProfile::new(&plan);
        p.record(0, 1_500, 2);
        p.record(2, 700, 3);
        p.record_scan(2, 2, 1);
        let text = p.render(&plan);
        assert!(
            text.contains("Project #1  [calls=1 rows=2 time=1.5µs]"),
            "{text}"
        );
        assert!(text.contains("index_hits=2 walk_fallbacks=1"), "{text}");
        assert!(text.contains("never executed"), "{text}");
        assert_eq!(p.root_rows(), 2);
        assert_eq!(p.total_rows(), 5);
        assert_eq!(p.scan_totals(), (2, 1));
    }

    #[test]
    fn op_spans_follow_preorder_with_depth() {
        let plan = sample_plan();
        let p = PlanProfile::new(&plan);
        p.record(0, 1_500, 2);
        p.record(2, 700, 3);
        p.record_scan(2, 2, 1);
        let spans = p.op_spans(&plan, None, usize::MAX);
        assert_eq!(spans.len(), 5);
        assert_eq!(spans[0].depth, 0);
        assert!(spans[0].label.starts_with("Project"));
        assert_eq!(spans[0].calls, 1);
        assert_eq!(spans[0].rows, 2);
        assert_eq!(spans[0].est_rows, None);
        assert_eq!(spans[1].depth, 1, "Semi under Project");
        assert_eq!(spans[2].depth, 2, "Walk under Semi");
        assert_eq!(spans[2].index_hits, 2);
        assert_eq!(spans[2].walk_fallbacks, 1);
        assert_eq!(spans[4].depth, 2, "Unit is Semi's second child");
    }

    #[test]
    fn op_spans_cap_aggregates_the_preorder_tail() {
        let plan = sample_plan();
        let p = PlanProfile::new(&plan);
        p.record(0, 1_500, 2);
        p.record(2, 700, 3);
        p.record(4, 100, 7);
        p.record_scan(2, 2, 1);
        let spans = p.op_spans(&plan, None, 2);
        assert_eq!(spans.len(), 3, "2 real spans + 1 aggregate");
        assert!(spans[0].label.starts_with("Project"));
        assert_eq!(spans[1].depth, 1);
        let tail = &spans[2];
        assert!(tail.label.contains("3 more operators"), "{}", tail.label);
        assert_eq!(tail.calls, 2, "nodes 2 and 4 were recorded");
        assert_eq!(tail.rows, 10);
        assert_eq!(tail.ns, 800);
        assert_eq!(tail.index_hits, 2);
        assert_eq!(tail.walk_fallbacks, 1);
        assert_eq!(tail.est_rows, None);
    }

    #[test]
    fn untimed_profile_counts_without_timing() {
        let plan = sample_plan();
        let p = PlanProfile::untimed(&plan);
        assert!(!p.is_timed());
        assert!(PlanProfile::new(&plan).is_timed());
        p.record(0, 0, 2);
        assert_eq!(p.calls(0), 1);
        assert_eq!(p.rows(0), 2);
        assert_eq!(p.nanos(0), 0);
    }
}
