//! # docql-algebra — algebraization of the calculus (§5.4)
//!
//! A complex-object algebra with variant-based selection over heterogeneous
//! collections ([`plan`]), a compiler from path-variable-free calculus
//! queries to plans ([`compile`]), and the paper's algebraization: schema
//! analysis produces finite candidate valuations for path and attribute
//! variables (restricted semantics), turning a path-variable query into a
//! **union of path-free queries** ([`algebraize()`](algebraize::algebraize)).
//!
//! The paper's closing §5.4 remark is visible in code: under the liberal
//! path semantics candidate sets would be data-dependent, and the
//! algebraizer refuses — "our algebra should include some form of transitive
//! closure/fixpoint operator".

pub mod algebraize;
pub mod compile;
pub mod cost;
pub mod plan;
pub mod profile;

use std::fmt;

pub use algebraize::{
    algebraize, algebraize_with_stats, Algebraized, TraceShape, MAX_CANDIDATE_PRODUCT,
};
pub use compile::{compile_query, compile_query_with_stats};
pub use cost::{CostProfile, PlanEstimates, StatsSource, REPLAN_DIVERGENCE};
pub use plan::{ExecCtx, IndexPathScan, Op, WalkStep};
pub use profile::{AlgebraMetrics, PlanProfile};

/// Errors from compilation and algebraization.
#[derive(Debug, Clone, PartialEq)]
pub struct AlgebraError(pub String);

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "algebra error: {}", self.0)
    }
}

impl std::error::Error for AlgebraError {}

impl From<docql_guard::ExecError> for AlgebraError {
    /// Carries the guard trip through the stringly error channel; engines
    /// read the authoritative [`docql_guard::Guard::trip`] afterwards
    /// instead of parsing this message.
    fn from(e: docql_guard::ExecError) -> AlgebraError {
        AlgebraError(format!("interrupted: {e}"))
    }
}

/// Evaluate a query through the algebra: algebraize, execute the plan, and
/// return rows in the calculus result format.
pub fn eval_algebraic(
    q: &docql_calculus::Query,
    instance: &docql_model::Instance,
    interp: &docql_calculus::Interp,
) -> Result<Vec<Vec<docql_calculus::CalcValue>>, AlgebraError> {
    eval_algebraic_with(q, instance, interp, ExecCtx::default())
}

/// [`eval_algebraic`] with an execution context (path-extent index).
pub fn eval_algebraic_with(
    q: &docql_calculus::Query,
    instance: &docql_model::Instance,
    interp: &docql_calculus::Interp,
    ctx: ExecCtx<'_>,
) -> Result<Vec<Vec<docql_calculus::CalcValue>>, AlgebraError> {
    let algebraized = algebraize(q, instance.schema())?;
    eval_plan_with(&algebraized, q, instance, interp, ctx)
}

/// Execute an already-algebraized plan — the reuse path for plan caches:
/// algebraization (schema analysis + candidate substitution) is paid once
/// per query text, execution once per run. `q` must be the query `a` was
/// algebraized from (its head names the output columns).
pub fn eval_plan(
    a: &Algebraized,
    q: &docql_calculus::Query,
    instance: &docql_model::Instance,
    interp: &docql_calculus::Interp,
) -> Result<Vec<Vec<docql_calculus::CalcValue>>, AlgebraError> {
    eval_plan_with(a, q, instance, interp, ExecCtx::default())
}

/// [`eval_plan`] with an execution context: when `ctx` carries a path-extent
/// index, `IndexPathScan` operators in the plan read precomputed extents
/// instead of walking. The same cached plan serves both modes — the index
/// choice is a run-time decision.
pub fn eval_plan_with(
    a: &Algebraized,
    q: &docql_calculus::Query,
    instance: &docql_model::Instance,
    interp: &docql_calculus::Interp,
    ctx: ExecCtx<'_>,
) -> Result<Vec<Vec<docql_calculus::CalcValue>>, AlgebraError> {
    let mut ev = docql_calculus::Evaluator::new(instance, interp);
    // Filter/Assign operators evaluate atoms through this evaluator;
    // governance must reach the text predicates they call.
    ev.guard = ctx.guard;
    let rows = a.plan.execute_with(instance, &ev, ctx)?;
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    for row in rows {
        let mut tuple = Vec::with_capacity(q.head.len());
        let mut complete = true;
        for v in &q.head {
            match row.get(v) {
                Some(cv) => tuple.push(cv.clone()),
                None => {
                    complete = false;
                    break;
                }
            }
        }
        if complete && seen.insert(tuple.clone()) {
            out.push(tuple);
        }
    }
    Ok(out)
}
