//! Algebra operators over binding streams (§5.4).
//!
//! The algebra is a complex-object algebra "in the spirit of [3, 12]",
//! extended — as the paper sketches — with *variant-based selection* over
//! heterogeneous collections: the `Attr` walk step applies implicit
//! selectors through union markers. Crucially, **no operator enumerates
//! paths at run time**: plans only contain concrete navigation steps, which
//! is exactly what the algebraization buys over the calculus interpreter.

use docql_calculus::{Atom, CalcValue, DataTerm, Env, Evaluator, Var};
use docql_model::{Instance, Sym, Value};
use std::fmt;

/// One navigation step of a [`Op::Walk`].
#[derive(Debug, Clone, PartialEq)]
pub enum WalkStep {
    /// Select attribute (implicit selectors through unions; implicit deref).
    Attr(Sym),
    /// Dereference an oid.
    Deref,
    /// Index a list (or tuple-as-heterogeneous-list) with a constant.
    Index(usize),
    /// Index with the integer value currently bound to a variable.
    IndexVar(Var),
    /// Fan out over the elements of a list, optionally binding the index.
    UnnestList(Option<Var>),
    /// Fan out over the elements of a set, optionally binding the element.
    UnnestSet(Option<Var>),
    /// Fan out over any collection (list or set, through oids and markers).
    UnnestColl,
    /// Bind the value reached so far to a variable (zero-width).
    Bind(Var),
}

impl fmt::Display for WalkStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalkStep::Attr(a) => write!(f, ".{a}"),
            WalkStep::Deref => f.write_str("->"),
            WalkStep::Index(i) => write!(f, "[{i}]"),
            WalkStep::IndexVar(v) => write!(f, "[#{v}]"),
            WalkStep::UnnestList(Some(v)) => write!(f, "[*#{v}]"),
            WalkStep::UnnestList(None) => f.write_str("[*]"),
            WalkStep::UnnestSet(_) => f.write_str("{*}"),
            WalkStep::UnnestColl => f.write_str("unnest"),
            WalkStep::Bind(v) => write!(f, "(#{v})"),
        }
    }
}

/// A physical plan.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// One empty row.
    Unit,
    /// Bind a root of persistence's value.
    Root { name: Sym, out: Var },
    /// Navigate from a bound variable through concrete steps, fanning out at
    /// unnest steps; optionally bind the end value.
    Walk {
        input: Box<Op>,
        start: Var,
        steps: Vec<WalkStep>,
        out: Option<Var>,
    },
    /// Keep rows satisfying an atom (all variables bound).
    Filter { input: Box<Op>, atom: Atom },
    /// Compute a term into a variable.
    Assign {
        input: Box<Op>,
        var: Var,
        term: DataTerm,
    },
    /// Bag union of sub-plans (the algebraization's union of candidates).
    Union(Vec<Op>),
    /// Anti-semi-join: keep input rows for which `sub` yields nothing.
    AntiSemi { input: Box<Op>, sub: Box<Op> },
    /// Semi-join: keep input rows for which `sub` yields at least one row.
    Semi { input: Box<Op>, sub: Box<Op> },
    /// Projection with duplicate elimination.
    Project { input: Box<Op>, vars: Vec<Var> },
    /// Feed the output rows of `first` into `second` (used to graft a
    /// disjunction's Union onto its upstream plan).
    Pipe(Box<Op>, Box<Op>),
}

impl Op {
    /// Execute against an instance, producing binding rows.
    pub fn execute(
        &self,
        instance: &Instance,
        ev: &Evaluator<'_>,
    ) -> Result<Vec<Env>, crate::AlgebraError> {
        self.run(instance, ev, vec![Env::new()])
    }

    fn run(
        &self,
        instance: &Instance,
        ev: &Evaluator<'_>,
        input_rows: Vec<Env>,
    ) -> Result<Vec<Env>, crate::AlgebraError> {
        match self {
            Op::Unit => Ok(input_rows),
            Op::Root { name, out } => {
                let value = instance
                    .root(*name)
                    .map_err(|e| crate::AlgebraError(format!("root: {e}")))?
                    .clone();
                Ok(input_rows
                    .into_iter()
                    .map(|mut r| {
                        r.insert(*out, CalcValue::Data(value.clone()));
                        r
                    })
                    .collect())
            }
            Op::Walk {
                input,
                start,
                steps,
                out,
            } => {
                let rows = input.run(instance, ev, input_rows)?;
                let mut result = Vec::new();
                for row in rows {
                    let Some(CalcValue::Data(v)) = row.get(start).cloned() else {
                        continue;
                    };
                    walk(instance, &v, steps, row, *out, &mut result);
                }
                Ok(result)
            }
            Op::Filter { input, atom } => {
                let rows = input.run(instance, ev, input_rows)?;
                let mut result = Vec::new();
                for row in rows {
                    let kept = ev
                        .eval_formula(
                            &docql_calculus::Formula::Atom(atom.clone()),
                            vec![row.clone()],
                        )
                        .map_err(|e| crate::AlgebraError(e.to_string()))?;
                    // A filter must not bind — keep the original row.
                    if !kept.is_empty() {
                        result.push(row);
                    }
                }
                Ok(result)
            }
            Op::Assign { input, var, term } => {
                let rows = input.run(instance, ev, input_rows)?;
                let mut result = Vec::new();
                for row in rows {
                    let eq = Atom::Eq(DataTerm::Var(*var), term.clone());
                    let bound = ev
                        .eval_formula(&docql_calculus::Formula::Atom(eq), vec![row])
                        .map_err(|e| crate::AlgebraError(e.to_string()))?;
                    result.extend(bound);
                }
                Ok(result)
            }
            Op::Union(branches) => {
                let mut result = Vec::new();
                for b in branches {
                    result.extend(b.run(instance, ev, input_rows.clone())?);
                }
                Ok(result)
            }
            Op::AntiSemi { input, sub } => {
                let rows = input.run(instance, ev, input_rows)?;
                let mut result = Vec::new();
                for row in rows {
                    if sub.run(instance, ev, vec![row.clone()])?.is_empty() {
                        result.push(row);
                    }
                }
                Ok(result)
            }
            Op::Semi { input, sub } => {
                let rows = input.run(instance, ev, input_rows)?;
                let mut result = Vec::new();
                for row in rows {
                    if !sub.run(instance, ev, vec![row.clone()])?.is_empty() {
                        result.push(row);
                    }
                }
                Ok(result)
            }
            Op::Pipe(first, second) => {
                let rows = first.run(instance, ev, input_rows)?;
                second.run(instance, ev, rows)
            }
            Op::Project { input, vars } => {
                let rows = input.run(instance, ev, input_rows)?;
                let mut seen = std::collections::BTreeSet::new();
                let mut result = Vec::new();
                for row in rows {
                    let projected: Env = vars
                        .iter()
                        .filter_map(|v| row.get(v).map(|cv| (*v, cv.clone())))
                        .collect();
                    if seen.insert(projected.clone()) {
                        result.push(projected);
                    }
                }
                Ok(result)
            }
        }
    }

    /// Pretty-print the plan tree.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(0, &mut out);
        out
    }

    fn explain_into(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        match self {
            Op::Unit => out.push_str(&format!("{pad}Unit\n")),
            Op::Root { name, out: v } => out.push_str(&format!("{pad}Root {name} -> #{v}\n")),
            Op::Walk {
                input,
                start,
                steps,
                out: v,
            } => {
                let s: String = steps.iter().map(|s| s.to_string()).collect();
                match v {
                    Some(v) => out.push_str(&format!("{pad}Walk #{start}{s} -> #{v}\n")),
                    None => out.push_str(&format!("{pad}Walk #{start}{s}\n")),
                }
                input.explain_into(depth + 1, out);
            }
            Op::Filter { input, atom } => {
                out.push_str(&format!("{pad}Filter {atom}\n"));
                input.explain_into(depth + 1, out);
            }
            Op::Assign { input, var, term } => {
                out.push_str(&format!("{pad}Assign #{var} := {term}\n"));
                input.explain_into(depth + 1, out);
            }
            Op::Union(branches) => {
                out.push_str(&format!("{pad}Union ({} branches)\n", branches.len()));
                for b in branches {
                    b.explain_into(depth + 1, out);
                }
            }
            Op::AntiSemi { input, sub } => {
                out.push_str(&format!("{pad}AntiSemi\n"));
                input.explain_into(depth + 1, out);
                out.push_str(&format!("{pad}  [sub]\n"));
                sub.explain_into(depth + 2, out);
            }
            Op::Semi { input, sub } => {
                out.push_str(&format!("{pad}Semi\n"));
                input.explain_into(depth + 1, out);
                out.push_str(&format!("{pad}  [sub]\n"));
                sub.explain_into(depth + 2, out);
            }
            Op::Project { input, vars } => {
                let vs: Vec<String> = vars.iter().map(|v| format!("#{v}")).collect();
                out.push_str(&format!("{pad}Project {}\n", vs.join(", ")));
                input.explain_into(depth + 1, out);
            }
            Op::Pipe(first, second) => {
                out.push_str(&format!("{pad}Pipe\n"));
                first.explain_into(depth + 1, out);
                second.explain_into(depth + 1, out);
            }
        }
    }

    /// Count operators (diagnostics / benches).
    pub fn size(&self) -> usize {
        match self {
            Op::Unit | Op::Root { .. } => 1,
            Op::Walk { input, .. }
            | Op::Filter { input, .. }
            | Op::Assign { input, .. }
            | Op::Project { input, .. } => 1 + input.size(),
            Op::Union(branches) => 1 + branches.iter().map(Op::size).sum::<usize>(),
            Op::AntiSemi { input, sub } | Op::Semi { input, sub } => 1 + input.size() + sub.size(),
            Op::Pipe(first, second) => 1 + first.size() + second.size(),
        }
    }
}

/// Navigate `steps` from `value`, extending `row` (indices, binders) and
/// pushing finished rows.
fn walk(
    instance: &Instance,
    value: &Value,
    steps: &[WalkStep],
    row: Env,
    out: Option<Var>,
    result: &mut Vec<Env>,
) {
    let Some(step) = steps.first() else {
        let mut row = row;
        if let Some(v) = out {
            row.insert(v, CalcValue::Data(value.clone()));
        }
        result.push(row);
        return;
    };
    let rest = &steps[1..];
    match step {
        WalkStep::Attr(a) => {
            if let Some(v) = attr_select(instance, value, *a) {
                walk(instance, &v, rest, row, out, result);
            }
        }
        WalkStep::Deref => {
            if let Value::Oid(o) = value {
                if let Ok(v) = instance.value_of(*o) {
                    let v = v.clone();
                    walk(instance, &v, rest, row, out, result);
                }
            }
        }
        WalkStep::Index(i) => {
            if let Some(v) = index_select(instance, value, *i) {
                walk(instance, &v, rest, row, out, result);
            }
        }
        WalkStep::IndexVar(var) => {
            if let Some(CalcValue::Data(Value::Int(n))) = row.get(var) {
                if let Ok(i) = usize::try_from(*n) {
                    if let Some(v) = index_select(instance, value, i) {
                        walk(instance, &v, rest, row.clone(), out, result);
                    }
                }
            }
        }
        WalkStep::UnnestList(idx_var) => {
            let items = list_items(instance, value);
            for (i, item) in items.iter().enumerate() {
                let mut r = row.clone();
                if let Some(v) = idx_var {
                    r.insert(*v, CalcValue::Data(Value::Int(i as i64)));
                }
                walk(instance, item, rest, r, out, result);
            }
        }
        WalkStep::UnnestSet(elem_var) => {
            if let Value::Set(items) = deref1(instance, value) {
                for item in items {
                    let mut r = row.clone();
                    if let Some(v) = elem_var {
                        r.insert(*v, CalcValue::Data(item.clone()));
                    }
                    walk(instance, &item, rest, r, out, result);
                }
            }
        }
        WalkStep::UnnestColl => {
            // deref1 already looks through oids and union markers.
            if let Value::List(items) | Value::Set(items) = deref1(instance, value) {
                for item in items {
                    walk(instance, &item, rest, row.clone(), out, result);
                }
            }
        }
        WalkStep::Bind(v) => {
            // An already-bound variable acts as an equality check (e.g. the
            // shared X in ¬∃Q⟨Old_Doc Q·title(X)⟩).
            match row.get(v) {
                Some(CalcValue::Data(existing)) => {
                    if existing == value {
                        walk(instance, value, rest, row.clone(), out, result);
                    }
                }
                Some(_) => {}
                None => {
                    let mut r = row;
                    r.insert(*v, CalcValue::Data(value.clone()));
                    walk(instance, value, rest, r, out, result);
                }
            }
        }
    }
}

fn deref1(instance: &Instance, value: &Value) -> Value {
    match value {
        Value::Oid(o) => instance.value_of(*o).cloned().unwrap_or(Value::Nil),
        Value::Union(_, payload) => deref1(instance, payload),
        other => other.clone(),
    }
}

fn list_items(_instance: &Instance, value: &Value) -> Vec<Value> {
    // Union markers are looked through (implicit selectors); object
    // boundaries are not (explicit Deref steps handle those).
    match value {
        Value::List(items) => items.clone(),
        // A tuple viewed as a heterogeneous list.
        Value::Tuple(fields) => fields
            .iter()
            .map(|(n, v)| Value::Union(*n, Box::new(v.clone())))
            .collect(),
        Value::Union(_, payload) => list_items(_instance, payload),
        _ => Vec::new(),
    }
}

/// Variant-based selection: attribute lookup with implicit selectors
/// through union markers. No implicit dereferencing — walks mirror the
/// calculus path-predicate semantics where `→` steps are explicit
/// (candidate paths carry them).
fn attr_select(_instance: &Instance, value: &Value, name: Sym) -> Option<Value> {
    match value {
        Value::Tuple(_) => value.attr(name).cloned(),
        Value::Union(m, payload) => {
            if *m == name {
                Some(payload.as_ref().clone())
            } else {
                attr_select(_instance, payload, name)
            }
        }
        _ => None,
    }
}

fn index_select(_instance: &Instance, value: &Value, i: usize) -> Option<Value> {
    match value {
        Value::List(items) => items.get(i).cloned(),
        Value::Tuple(fs) => fs
            .get(i)
            .map(|(n, v)| Value::Union(*n, Box::new(v.clone()))),
        Value::Union(_, payload) => index_select(_instance, payload, i),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use docql_calculus::Interp;
    use docql_model::{ClassDef, Schema, Type};
    use std::sync::Arc;

    fn inst() -> Instance {
        let schema = Arc::new(
            Schema::builder()
                .class(ClassDef::new(
                    "Item",
                    Type::tuple([("name", Type::String), ("price", Type::Integer)]),
                ))
                .root("Items", Type::list(Type::class("Item")))
                .build()
                .unwrap(),
        );
        let mut i = Instance::new(schema);
        let mut items = Vec::new();
        for (n, p) in [("apple", 3), ("pear", 5), ("fig", 9)] {
            let o = i
                .new_object(
                    "Item",
                    Value::tuple([("name", Value::str(n)), ("price", Value::Int(p))]),
                )
                .unwrap();
            items.push(Value::Oid(o));
        }
        i.set_root("Items", Value::List(items)).unwrap();
        i
    }

    #[test]
    fn scan_unnest_filter_project() {
        let instance = inst();
        let interp = Interp::with_builtins();
        let ev = Evaluator::new(&instance, &interp);
        // Items[*](x).price > 4, project name.
        let plan = Op::Project {
            vars: vec![2],
            input: Box::new(Op::Walk {
                start: 1,
                steps: vec![WalkStep::Deref, WalkStep::Attr(docql_model::sym("name"))],
                out: Some(2),
                input: Box::new(Op::Filter {
                    atom: Atom::Pred(
                        docql_model::sym(">"),
                        vec![
                            DataTerm::PathApp(
                                Box::new(DataTerm::Var(1)),
                                docql_calculus::PathTerm(vec![docql_calculus::PathAtom::Attr(
                                    docql_calculus::AttrTerm::Name(docql_model::sym("price")),
                                )]),
                            ),
                            DataTerm::Const(Value::Int(4)),
                        ],
                    ),
                    input: Box::new(Op::Walk {
                        start: 0,
                        steps: vec![WalkStep::UnnestList(None)],
                        out: Some(1),
                        input: Box::new(Op::Root {
                            name: docql_model::sym("Items"),
                            out: 0,
                        }),
                    }),
                }),
            }),
        };
        let rows = plan.execute(&instance, &ev).unwrap();
        let names: Vec<String> = rows
            .iter()
            .map(|r| match r.get(&2) {
                Some(CalcValue::Data(Value::Str(s))) => s.clone(),
                other => panic!("{other:?}"),
            })
            .collect();
        assert_eq!(names, vec!["pear".to_string(), "fig".to_string()]);
    }

    #[test]
    fn union_and_antisemi() {
        let instance = inst();
        let interp = Interp::with_builtins();
        let ev = Evaluator::new(&instance, &interp);
        let scan = |out| Op::Walk {
            start: 0,
            steps: vec![WalkStep::UnnestList(None)],
            out: Some(out),
            input: Box::new(Op::Root {
                name: docql_model::sym("Items"),
                out: 0,
            }),
        };
        // Union duplicates the stream: 6 rows.
        let u = Op::Union(vec![scan(1), scan(1)]);
        assert_eq!(u.execute(&instance, &ev).unwrap().len(), 6);
        // AntiSemi with an always-succeeding sub: empty.
        let anti = Op::AntiSemi {
            input: Box::new(scan(1)),
            sub: Box::new(Op::Unit),
        };
        assert!(anti.execute(&instance, &ev).unwrap().is_empty());
        // Semi with an always-succeeding sub: identity.
        let semi = Op::Semi {
            input: Box::new(scan(1)),
            sub: Box::new(Op::Unit),
        };
        assert_eq!(semi.execute(&instance, &ev).unwrap().len(), 3);
    }

    #[test]
    fn walk_binds_indices() {
        let instance = inst();
        let interp = Interp::with_builtins();
        let ev = Evaluator::new(&instance, &interp);
        let plan = Op::Walk {
            start: 0,
            steps: vec![
                WalkStep::UnnestList(Some(9)),
                WalkStep::Deref,
                WalkStep::Attr(docql_model::sym("price")),
            ],
            out: Some(1),
            input: Box::new(Op::Root {
                name: docql_model::sym("Items"),
                out: 0,
            }),
        };
        let rows = plan.execute(&instance, &ev).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2].get(&9), Some(&CalcValue::Data(Value::Int(2))));
        assert_eq!(rows[2].get(&1), Some(&CalcValue::Data(Value::Int(9))));
    }

    #[test]
    fn explain_renders_tree() {
        let plan = Op::Project {
            vars: vec![1],
            input: Box::new(Op::Root {
                name: docql_model::sym("Items"),
                out: 1,
            }),
        };
        let text = plan.explain();
        assert!(text.contains("Project #1"));
        assert!(text.contains("Root Items -> #1"));
        assert_eq!(plan.size(), 2);
    }
}
