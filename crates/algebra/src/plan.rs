//! Algebra operators over binding streams (§5.4).
//!
//! The algebra is a complex-object algebra "in the spirit of [3, 12]",
//! extended — as the paper sketches — with *variant-based selection* over
//! heterogeneous collections: the `Attr` walk step applies implicit
//! selectors through union markers. Crucially, **no operator enumerates
//! paths at run time**: plans only contain concrete navigation steps, which
//! is exactly what the algebraization buys over the calculus interpreter.

use crate::profile::{AlgebraMetrics, PlanProfile};
use docql_calculus::{Atom, CalcValue, DataTerm, Env, Evaluator, Var};
use docql_model::{Instance, Sym, Value};
use docql_paths::select::{attr_select, deref1, index_select, list_items};
use docql_paths::{ExtStep, PathExtentIndex};
use std::collections::BTreeSet;
use std::fmt;

/// Run-time execution context: auxiliary structures a plan *may* consult.
///
/// Plans are compiled against the schema only; whether an
/// [`Op::IndexPathScan`] actually reads the path-extent index or falls back
/// to walking is resolved here, at evaluation time. This is what lets the
/// plan cache keep index-aware plans without invalidation: the cached plan
/// captures the *choice point*, the context supplies the index.
///
/// The observability fields follow the same pattern: instrumentation is
/// always compiled into the executor, and whether an execution is timed is
/// decided here. With both fields `None` (the default) the only per-operator
/// cost is two pointer-sized `Option` checks.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecCtx<'a> {
    /// The store's path-extent index, when index-backed evaluation is on.
    pub extents: Option<&'a PathExtentIndex>,
    /// Per-operator profile for this execution (`EXPLAIN ANALYZE`). Must be
    /// built from the plan being executed (see [`PlanProfile::new`]).
    pub profile: Option<&'a PlanProfile>,
    /// Registry-level counters aggregated across queries.
    pub metrics: Option<&'a AlgebraMetrics>,
    /// Execution governance: operator loops charge one row per emitted
    /// tuple, graph walks charge path fuel, and each operator start is a
    /// fault-injection point. `None` (the default) costs one pointer test
    /// per row.
    pub guard: Option<&'a docql_guard::Guard>,
}

/// Charge one row to the execution guard. `Ok(true)` continues, `Ok(false)`
/// stops the loop keeping the rows emitted so far (degrade mode), `Err`
/// aborts the plan.
#[inline]
fn guard_row(ctx: ExecCtx<'_>) -> Result<bool, crate::AlgebraError> {
    match ctx.guard {
        None => Ok(true),
        Some(g) => match g.row() {
            docql_guard::Flow::Continue => Ok(true),
            docql_guard::Flow::Stop => Ok(false),
            docql_guard::Flow::Abort(e) => Err(crate::AlgebraError::from(e)),
        },
    }
}

/// Charge `n` path-fuel units (same continue/stop/abort contract as
/// [`guard_row`]). Extent-index hits charge one unit per resolved start so
/// a path-fuel limit bounds path-atom work uniformly, whether the plan
/// walks or reads the index.
#[inline]
fn guard_fuel(ctx: ExecCtx<'_>, n: u64) -> Result<bool, crate::AlgebraError> {
    match ctx.guard {
        None => Ok(true),
        Some(g) => match g.fuel(n) {
            docql_guard::Flow::Continue => Ok(true),
            docql_guard::Flow::Stop => Ok(false),
            docql_guard::Flow::Abort(e) => Err(crate::AlgebraError::from(e)),
        },
    }
}

/// One navigation step of a [`Op::Walk`].
#[derive(Debug, Clone, PartialEq)]
pub enum WalkStep {
    /// Select attribute (implicit selectors through unions; implicit deref).
    Attr(Sym),
    /// Dereference an oid.
    Deref,
    /// Index a list (or tuple-as-heterogeneous-list) with a constant.
    Index(usize),
    /// Index with the integer value currently bound to a variable.
    IndexVar(Var),
    /// Fan out over the elements of a list, optionally binding the index.
    UnnestList(Option<Var>),
    /// Fan out over the elements of a set, optionally binding the element.
    UnnestSet(Option<Var>),
    /// Fan out over any collection (list or set, through oids and markers).
    UnnestColl,
    /// Bind the value reached so far to a variable (zero-width).
    Bind(Var),
}

impl fmt::Display for WalkStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalkStep::Attr(a) => write!(f, ".{a}"),
            WalkStep::Deref => f.write_str("->"),
            WalkStep::Index(i) => write!(f, "[{i}]"),
            WalkStep::IndexVar(v) => write!(f, "[#{v}]"),
            WalkStep::UnnestList(Some(v)) => write!(f, "[*#{v}]"),
            WalkStep::UnnestList(None) => f.write_str("[*]"),
            WalkStep::UnnestSet(_) => f.write_str("{*}"),
            WalkStep::UnnestColl => f.write_str("unnest"),
            WalkStep::Bind(v) => write!(f, "(#{v})"),
        }
    }
}

/// A physical plan.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// One empty row.
    Unit,
    /// Bind a root of persistence's value.
    Root { name: Sym, out: Var },
    /// Navigate from a bound variable through concrete steps, fanning out at
    /// unnest steps; optionally bind the end value.
    Walk {
        input: Box<Op>,
        start: Var,
        steps: Vec<WalkStep>,
        out: Option<Var>,
    },
    /// A path navigation answerable from the path-extent index: look up the
    /// interned class-blind `key` and read the precomputed targets instead
    /// of walking. The original `steps` are kept as the run-time fallback
    /// for when no index is attached ([`ExecCtx::extents`] is `None`), the
    /// key is not interned, or a start value is not an indexed root.
    IndexPathScan(Box<IndexPathScan>),
    /// Keep rows satisfying an atom (all variables bound).
    Filter { input: Box<Op>, atom: Atom },
    /// Compute a term into a variable.
    Assign {
        input: Box<Op>,
        var: Var,
        term: DataTerm,
    },
    /// Bag union of sub-plans (the algebraization's union of candidates).
    Union(Vec<Op>),
    /// Anti-semi-join: keep input rows for which `sub` yields nothing.
    AntiSemi { input: Box<Op>, sub: Box<Op> },
    /// Semi-join: keep input rows for which `sub` yields at least one row.
    Semi { input: Box<Op>, sub: Box<Op> },
    /// Projection with duplicate elimination.
    Project { input: Box<Op>, vars: Vec<Var> },
    /// Feed the output rows of `first` into `second` (used to graft a
    /// disjunction's Union onto its upstream plan).
    Pipe(Box<Op>, Box<Op>),
}

/// The payload of [`Op::IndexPathScan`] (boxed to keep `Op` small).
#[derive(Debug, Clone, PartialEq)]
pub struct IndexPathScan {
    /// Upstream plan producing the start bindings.
    pub input: Op,
    /// Variable holding the navigation start value.
    pub start: Var,
    /// `Some(binder)` when the walk begins with `UnnestList(binder)` over
    /// the document collection: the scan fans out over the list first (so
    /// index binders survive) and consults the index per element oid.
    pub lead: Option<Option<Var>>,
    /// The interned class-blind path key covered by the extent.
    pub key: Vec<ExtStep>,
    /// Trailing `Bind` variables, each bound to (or checked against) the
    /// target value.
    pub tail: Vec<Var>,
    /// Optional output binding for the target value.
    pub out: Option<Var>,
    /// The full original walk steps — the run-time fallback.
    pub steps: Vec<WalkStep>,
    /// Remove `start` from the row before emitting. Set by the compiler
    /// when the start variable has no downstream use, so the (often large)
    /// start value — e.g. the whole document collection — is not cloned
    /// into every emitted row.
    pub drop_start: bool,
}

impl Op {
    /// Execute against an instance with no auxiliary structures attached
    /// (every [`Op::IndexPathScan`] falls back to walking).
    pub fn execute(
        &self,
        instance: &Instance,
        ev: &Evaluator<'_>,
    ) -> Result<Vec<Env>, crate::AlgebraError> {
        self.execute_with(instance, ev, ExecCtx::default())
    }

    /// Execute against an instance, producing binding rows; `ctx` supplies
    /// run-time structures such as the path-extent index.
    pub fn execute_with(
        &self,
        instance: &Instance,
        ev: &Evaluator<'_>,
        ctx: ExecCtx<'_>,
    ) -> Result<Vec<Env>, crate::AlgebraError> {
        self.run(instance, ev, ctx, vec![Env::new()], 0)
    }

    /// Instrumentation shell around [`Op::run_inner`]: with neither a
    /// profile nor metrics attached it adds two `Option` checks per operator
    /// call; otherwise it times the (inclusive) execution and records the
    /// emitted row count. `node` is this operator's pre-order id in
    /// `ctx.profile` (`0` — never read — when unprofiled).
    fn run(
        &self,
        instance: &Instance,
        ev: &Evaluator<'_>,
        ctx: ExecCtx<'_>,
        input_rows: Vec<Env>,
        node: usize,
    ) -> Result<Vec<Env>, crate::AlgebraError> {
        // Operator boundary: deterministic fault-injection point (inert
        // without a fault seed) — may panic (exercising `catch_unwind`
        // isolation upstream) or force a budget trip.
        if let Some(g) = ctx.guard {
            match g.fault_point("algebra-operator") {
                docql_guard::Flow::Continue => {}
                docql_guard::Flow::Stop => return Ok(Vec::new()),
                docql_guard::Flow::Abort(e) => return Err(crate::AlgebraError::from(e)),
            }
        }
        if ctx.profile.is_none() && ctx.metrics.is_none() {
            return self.run_inner(instance, ev, ctx, input_rows, node);
        }
        if ctx.metrics.is_none() && ctx.profile.is_some_and(|p| !p.is_timed()) {
            // Untimed profile (query tracing): count calls and rows, skip
            // the clock — semi-join sub-plans re-enter here once per input
            // row, and two `Instant::now` calls per entry would dominate.
            let result = self.run_inner(instance, ev, ctx, input_rows, node);
            if let (Ok(rows), Some(p)) = (&result, ctx.profile) {
                p.record(node, 0, rows.len() as u64);
            }
            return result;
        }
        let start = std::time::Instant::now();
        let result = self.run_inner(instance, ev, ctx, input_rows, node);
        if let Ok(rows) = &result {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let emitted = rows.len() as u64;
            if let Some(p) = ctx.profile {
                p.record(node, nanos, emitted);
            }
            if let Some(m) = ctx.metrics {
                m.ops_executed.inc();
                m.rows_emitted.add(emitted);
            }
        }
        result
    }

    fn run_inner(
        &self,
        instance: &Instance,
        ev: &Evaluator<'_>,
        ctx: ExecCtx<'_>,
        input_rows: Vec<Env>,
        node: usize,
    ) -> Result<Vec<Env>, crate::AlgebraError> {
        match self {
            Op::Unit => Ok(input_rows),
            Op::Root { name, out } => {
                let value = instance
                    .root(*name)
                    .map_err(|e| crate::AlgebraError(format!("root: {e}")))?
                    .clone();
                Ok(input_rows
                    .into_iter()
                    .map(|mut r| {
                        r.insert(*out, CalcValue::Data(value.clone()));
                        r
                    })
                    .collect())
            }
            Op::Walk {
                input,
                start,
                steps,
                out,
            } => {
                let rows = input.run(instance, ev, ctx, input_rows, child_id(ctx, node, 0))?;
                let mut result = Vec::new();
                for row in rows {
                    if !guard_row(ctx)? {
                        break;
                    }
                    let Some(CalcValue::Data(v)) = row.get(start).cloned() else {
                        continue;
                    };
                    walk(instance, &v, steps, row, *out, ctx.guard, &mut result);
                }
                Ok(result)
            }
            Op::IndexPathScan(scan) => {
                let rows = scan
                    .input
                    .run(instance, ev, ctx, input_rows, child_id(ctx, node, 0))?;
                // Resolve the index choice once per execution: is an extent
                // attached, and does it cover this path key?
                let ext = ctx
                    .extents
                    .and_then(|e| e.lookup(&scan.key).map(|pid| (e, pid)));
                // Tallied locally (plain integers), flushed to the profile
                // and registry counters once after the loop.
                let mut index_hits = 0u64;
                let mut walk_fallbacks = 0u64;
                let mut result = Vec::new();
                for mut row in rows {
                    if !guard_row(ctx)? {
                        break;
                    }
                    // Take the start value out of the row when it is dead
                    // downstream: emitted rows then no longer clone it.
                    let v = if scan.drop_start {
                        match row.remove(&scan.start) {
                            Some(CalcValue::Data(v)) => v,
                            _ => continue,
                        }
                    } else {
                        match row.get(&scan.start).cloned() {
                            Some(CalcValue::Data(v)) => v,
                            _ => continue,
                        }
                    };
                    match (&ext, &scan.lead) {
                        // Start value is the document oid itself.
                        (Some((e, pid)), None) => match v {
                            Value::Oid(o) if e.is_root_indexed(o) => {
                                index_hits += 1;
                                if !guard_fuel(ctx, 1)? {
                                    break;
                                }
                                for target in e.targets(*pid, o) {
                                    emit_indexed(
                                        target,
                                        row.clone(),
                                        &scan.tail,
                                        scan.out,
                                        &mut result,
                                    );
                                }
                            }
                            v => {
                                walk_fallbacks += 1;
                                walk(
                                    instance,
                                    &v,
                                    &scan.steps,
                                    row,
                                    scan.out,
                                    ctx.guard,
                                    &mut result,
                                );
                            }
                        },
                        // Start value is the document collection: fan out
                        // over it first, then consult the index per oid.
                        (Some((e, pid)), Some(binder)) => {
                            for (i, item) in list_items(instance, &v).into_iter().enumerate() {
                                let mut r = row.clone();
                                if let Some(bv) = binder {
                                    r.insert(*bv, CalcValue::Data(Value::Int(i as i64)));
                                }
                                match item {
                                    Value::Oid(o) if e.is_root_indexed(o) => {
                                        index_hits += 1;
                                        if !guard_fuel(ctx, 1)? {
                                            break;
                                        }
                                        for target in e.targets(*pid, o) {
                                            emit_indexed(
                                                target,
                                                r.clone(),
                                                &scan.tail,
                                                scan.out,
                                                &mut result,
                                            );
                                        }
                                    }
                                    item => {
                                        walk_fallbacks += 1;
                                        walk(
                                            instance,
                                            &item,
                                            &scan.steps[1..],
                                            r,
                                            scan.out,
                                            ctx.guard,
                                            &mut result,
                                        );
                                    }
                                }
                            }
                        }
                        // No index attached, or the key is not interned.
                        (None, _) => {
                            walk_fallbacks += 1;
                            walk(
                                instance,
                                &v,
                                &scan.steps,
                                row,
                                scan.out,
                                ctx.guard,
                                &mut result,
                            );
                        }
                    }
                }
                if index_hits != 0 || walk_fallbacks != 0 {
                    if let Some(p) = ctx.profile {
                        p.record_scan(node, index_hits, walk_fallbacks);
                    }
                    if let Some(m) = ctx.metrics {
                        m.index_scan_extent_hits.add(index_hits);
                        m.index_scan_walk_fallbacks.add(walk_fallbacks);
                    }
                }
                Ok(result)
            }
            Op::Filter { input, atom } => {
                let rows = input.run(instance, ev, ctx, input_rows, child_id(ctx, node, 0))?;
                let mut result = Vec::new();
                for row in rows {
                    if !guard_row(ctx)? {
                        break;
                    }
                    let kept = ev
                        .eval_formula(
                            &docql_calculus::Formula::Atom(atom.clone()),
                            vec![row.clone()],
                        )
                        .map_err(|e| crate::AlgebraError(e.to_string()))?;
                    // A filter must not bind — keep the original row.
                    if !kept.is_empty() {
                        result.push(row);
                    }
                }
                Ok(result)
            }
            Op::Assign { input, var, term } => {
                let rows = input.run(instance, ev, ctx, input_rows, child_id(ctx, node, 0))?;
                let mut result = Vec::new();
                // Shared by the slow path below; built lazily so the common
                // variable-copy case never touches the calculus evaluator.
                let mut eq: Option<docql_calculus::Formula> = None;
                for mut row in rows {
                    if !guard_row(ctx)? {
                        break;
                    }
                    // Fast path: `#var := #src` with `src` bound and `var`
                    // free is a plain copy — the shape the compiler emits
                    // for head projections, once per result row.
                    if let DataTerm::Var(src) = term {
                        if !row.contains_key(var) {
                            if let Some(v) = row.get(src).cloned() {
                                row.insert(*var, v);
                                result.push(row);
                                continue;
                            }
                        }
                    }
                    let eq = eq.get_or_insert_with(|| {
                        docql_calculus::Formula::Atom(Atom::Eq(DataTerm::Var(*var), term.clone()))
                    });
                    let bound = ev
                        .eval_formula(eq, vec![row])
                        .map_err(|e| crate::AlgebraError(e.to_string()))?;
                    result.extend(bound);
                }
                Ok(result)
            }
            Op::Union(branches) => {
                let mut result = Vec::new();
                for (i, b) in branches.iter().enumerate() {
                    result.extend(b.run(
                        instance,
                        ev,
                        ctx,
                        input_rows.clone(),
                        child_id(ctx, node, i),
                    )?);
                }
                Ok(result)
            }
            Op::AntiSemi { input, sub } => {
                let rows = input.run(instance, ev, ctx, input_rows, child_id(ctx, node, 0))?;
                let sub_id = child_id(ctx, node, 1);
                let mut result = Vec::new();
                for row in rows {
                    if !guard_row(ctx)? {
                        break;
                    }
                    if sub
                        .run(instance, ev, ctx, vec![row.clone()], sub_id)?
                        .is_empty()
                    {
                        result.push(row);
                    }
                }
                Ok(result)
            }
            Op::Semi { input, sub } => {
                let rows = input.run(instance, ev, ctx, input_rows, child_id(ctx, node, 0))?;
                let sub_id = child_id(ctx, node, 1);
                let mut result = Vec::new();
                for row in rows {
                    if !guard_row(ctx)? {
                        break;
                    }
                    if !sub
                        .run(instance, ev, ctx, vec![row.clone()], sub_id)?
                        .is_empty()
                    {
                        result.push(row);
                    }
                }
                Ok(result)
            }
            Op::Pipe(first, second) => {
                let rows = first.run(instance, ev, ctx, input_rows, child_id(ctx, node, 0))?;
                second.run(instance, ev, ctx, rows, child_id(ctx, node, 1))
            }
            Op::Project { input, vars } => {
                let rows = input.run(instance, ev, ctx, input_rows, child_id(ctx, node, 0))?;
                let mut seen = std::collections::BTreeSet::new();
                let mut result = Vec::new();
                for row in rows {
                    if !guard_row(ctx)? {
                        break;
                    }
                    let projected: Env = vars
                        .iter()
                        .filter_map(|v| row.get(v).map(|cv| (*v, cv.clone())))
                        .collect();
                    if seen.insert(projected.clone()) {
                        result.push(projected);
                    }
                }
                Ok(result)
            }
        }
    }

    /// Pretty-print the plan tree.
    pub fn explain(&self) -> String {
        self.explain_annotated(&|_| String::new())
    }

    /// Pretty-print the plan tree with a per-operator suffix: `annotate` is
    /// called with each operator's **pre-order id** — the numbering used by
    /// [`PlanProfile`] — and its result is appended to that operator's line.
    /// This is how `EXPLAIN ANALYZE` attaches recorded statistics to the
    /// rendered plan.
    pub fn explain_annotated(&self, annotate: &dyn Fn(usize) -> String) -> String {
        let mut out = String::new();
        let mut next = 0usize;
        self.explain_into(0, &mut next, annotate, &mut out);
        out
    }

    /// The one-line label of this operator (no children, no indentation).
    ///
    /// For [`Op::IndexPathScan`] the label shows both sides of the run-time
    /// choice point: the interned class-blind extent key the scan looks up,
    /// and the fallback walk used when no index covers it.
    pub fn node_label(&self) -> String {
        match self {
            Op::Unit => "Unit".to_string(),
            Op::Root { name, out: v } => format!("Root {name} -> #{v}"),
            Op::Walk {
                start,
                steps,
                out: v,
                ..
            } => {
                let s: String = steps.iter().map(|s| s.to_string()).collect();
                match v {
                    Some(v) => format!("Walk #{start}{s} -> #{v}"),
                    None => format!("Walk #{start}{s}"),
                }
            }
            Op::IndexPathScan(scan) => {
                let lead = match &scan.lead {
                    Some(Some(v)) => format!("[*#{v}]"),
                    Some(None) => "[*]".to_string(),
                    None => String::new(),
                };
                let key: String = std::iter::once(lead)
                    .chain(scan.key.iter().map(|s| s.to_string()))
                    .collect();
                let walk: String = scan.steps.iter().map(|s| s.to_string()).collect();
                let start = scan.start;
                match scan.out {
                    Some(v) => {
                        format!(
                            "IndexPathScan #{start}{key} -> #{v} (fallback walk #{start}{walk})"
                        )
                    }
                    None => format!("IndexPathScan #{start}{key} (fallback walk #{start}{walk})"),
                }
            }
            Op::Filter { atom, .. } => format!("Filter {atom}"),
            Op::Assign { var, term, .. } => format!("Assign #{var} := {term}"),
            Op::Union(branches) => format!("Union ({} branches)", branches.len()),
            Op::AntiSemi { .. } => "AntiSemi".to_string(),
            Op::Semi { .. } => "Semi".to_string(),
            Op::Project { vars, .. } => {
                let vs: Vec<String> = vars.iter().map(|v| format!("#{v}")).collect();
                format!("Project {}", vs.join(", "))
            }
            Op::Pipe(..) => "Pipe".to_string(),
        }
    }

    /// Direct sub-plans, in execution order. This order defines the child
    /// indices used by [`PlanProfile::child`] and the pre-order numbering of
    /// [`Op::explain_annotated`].
    pub fn children(&self) -> Vec<&Op> {
        match self {
            Op::Unit | Op::Root { .. } => Vec::new(),
            Op::Walk { input, .. }
            | Op::Filter { input, .. }
            | Op::Assign { input, .. }
            | Op::Project { input, .. } => vec![input],
            Op::IndexPathScan(scan) => vec![&scan.input],
            Op::Union(branches) => branches.iter().collect(),
            Op::AntiSemi { input, sub } | Op::Semi { input, sub } => vec![input, sub],
            Op::Pipe(first, second) => vec![first, second],
        }
    }

    fn explain_into(
        &self,
        depth: usize,
        next: &mut usize,
        annotate: &dyn Fn(usize) -> String,
        out: &mut String,
    ) {
        let id = *next;
        *next += 1;
        let pad = "  ".repeat(depth);
        out.push_str(&format!("{pad}{}{}\n", self.node_label(), annotate(id)));
        match self {
            // Semi-joins mark their sub-plan so the two inputs read apart.
            Op::AntiSemi { input, sub } | Op::Semi { input, sub } => {
                input.explain_into(depth + 1, next, annotate, out);
                out.push_str(&format!("{pad}  [sub]\n"));
                sub.explain_into(depth + 2, next, annotate, out);
            }
            _ => {
                for c in self.children() {
                    c.explain_into(depth + 1, next, annotate, out);
                }
            }
        }
    }

    /// Does any operator in this subtree reference or bind `v`?
    /// Conservative (binders and uses are not distinguished) — used by
    /// peephole rewrites to prove a variable cannot flow in from upstream.
    pub fn mentions(&self, v: Var) -> bool {
        let mut vars = BTreeSet::new();
        self.collect_vars(&mut vars);
        vars.contains(&v)
    }

    fn collect_vars(&self, out: &mut BTreeSet<Var>) {
        fn step_vars(steps: &[WalkStep], out: &mut BTreeSet<Var>) {
            for s in steps {
                match s {
                    WalkStep::UnnestList(Some(v))
                    | WalkStep::UnnestSet(Some(v))
                    | WalkStep::IndexVar(v)
                    | WalkStep::Bind(v) => {
                        out.insert(*v);
                    }
                    _ => {}
                }
            }
        }
        match self {
            Op::Unit => {}
            Op::Root { out: o, .. } => {
                out.insert(*o);
            }
            Op::Walk {
                input,
                start,
                steps,
                out: o,
            } => {
                out.insert(*start);
                step_vars(steps, out);
                out.extend(o.iter().copied());
                input.collect_vars(out);
            }
            Op::IndexPathScan(scan) => {
                out.insert(scan.start);
                if let Some(Some(b)) = scan.lead {
                    out.insert(b);
                }
                out.extend(scan.tail.iter().copied());
                out.extend(scan.out.iter().copied());
                step_vars(&scan.steps, out);
                scan.input.collect_vars(out);
            }
            Op::Filter { input, atom } => {
                atom.vars(out);
                input.collect_vars(out);
            }
            Op::Assign { input, var, term } => {
                out.insert(*var);
                term.vars(out);
                input.collect_vars(out);
            }
            Op::Union(branches) => {
                for b in branches {
                    b.collect_vars(out);
                }
            }
            Op::AntiSemi { input, sub } | Op::Semi { input, sub } => {
                input.collect_vars(out);
                sub.collect_vars(out);
            }
            Op::Project { input, vars } => {
                out.extend(vars.iter().copied());
                input.collect_vars(out);
            }
            Op::Pipe(first, second) => {
                first.collect_vars(out);
                second.collect_vars(out);
            }
        }
    }

    /// Count operators (diagnostics / benches).
    pub fn size(&self) -> usize {
        match self {
            Op::Unit | Op::Root { .. } => 1,
            Op::Walk { input, .. }
            | Op::Filter { input, .. }
            | Op::Assign { input, .. }
            | Op::Project { input, .. } => 1 + input.size(),
            Op::IndexPathScan(scan) => 1 + scan.input.size(),
            Op::Union(branches) => 1 + branches.iter().map(Op::size).sum::<usize>(),
            Op::AntiSemi { input, sub } | Op::Semi { input, sub } => 1 + input.size() + sub.size(),
            Op::Pipe(first, second) => 1 + first.size() + second.size(),
        }
    }
}

/// The pre-order id of `node`'s `k`-th child, or `0` (never read) when no
/// profile is attached.
#[inline]
fn child_id(ctx: ExecCtx<'_>, node: usize, k: usize) -> usize {
    match ctx.profile {
        Some(p) => p.child(node, k),
        None => 0,
    }
}

/// Emit one index-backed row: apply the trailing `Bind` semantics (an
/// already-bound variable is an equality check, an unbound one binds) and
/// the optional output binding, mirroring the tail of [`walk`].
fn emit_indexed(
    target: &Value,
    mut row: Env,
    tail: &[Var],
    out: Option<Var>,
    result: &mut Vec<Env>,
) {
    for v in tail {
        match row.get(v) {
            Some(CalcValue::Data(existing)) => {
                if existing != target {
                    return;
                }
            }
            Some(_) => return,
            None => {
                row.insert(*v, CalcValue::Data(target.clone()));
            }
        }
    }
    if let Some(o) = out {
        row.insert(o, CalcValue::Data(target.clone()));
    }
    result.push(row);
}

/// Navigate `steps` from `value`, extending `row` (indices, binders) and
/// pushing finished rows.
fn walk(
    instance: &Instance,
    value: &Value,
    steps: &[WalkStep],
    row: Env,
    out: Option<Var>,
    guard: Option<&docql_guard::Guard>,
    result: &mut Vec<Env>,
) {
    // Each visited value is one unit of path fuel; once the guard trips the
    // whole recursion unwinds fast (the trip is sticky) and the enclosing
    // operator loop converts it into a stop or an abort.
    if let Some(g) = guard {
        if g.fuel(1).interrupted() {
            return;
        }
    }
    let Some(step) = steps.first() else {
        let mut row = row;
        if let Some(v) = out {
            row.insert(v, CalcValue::Data(value.clone()));
        }
        result.push(row);
        return;
    };
    let rest = &steps[1..];
    match step {
        WalkStep::Attr(a) => {
            if let Some(v) = attr_select(instance, value, *a) {
                walk(instance, &v, rest, row, out, guard, result);
            }
        }
        WalkStep::Deref => {
            if let Value::Oid(o) = value {
                if let Ok(v) = instance.value_of(*o) {
                    let v = v.clone();
                    walk(instance, &v, rest, row, out, guard, result);
                }
            }
        }
        WalkStep::Index(i) => {
            if let Some(v) = index_select(instance, value, *i) {
                walk(instance, &v, rest, row, out, guard, result);
            }
        }
        WalkStep::IndexVar(var) => {
            if let Some(CalcValue::Data(Value::Int(n))) = row.get(var) {
                if let Ok(i) = usize::try_from(*n) {
                    if let Some(v) = index_select(instance, value, i) {
                        walk(instance, &v, rest, row.clone(), out, guard, result);
                    }
                }
            }
        }
        WalkStep::UnnestList(idx_var) => {
            let items = list_items(instance, value);
            for (i, item) in items.iter().enumerate() {
                let mut r = row.clone();
                if let Some(v) = idx_var {
                    r.insert(*v, CalcValue::Data(Value::Int(i as i64)));
                }
                walk(instance, item, rest, r, out, guard, result);
            }
        }
        WalkStep::UnnestSet(elem_var) => {
            if let Value::Set(items) = deref1(instance, value) {
                for item in items {
                    let mut r = row.clone();
                    if let Some(v) = elem_var {
                        r.insert(*v, CalcValue::Data(item.clone()));
                    }
                    walk(instance, &item, rest, r, out, guard, result);
                }
            }
        }
        WalkStep::UnnestColl => {
            // deref1 already looks through oids and union markers.
            if let Value::List(items) | Value::Set(items) = deref1(instance, value) {
                for item in items {
                    walk(instance, &item, rest, row.clone(), out, guard, result);
                }
            }
        }
        WalkStep::Bind(v) => {
            // An already-bound variable acts as an equality check (e.g. the
            // shared X in ¬∃Q⟨Old_Doc Q·title(X)⟩).
            match row.get(v) {
                Some(CalcValue::Data(existing)) => {
                    if existing == value {
                        walk(instance, value, rest, row.clone(), out, guard, result);
                    }
                }
                Some(_) => {}
                None => {
                    let mut r = row;
                    r.insert(*v, CalcValue::Data(value.clone()));
                    walk(instance, value, rest, r, out, guard, result);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use docql_calculus::Interp;
    use docql_model::{ClassDef, Schema, Type};
    use std::sync::Arc;

    fn inst() -> Instance {
        let schema = Arc::new(
            Schema::builder()
                .class(ClassDef::new(
                    "Item",
                    Type::tuple([("name", Type::String), ("price", Type::Integer)]),
                ))
                .root("Items", Type::list(Type::class("Item")))
                .build()
                .unwrap(),
        );
        let mut i = Instance::new(schema);
        let mut items = Vec::new();
        for (n, p) in [("apple", 3), ("pear", 5), ("fig", 9)] {
            let o = i
                .new_object(
                    "Item",
                    Value::tuple([("name", Value::str(n)), ("price", Value::Int(p))]),
                )
                .unwrap();
            items.push(Value::Oid(o));
        }
        i.set_root("Items", Value::List(items)).unwrap();
        i
    }

    #[test]
    fn scan_unnest_filter_project() {
        let instance = inst();
        let interp = Interp::with_builtins();
        let ev = Evaluator::new(&instance, &interp);
        // Items[*](x).price > 4, project name.
        let plan = Op::Project {
            vars: vec![2],
            input: Box::new(Op::Walk {
                start: 1,
                steps: vec![WalkStep::Deref, WalkStep::Attr(docql_model::sym("name"))],
                out: Some(2),
                input: Box::new(Op::Filter {
                    atom: Atom::Pred(
                        docql_model::sym(">"),
                        vec![
                            DataTerm::PathApp(
                                Box::new(DataTerm::Var(1)),
                                docql_calculus::PathTerm(vec![docql_calculus::PathAtom::Attr(
                                    docql_calculus::AttrTerm::Name(docql_model::sym("price")),
                                )]),
                            ),
                            DataTerm::Const(Value::Int(4)),
                        ],
                    ),
                    input: Box::new(Op::Walk {
                        start: 0,
                        steps: vec![WalkStep::UnnestList(None)],
                        out: Some(1),
                        input: Box::new(Op::Root {
                            name: docql_model::sym("Items"),
                            out: 0,
                        }),
                    }),
                }),
            }),
        };
        let rows = plan.execute(&instance, &ev).unwrap();
        let names: Vec<String> = rows
            .iter()
            .map(|r| match r.get(&2) {
                Some(CalcValue::Data(Value::Str(s))) => s.clone(),
                other => panic!("{other:?}"),
            })
            .collect();
        assert_eq!(names, vec!["pear".to_string(), "fig".to_string()]);
    }

    #[test]
    fn union_and_antisemi() {
        let instance = inst();
        let interp = Interp::with_builtins();
        let ev = Evaluator::new(&instance, &interp);
        let scan = |out| Op::Walk {
            start: 0,
            steps: vec![WalkStep::UnnestList(None)],
            out: Some(out),
            input: Box::new(Op::Root {
                name: docql_model::sym("Items"),
                out: 0,
            }),
        };
        // Union duplicates the stream: 6 rows.
        let u = Op::Union(vec![scan(1), scan(1)]);
        assert_eq!(u.execute(&instance, &ev).unwrap().len(), 6);
        // AntiSemi with an always-succeeding sub: empty.
        let anti = Op::AntiSemi {
            input: Box::new(scan(1)),
            sub: Box::new(Op::Unit),
        };
        assert!(anti.execute(&instance, &ev).unwrap().is_empty());
        // Semi with an always-succeeding sub: identity.
        let semi = Op::Semi {
            input: Box::new(scan(1)),
            sub: Box::new(Op::Unit),
        };
        assert_eq!(semi.execute(&instance, &ev).unwrap().len(), 3);
    }

    #[test]
    fn walk_binds_indices() {
        let instance = inst();
        let interp = Interp::with_builtins();
        let ev = Evaluator::new(&instance, &interp);
        let plan = Op::Walk {
            start: 0,
            steps: vec![
                WalkStep::UnnestList(Some(9)),
                WalkStep::Deref,
                WalkStep::Attr(docql_model::sym("price")),
            ],
            out: Some(1),
            input: Box::new(Op::Root {
                name: docql_model::sym("Items"),
                out: 0,
            }),
        };
        let rows = plan.execute(&instance, &ev).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2].get(&9), Some(&CalcValue::Data(Value::Int(2))));
        assert_eq!(rows[2].get(&1), Some(&CalcValue::Data(Value::Int(9))));
    }

    #[test]
    fn explain_renders_tree() {
        let plan = Op::Project {
            vars: vec![1],
            input: Box::new(Op::Root {
                name: docql_model::sym("Items"),
                out: 1,
            }),
        };
        let text = plan.explain();
        assert!(text.contains("Project #1"));
        assert!(text.contains("Root Items -> #1"));
        assert_eq!(plan.size(), 2);
    }
}
