//! The statistics-driven cost model (ROADMAP item 2: §5's "efficient
//! algebraic techniques", made quantitative).
//!
//! Plans were chosen blind: the compiler always preferred an
//! [`Op::IndexPathScan`] lowering and executed conjuncts and union branches
//! in textual order. This module supplies the two things a cost-based
//! planner needs on top of that machinery:
//!
//! * [`StatsSource`] — the read interface to live store statistics
//!   (document/object counts, path-extent cardinalities per interned key,
//!   text-index posting lengths). A store exposes its current MVCC snapshot
//!   through this trait, so every number a plan is costed against comes from
//!   one immutable version — stats are never torn. The [`StatsSource::version`]
//!   is recorded in the resulting [`PlanEstimates`] and lets caches detect
//!   drift.
//! * [`PlanEstimates`] — per-operator estimated rows and cost for one plan,
//!   indexed by the same pre-order numbering [`crate::PlanProfile`] uses, so
//!   `EXPLAIN ANALYZE` can print estimate and actual on one line.
//!
//! The model itself is deliberately small (the paper's algebra has no joins
//! to reorder): each atom gets a [`CostProfile`] — a per-input-row `unit`
//! cost and a `fanout` (output rows per input row; a selectivity when < 1).
//! Conjuncts are ordered by the classical pairwise rule (`A` before `B` iff
//! `uA + fA·uB < uB + fB·uA`), applied conservatively: the compiler deviates
//! from the heuristic textual order only when the win clears
//! [`REORDER_MARGIN`], so well-estimated ties keep their stable, heuristic
//! plans byte-for-byte.

use crate::plan::{Op, WalkStep};
use docql_calculus::{Atom, DataTerm};
use docql_model::sym;
use docql_paths::ExtStep;

/// Fan-out assumed for an unnest step the extent index cannot answer.
pub const DEFAULT_STEP_FANOUT: f64 = 4.0;
/// Selectivity of an equality filter over bound terms.
pub const EQ_SELECTIVITY: f64 = 0.2;
/// Selectivity of a membership filter.
pub const IN_SELECTIVITY: f64 = 0.3;
/// Selectivity of an uninterpreted predicate.
pub const PRED_SELECTIVITY: f64 = 0.5;
/// A conjunct overtakes an earlier one only when the pairwise cost of
/// running it first is better by at least this factor — estimates are
/// noisy, and ties must keep the heuristic's stable textual order.
pub const REORDER_MARGIN: f64 = 1.15;
/// Observed-vs-estimated row ratio beyond which a cached plan is considered
/// stale and re-planned against fresh statistics.
pub const REPLAN_DIVERGENCE: f64 = 8.0;

/// Live statistics a planner may consult. Implementations read one
/// immutable store snapshot; [`StatsSource::version`] changes whenever the
/// underlying data (and therefore any statistic) may have changed.
pub trait StatsSource {
    /// Monotonic version of the statistics (the store's mutation counter).
    fn version(&self) -> u64;
    /// Number of ingested documents.
    fn documents(&self) -> u64;
    /// Number of objects in the instance.
    fn objects(&self) -> u64;
    /// Total targets materialised for a class-blind path key, when the key
    /// is interned by the path-extent index; `None` means plans over this
    /// key walk.
    fn extent_targets(&self, key: &[ExtStep]) -> Option<u64>;
    /// Posting length of a term: documents containing it.
    fn posting_docs(&self, term: &str) -> u64;
    /// Average words per indexed document (text re-check cost driver).
    fn avg_doc_words(&self) -> u64;
}

/// Per-input-row cost and fan-out of one conjunct or operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostProfile {
    /// Work per input row, in abstract step units.
    pub unit: f64,
    /// Output rows per input row (< 1 for selective filters).
    pub fanout: f64,
}

impl CostProfile {
    /// The profile of doing nothing: free, row-preserving.
    pub fn neutral() -> CostProfile {
        CostProfile {
            unit: 0.0,
            fanout: 1.0,
        }
    }

    /// The profile assumed when nothing is known — never wins a reorder.
    pub fn opaque() -> CostProfile {
        CostProfile {
            unit: 1.0,
            fanout: 1.0,
        }
    }

    /// Sequential composition: run `self`, then `next` on its output.
    pub fn then(self, next: CostProfile) -> CostProfile {
        CostProfile {
            unit: self.unit + self.fanout * next.unit,
            fanout: self.fanout * next.fanout,
        }
    }

    /// Should `self` run before `other`? The classical pairwise ordering
    /// rule with a margin: true only when `self`-first is cheaper by more
    /// than [`REORDER_MARGIN`], so near-ties preserve the existing order.
    pub fn clearly_before(&self, other: &CostProfile) -> bool {
        let self_first = self.unit + self.fanout * other.unit;
        let other_first = other.unit + other.fanout * self.unit;
        self_first.is_finite()
            && other_first.is_finite()
            && self_first * REORDER_MARGIN < other_first
    }
}

/// Map walk steps to the class-blind extent key they cover, plus whether
/// they begin with a collection-lead unnest. `None` key: the pattern has no
/// extent analogue (constant/variable indexing, `UnnestColl`). Binder
/// liveness is ignored — an undroppable binder forces the *walk*, but the
/// extent still predicts its cardinality.
fn steps_key(steps: &[WalkStep]) -> (bool, Option<Vec<ExtStep>>) {
    let mut rest = steps;
    let mut lead = false;
    if let Some(WalkStep::UnnestList(_)) = rest.first() {
        lead = true;
        rest = &rest[1..];
    }
    let mut key = Vec::new();
    for step in rest {
        match step {
            WalkStep::Deref => key.push(ExtStep::Deref),
            WalkStep::Attr(a) => key.push(ExtStep::Attr(*a)),
            WalkStep::UnnestList(_) => key.push(ExtStep::ListElem),
            WalkStep::UnnestSet(_) => key.push(ExtStep::SetElem),
            // Zero-width: binds the value reached so far.
            WalkStep::Bind(_) => {}
            WalkStep::Index(_) | WalkStep::IndexVar(_) | WalkStep::UnnestColl => {
                return (lead, None)
            }
        }
    }
    (lead, Some(key))
}

/// Cost profile of a path navigation. When the extent index knows the key,
/// fan-out is the measured extent cardinality (absolute after a
/// collection-lead unnest — the input is then one collection row — else per
/// document); otherwise each unnest is charged [`DEFAULT_STEP_FANOUT`]
/// (the collection lead fans out to the document count).
pub fn walk_profile(steps: &[WalkStep], stats: &dyn StatsSource) -> CostProfile {
    let docs = stats.documents().max(1) as f64;
    let (lead, key) = steps_key(steps);
    let fanout = match key.as_deref().and_then(|k| stats.extent_targets(k)) {
        Some(n) => {
            if lead {
                n as f64
            } else {
                n as f64 / docs
            }
        }
        None => {
            let mut f = 1.0f64;
            let mut first = true;
            for step in steps {
                match step {
                    WalkStep::UnnestList(_) | WalkStep::UnnestColl => {
                        f *= if first { docs } else { DEFAULT_STEP_FANOUT };
                    }
                    WalkStep::UnnestSet(_) => f *= DEFAULT_STEP_FANOUT,
                    _ => {}
                }
                first = false;
            }
            f
        }
    };
    CostProfile {
        unit: 1.0 + steps.len() as f64,
        fanout: fanout.clamp(0.0, 1e15),
    }
}

/// Literal (alphanumeric) words of a `contains` pattern string.
fn pattern_words(pattern: &str) -> impl Iterator<Item = &str> {
    pattern
        .split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
}

/// Cost profile of a text predicate: selectivity from the rarest literal
/// word's posting length, unit from the average document length (candidates
/// are re-checked against stored text).
pub fn contains_profile(pattern: &str, stats: &dyn StatsSource) -> CostProfile {
    let docs = stats.documents().max(1) as f64;
    let sel = pattern_words(pattern)
        .map(|w| stats.posting_docs(w) as f64 / docs)
        .fold(1.0f64, f64::min);
    CostProfile {
        unit: 1.0 + stats.avg_doc_words() as f64 / 4.0,
        // Unseen words may still match through pattern operators; floor the
        // selectivity so estimates stay nonzero.
        fanout: sel.clamp(0.5 / docs, 1.0),
    }
}

/// Cost profile of an atom evaluated as a filter (all variables bound).
pub fn filter_profile(atom: &Atom, stats: &dyn StatsSource) -> CostProfile {
    match atom {
        Atom::Pred(n, args) if *n == sym("contains") && args.len() == 2 => match &args[1] {
            DataTerm::Const(docql_model::Value::Str(p)) => contains_profile(p, stats),
            _ => CostProfile {
                unit: 1.0 + stats.avg_doc_words() as f64 / 4.0,
                fanout: PRED_SELECTIVITY,
            },
        },
        Atom::Pred(n, _) if *n == sym("near") => CostProfile {
            unit: 1.0 + stats.avg_doc_words() as f64 / 8.0,
            fanout: PRED_SELECTIVITY,
        },
        Atom::Pred(..) => CostProfile {
            unit: 1.0,
            fanout: PRED_SELECTIVITY,
        },
        Atom::Eq(..) => CostProfile {
            unit: 0.5,
            fanout: EQ_SELECTIVITY,
        },
        Atom::In(..) => CostProfile {
            unit: 0.5,
            fanout: IN_SELECTIVITY,
        },
        Atom::Subset(..) => CostProfile {
            unit: 1.0,
            fanout: PRED_SELECTIVITY,
        },
        // Path predicates never reach Filter; charge neutrally.
        Atom::PathPred(..) => CostProfile::opaque(),
    }
}

/// Estimated rows and cost per plan operator, indexed by the pre-order node
/// numbering shared with [`crate::PlanProfile`] and
/// [`Op::explain_annotated`]. Attached to an [`crate::Algebraized`] by the
/// stats-aware algebraizer; the version pins which statistics snapshot the
/// estimates were computed against.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanEstimates {
    /// [`StatsSource::version`] at estimation time.
    pub stats_version: u64,
    rows: Vec<f64>,
    cost: Vec<f64>,
}

impl PlanEstimates {
    /// Estimated output rows of `node` (pre-order id).
    pub fn rows(&self, node: usize) -> f64 {
        self.rows.get(node).copied().unwrap_or(0.0)
    }

    /// Estimated cumulative cost of `node` (children included — the same
    /// inclusive convention the profile's timings use).
    pub fn cost(&self, node: usize) -> f64 {
        self.cost.get(node).copied().unwrap_or(0.0)
    }

    /// Estimated rows of the plan root.
    pub fn root_rows(&self) -> f64 {
        self.rows(0)
    }

    /// Estimated total cost of the plan.
    pub fn root_cost(&self) -> f64 {
        self.cost(0)
    }

    /// The per-node annotation rendered into explain lines.
    pub fn annotation(&self, node: usize) -> String {
        format!(
            "est_rows={} est_cost={}",
            round_est(self.rows(node)),
            round_est(self.cost(node))
        )
    }

    /// Render `plan` with estimates on every operator line (`EXPLAIN` with
    /// costs; `plan` must be the plan these estimates were computed from).
    pub fn render(&self, plan: &Op) -> String {
        plan.explain_annotated(&|id| format!("  [{}]", self.annotation(id)))
    }
}

fn round_est(x: f64) -> u64 {
    if x.is_finite() {
        x.round().clamp(0.0, 1e15) as u64
    } else {
        0
    }
}

/// Estimate `plan` bottom-up against `stats`, assigning pre-order ids in
/// the exact order [`crate::PlanProfile::new`] and
/// [`Op::explain_annotated`] number the tree.
pub fn estimate(plan: &Op, stats: &dyn StatsSource) -> PlanEstimates {
    let mut est = PlanEstimates {
        stats_version: stats.version(),
        rows: Vec::new(),
        cost: Vec::new(),
    };
    est_node(plan, 1.0, &mut est, stats);
    est
}

fn est_node(op: &Op, in_rows: f64, e: &mut PlanEstimates, stats: &dyn StatsSource) -> (f64, f64) {
    let id = e.rows.len();
    e.rows.push(0.0);
    e.cost.push(0.0);
    let docs = stats.documents().max(1) as f64;
    let (rows, cost) = match op {
        Op::Unit => (in_rows, 0.0),
        Op::Root { .. } => (in_rows, 1.0),
        Op::Walk { input, steps, .. } => {
            let (r, c) = est_node(input, in_rows, e, stats);
            let p = walk_profile(steps, stats);
            let out = r * p.fanout;
            (out, c + r * p.unit + out)
        }
        Op::IndexPathScan(scan) => {
            let (r, c) = est_node(&scan.input, in_rows, e, stats);
            let covered = stats.extent_targets(&scan.key);
            let fanout = match covered {
                Some(n) => {
                    if scan.lead.is_some() {
                        n as f64
                    } else {
                        n as f64 / docs
                    }
                }
                None => walk_profile(&scan.steps, stats).fanout,
            };
            let out = r * fanout.clamp(0.0, 1e15);
            // An extent hit replaces the per-step walk with one lookup.
            let unit = if covered.is_some() {
                1.0
            } else {
                1.0 + scan.steps.len() as f64
            };
            (out, c + r * unit + out)
        }
        Op::Filter { input, atom } => {
            let (r, c) = est_node(input, in_rows, e, stats);
            let p = filter_profile(atom, stats);
            (r * p.fanout, c + r * p.unit)
        }
        Op::Assign { input, .. } => {
            let (r, c) = est_node(input, in_rows, e, stats);
            (r, c + r * 0.5)
        }
        Op::Union(branches) => {
            let mut rows = 0.0;
            let mut cost = 0.0;
            for b in branches {
                let (r, c) = est_node(b, in_rows, e, stats);
                rows += r;
                cost += c;
            }
            (rows, cost)
        }
        Op::Semi { input, sub } | Op::AntiSemi { input, sub } => {
            let (r, c) = est_node(input, in_rows, e, stats);
            // The sub-plan runs once per outer row, from a one-row input.
            let (_, sub_cost) = est_node(sub, 1.0, e, stats);
            (r * PRED_SELECTIVITY, c + r * sub_cost)
        }
        Op::Project { input, .. } => {
            let (r, c) = est_node(input, in_rows, e, stats);
            (r, c + r * 0.5)
        }
        Op::Pipe(first, second) => {
            let (r1, c1) = est_node(first, in_rows, e, stats);
            let (r2, c2) = est_node(second, r1, e, stats);
            (r2, c1 + c2)
        }
    };
    let rows = if rows.is_finite() {
        rows.clamp(0.0, 1e15)
    } else {
        1e15
    };
    let cost = if cost.is_finite() {
        cost.clamp(0.0, 1e18)
    } else {
        1e18
    };
    e.rows[id] = rows;
    e.cost[id] = cost;
    (rows, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// A fixed in-memory stats source for model tests.
    #[derive(Default)]
    pub struct FixedStats {
        pub version: u64,
        pub documents: u64,
        pub objects: u64,
        pub extents: BTreeMap<Vec<ExtStep>, u64>,
        pub postings: BTreeMap<String, u64>,
        pub avg_words: u64,
    }

    impl StatsSource for FixedStats {
        fn version(&self) -> u64 {
            self.version
        }
        fn documents(&self) -> u64 {
            self.documents
        }
        fn objects(&self) -> u64 {
            self.objects
        }
        fn extent_targets(&self, key: &[ExtStep]) -> Option<u64> {
            self.extents.get(key).copied()
        }
        fn posting_docs(&self, term: &str) -> u64 {
            self.postings.get(term).copied().unwrap_or(0)
        }
        fn avg_doc_words(&self) -> u64 {
            self.avg_words
        }
    }

    #[test]
    fn pairwise_rule_orders_selective_filter_first() {
        // A selective cheap filter clearly beats a fanning walk.
        let filter = CostProfile {
            unit: 1.0,
            fanout: 0.05,
        };
        let walk = CostProfile {
            unit: 5.0,
            fanout: 20.0,
        };
        assert!(filter.clearly_before(&walk));
        assert!(!walk.clearly_before(&filter));
        // Near-ties stay put in both directions — stability.
        let a = CostProfile {
            unit: 1.0,
            fanout: 0.5,
        };
        let b = CostProfile {
            unit: 1.05,
            fanout: 0.5,
        };
        assert!(!a.clearly_before(&b));
        assert!(!b.clearly_before(&a));
    }

    #[test]
    fn contains_selectivity_tracks_posting_lengths() {
        let mut stats = FixedStats {
            documents: 100,
            avg_words: 40,
            ..FixedStats::default()
        };
        stats.postings.insert("common".into(), 90);
        stats.postings.insert("rare".into(), 1);
        let common = contains_profile("common", &stats);
        let rare = contains_profile("rare", &stats);
        assert!(rare.fanout < common.fanout);
        assert!(rare.clearly_before(&common));
        // Multi-word patterns take the rarest word.
        let both = contains_profile("common rare", &stats);
        assert_eq!(both.fanout, rare.fanout);
        // Unknown words floor at a nonzero selectivity.
        assert!(contains_profile("zzz", &stats).fanout > 0.0);
    }

    #[test]
    fn walk_fanout_prefers_measured_extents() {
        let mut stats = FixedStats {
            documents: 10,
            ..FixedStats::default()
        };
        let key = vec![ExtStep::Deref, ExtStep::Attr(sym("title"))];
        stats.extents.insert(key.clone(), 10);
        // Per-document when there is no collection lead.
        let steps = vec![WalkStep::Deref, WalkStep::Attr(sym("title"))];
        let p = walk_profile(&steps, &stats);
        assert_eq!(p.fanout, 1.0);
        // Absolute when the walk fans over the collection first.
        let lead_steps = vec![
            WalkStep::UnnestList(None),
            WalkStep::Deref,
            WalkStep::Attr(sym("title")),
        ];
        stats.extents.insert(key, 10);
        let p = walk_profile(&lead_steps, &stats);
        assert_eq!(p.fanout, 10.0);
        // Unknown keys fall back to the per-step default, with the lead
        // charged at the document count.
        let unknown = vec![
            WalkStep::UnnestList(None),
            WalkStep::Attr(sym("ghost")),
            WalkStep::UnnestSet(None),
        ];
        let p = walk_profile(&unknown, &stats);
        assert_eq!(p.fanout, 10.0 * DEFAULT_STEP_FANOUT);
    }

    #[test]
    fn estimates_use_profile_preorder_numbering() {
        use crate::PlanProfile;
        let plan = Op::Project {
            vars: vec![1],
            input: Box::new(Op::Semi {
                input: Box::new(Op::Walk {
                    start: 0,
                    steps: vec![WalkStep::UnnestList(None)],
                    out: Some(1),
                    input: Box::new(Op::Root {
                        name: sym("Items"),
                        out: 0,
                    }),
                }),
                sub: Box::new(Op::Unit),
            }),
        };
        let stats = FixedStats {
            documents: 8,
            ..FixedStats::default()
        };
        let est = estimate(&plan, &stats);
        let profile = PlanProfile::new(&plan);
        assert_eq!(est.rows.len(), profile.len());
        // Node 2 is the Walk (same id the profile assigns); its unnest over
        // the collection fans out to the document count.
        assert_eq!(profile.child(1, 0), 2);
        assert_eq!(est.rows(2), 8.0);
        assert!(est.root_cost() > 0.0);
        let text = est.render(&plan);
        assert!(text.contains("est_rows="), "{text}");
    }
}
