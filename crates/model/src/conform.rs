//! Type interpretations `dom(τ)` as a membership test (§5.1).
//!
//! The paper defines `dom(τ)` denotationally; operationally we provide
//! `conforms(v, τ, instance)` deciding `v ∈ dom(τ)`. The instance supplies
//! the oid assignment `π` needed for class types.
//!
//! Salient points, straight from the paper's definition:
//! * `dom(c) = π(c) ∪ {nil}` — `nil` belongs to every class type;
//! * `dom([a₁:τ₁,…,aₖ:τₖ])` contains tuples with *additional* attributes
//!   (`l ≥ 0` extras) — width subtyping at the value level;
//! * `dom((a₁:τ₁+…+aₖ:τₖ)) = ∪ dom([aᵢ:τᵢ])` — a union member is any value
//!   that is (≡ to) a tuple providing one of the marked alternatives;
//! * `dom(any) = ∪ π(c)` — all oids.

use crate::instance::Instance;
use crate::types::Type;
use crate::value::Value;

/// Decide `v ∈ dom(τ)` relative to an instance (for `π`) and its schema
/// (for `σ` and `≺`).
pub fn conforms(v: &Value, ty: &Type, instance: &Instance) -> bool {
    match (v, ty) {
        // nil is the undefined value: member of every class type (dom(c)
        // includes nil) but of no atomic/collection type.
        (Value::Nil, Type::Class(_)) => true,
        (Value::Nil, Type::Any) => true,
        (Value::Nil, _) => false,
        (Value::Int(_), Type::Integer) => true,
        // integer ⊆ float at the value level mirrors integer ≤ float.
        (Value::Int(_), Type::Float) => true,
        (Value::Float(_), Type::Float) => true,
        (Value::Bool(_), Type::Boolean) => true,
        (Value::Str(_), Type::String) => true,
        (Value::Oid(o), Type::Any) => instance.class_of(*o).is_ok(),
        (Value::Oid(o), Type::Class(c)) => instance.oid_in_class(*o, *c),
        (Value::List(items), Type::List(t)) => items.iter().all(|x| conforms(x, t, instance)),
        (Value::Set(items), Type::Set(t)) => items.iter().all(|x| conforms(x, t, instance)),
        (Value::Tuple(fields), Type::Tuple(fs)) => {
            // The type's attributes must appear in the value as an
            // order-preserving subsequence, each component conforming.
            let mut pos = 0;
            'outer: for f in fs {
                while pos < fields.len() {
                    let (name, val) = &fields[pos];
                    pos += 1;
                    if *name == f.name {
                        if conforms(val, &f.ty, instance) {
                            continue 'outer;
                        }
                        return false;
                    }
                }
                return false;
            }
            true
        }
        // A marked-union *value* conforms to a union type when its marker
        // names an alternative and the payload conforms.
        (Value::Union(m, payload), Type::Union(us)) => us
            .iter()
            .any(|u| u.name == *m && conforms(payload, &u.ty, instance)),
        // dom(union) = ∪ dom([aᵢ:τᵢ]): a plain tuple is in the union's domain
        // if it is in the domain of one of the singleton-tuple types.
        (Value::Tuple(_), Type::Union(us)) => us
            .iter()
            .any(|u| conforms(v, &Type::Tuple(vec![u.clone()]), instance)),
        // A marked-union value viewed as a singleton tuple (≡) against a
        // tuple type.
        (Value::Union(m, payload), Type::Tuple(fs)) => match fs.len() {
            0 => true,
            1 => fs[0].name == *m && conforms(payload, &fs[0].ty, instance),
            _ => false,
        },
        // Tuple-as-heterogeneous-list (§5.1 rule 2): a tuple value belongs to
        // a list type when each component, viewed as a singleton, does.
        (Value::Tuple(fields), Type::List(t)) => fields
            .iter()
            .all(|(n, val)| conforms(&Value::Union(*n, Box::new(val.clone())), t, instance)),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::ClassDef;
    use crate::schema::Schema;
    use std::sync::Arc;

    fn inst() -> Instance {
        let schema = Arc::new(
            Schema::builder()
                .class(ClassDef::new(
                    "Text",
                    Type::tuple([("contents", Type::String)]),
                ))
                .class(ClassDef::new("Title", Type::Any).inherit("Text"))
                .class(ClassDef::new(
                    "Bitmap",
                    Type::tuple([("bits", Type::String)]),
                ))
                .build()
                .unwrap(),
        );
        Instance::new(schema)
    }

    #[test]
    fn atomic_membership() {
        let i = inst();
        assert!(conforms(&Value::Int(3), &Type::Integer, &i));
        assert!(conforms(&Value::Int(3), &Type::Float, &i));
        assert!(!conforms(&Value::Float(3.0), &Type::Integer, &i));
        assert!(conforms(&Value::str("x"), &Type::String, &i));
        assert!(!conforms(&Value::Bool(true), &Type::String, &i));
    }

    #[test]
    fn nil_in_class_types_only() {
        let i = inst();
        assert!(conforms(&Value::Nil, &Type::class("Text"), &i));
        assert!(conforms(&Value::Nil, &Type::Any, &i));
        assert!(!conforms(&Value::Nil, &Type::Integer, &i));
        assert!(!conforms(&Value::Nil, &Type::list(Type::Integer), &i));
    }

    #[test]
    fn oid_membership_uses_pi() {
        let mut i = inst();
        let o = i
            .new_object("Title", Value::tuple([("contents", Value::str("t"))]))
            .unwrap();
        assert!(conforms(&Value::Oid(o), &Type::class("Title"), &i));
        assert!(conforms(&Value::Oid(o), &Type::class("Text"), &i));
        assert!(!conforms(&Value::Oid(o), &Type::class("Bitmap"), &i));
        assert!(conforms(&Value::Oid(o), &Type::Any, &i));
    }

    #[test]
    fn tuple_width_membership() {
        let i = inst();
        // dom([a:int]) contains tuples with extra attributes.
        let v = Value::tuple([("a", Value::Int(1)), ("b", Value::str("x"))]);
        assert!(conforms(&v, &Type::tuple([("a", Type::Integer)]), &i));
        assert!(conforms(
            &v,
            &Type::tuple([("a", Type::Integer), ("b", Type::String)]),
            &i
        ));
        // Order matters: [b, a] required but value has [a, b].
        assert!(!conforms(
            &v,
            &Type::tuple([("b", Type::String), ("a", Type::Integer)]),
            &i
        ));
        assert!(!conforms(&v, &Type::tuple([("c", Type::Integer)]), &i));
    }

    #[test]
    fn union_membership() {
        let i = inst();
        let uty = Type::union([("a", Type::Integer), ("b", Type::String)]);
        assert!(conforms(&Value::union("a", Value::Int(1)), &uty, &i));
        assert!(conforms(&Value::union("b", Value::str("x")), &uty, &i));
        assert!(!conforms(&Value::union("c", Value::Int(1)), &uty, &i));
        assert!(!conforms(&Value::union("a", Value::str("wrong")), &uty, &i));
        // Plain tuples providing an alternative are in dom(union).
        assert!(conforms(&Value::tuple([("a", Value::Int(1))]), &uty, &i));
    }

    #[test]
    fn tuple_as_hetero_list_membership() {
        let i = inst();
        // [from:…, to:…] ∈ dom([(from:string + to:string)])
        let letter = Value::tuple([("from", Value::str("bob")), ("to", Value::str("alice"))]);
        let hetero = Type::list(Type::union([("from", Type::String), ("to", Type::String)]));
        assert!(conforms(&letter, &hetero, &i));
        // A list of marked values conforms likewise.
        let as_list = Value::list([
            Value::union("from", Value::str("bob")),
            Value::union("to", Value::str("alice")),
        ]);
        assert!(conforms(&as_list, &hetero, &i));
    }

    #[test]
    fn collections_check_elements() {
        let i = inst();
        assert!(conforms(
            &Value::list([Value::Int(1), Value::Int(2)]),
            &Type::list(Type::Integer),
            &i
        ));
        assert!(!conforms(
            &Value::list([Value::Int(1), Value::str("x")]),
            &Type::list(Type::Integer),
            &i
        ));
        assert!(conforms(
            &Value::set([Value::str("a")]),
            &Type::set(Type::String),
            &i
        ));
        assert!(conforms(
            &Value::List(vec![]),
            &Type::list(Type::Integer),
            &i
        ));
    }

    #[test]
    fn subtype_implies_dom_containment_sampled() {
        // τ ≤ τ' ⇒ dom(τ) ⊆ dom(τ') on a few witnesses.
        let i = inst();
        let sub = Type::tuple([("a", Type::Integer), ("b", Type::String)]);
        let sup = Type::union([("a", Type::Integer), ("b", Type::String)]);
        let witness = Value::tuple([("a", Value::Int(1)), ("b", Value::str("s"))]);
        let ops = i.schema().type_ops();
        assert!(ops.is_subtype(&sub, &sup));
        assert!(conforms(&witness, &sub, &i));
        assert!(conforms(&witness, &sup, &i));
    }
}
