//! Interned symbols for attribute, class, method and root-of-persistence names.
//!
//! The paper's formal model (§5.1) assumes infinite alphabets `att` of attribute
//! names and `class` of class names. We intern every name into a process-global
//! table so that the `Sym` handle is `Copy` and name comparison — which sits on
//! the hot path of subtyping, path matching and query evaluation — is a single
//! `u32` compare.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned name (attribute, class, marker, root, method, …).
///
/// Two `Sym`s are equal iff they intern the same string. The ordering of
/// `Sym` values is *intern order*, not lexicographic; use [`Sym::as_str`]
/// when a lexicographic order is needed.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

struct Interner {
    names: Vec<&'static str>,
    index: HashMap<&'static str, u32>,
}

fn interner() -> &'static RwLock<Interner> {
    static TABLE: OnceLock<RwLock<Interner>> = OnceLock::new();
    TABLE.get_or_init(|| {
        RwLock::new(Interner {
            names: Vec::new(),
            index: HashMap::new(),
        })
    })
}

impl Sym {
    /// Intern `name`, returning its symbol. Idempotent.
    pub fn new(name: &str) -> Sym {
        {
            let table = interner().read().expect("symbol table poisoned");
            if let Some(&id) = table.index.get(name) {
                return Sym(id);
            }
        }
        let mut table = interner().write().expect("symbol table poisoned");
        if let Some(&id) = table.index.get(name) {
            return Sym(id);
        }
        // Leaking is deliberate: the set of distinct names in a session is
        // bounded by schema + query text, and a 'static str lets lookups
        // avoid any allocation.
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = u32::try_from(table.names.len()).expect("symbol table overflow");
        table.names.push(leaked);
        table.index.insert(leaked, id);
        Sym(id)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        let table = interner().read().expect("symbol table poisoned");
        table.names[self.0 as usize]
    }

    /// Raw interner id (stable within a process run).
    pub fn id(self) -> u32 {
        self.0
    }

    /// Compare two symbols by their textual names.
    pub fn cmp_str(self, other: Sym) -> std::cmp::Ordering {
        if self == other {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({:?})", self.as_str())
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::new(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Sym {
        Sym::new(&s)
    }
}

/// Convenience: intern a name.
pub fn sym(name: &str) -> Sym {
    Sym::new(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Sym::new("title");
        let b = Sym::new("title");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "title");
    }

    #[test]
    fn distinct_names_are_distinct() {
        assert_ne!(Sym::new("title"), Sym::new("author"));
    }

    #[test]
    fn display_matches_source() {
        assert_eq!(Sym::new("sections").to_string(), "sections");
    }

    #[test]
    fn cmp_str_is_lexicographic() {
        use std::cmp::Ordering;
        assert_eq!(
            Sym::new("abstract").cmp_str(Sym::new("title")),
            Ordering::Less
        );
        assert_eq!(
            Sym::new("title").cmp_str(Sym::new("title")),
            Ordering::Equal
        );
    }

    #[test]
    fn empty_name_is_internable() {
        let e = Sym::new("");
        assert_eq!(e.as_str(), "");
    }

    #[test]
    fn interning_from_many_threads() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    for j in 0..100 {
                        let s = Sym::new(&format!("thread-shared-{}", j % 10));
                        assert!(s.as_str().starts_with("thread-shared-"));
                        let _ = Sym::new(&format!("thread-{i}-{j}"));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // All threads must agree on the interning of the shared names.
        let s = Sym::new("thread-shared-3");
        assert_eq!(s, Sym::new("thread-shared-3"));
    }
}
