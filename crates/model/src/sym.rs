//! Interned symbols for attribute, class, method and root-of-persistence names.
//!
//! The paper's formal model (§5.1) assumes infinite alphabets `att` of attribute
//! names and `class` of class names. We intern every name into a process-global
//! table so that the `Sym` handle is `Copy` and name comparison — which sits on
//! the hot path of subtyping, path matching and query evaluation — is a single
//! `u32` compare.

use crate::error::ModelError;
use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// An interned name (attribute, class, marker, root, method, …).
///
/// Two `Sym`s are equal iff they intern the same string. The ordering of
/// `Sym` values is *intern order*, not lexicographic; use [`Sym::as_str`]
/// when a lexicographic order is needed.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

struct Interner {
    names: Vec<&'static str>,
    index: HashMap<&'static str, u32>,
}

fn interner() -> &'static RwLock<Interner> {
    static TABLE: OnceLock<RwLock<Interner>> = OnceLock::new();
    TABLE.get_or_init(|| {
        RwLock::new(Interner {
            names: Vec::new(),
            index: HashMap::new(),
        })
    })
}

/// Read the interner, recovering (rather than panicking) if a thread
/// panicked while holding the lock. Recovery is sound because the single
/// writer path ([`Sym::try_new`]) allocates the id only after both the
/// `names` push and the `index` insert can no longer fail, and pushes the
/// entry pair back-to-back with nothing panicking in between — a poisoned
/// table is always a fully consistent table.
fn read_interner() -> RwLockReadGuard<'static, Interner> {
    interner().read().unwrap_or_else(PoisonError::into_inner)
}

/// Write access to the interner; see [`read_interner`] on poisoning.
fn write_interner() -> RwLockWriteGuard<'static, Interner> {
    interner().write().unwrap_or_else(PoisonError::into_inner)
}

/// Id reserved for the overflow sentinel: never allocated to a real name.
const OVERFLOW_ID: u32 = u32::MAX;

/// Checked id allocation for the next interned name: the table holds at
/// most `u32::MAX` names ([`OVERFLOW_ID`] stays reserved).
fn next_sym_id(len: usize) -> Result<u32, ModelError> {
    match u32::try_from(len) {
        Ok(id) if id != OVERFLOW_ID => Ok(id),
        _ => Err(ModelError::SymbolTableOverflow),
    }
}

impl Sym {
    /// Intern `name`, returning its symbol. Idempotent.
    ///
    /// Infallible facade over [`Sym::try_new`]: interner exhaustion (2³²−1
    /// distinct names — unreachable before memory exhaustion in any
    /// realistic session, since every name is leaked) collapses onto the
    /// reserved overflow sentinel instead of aborting the process. Paths
    /// that intern adversarial input and need the failure surfaced should
    /// call [`Sym::try_new`].
    pub fn new(name: &str) -> Sym {
        Sym::try_new(name).unwrap_or(Sym(OVERFLOW_ID))
    }

    /// Intern `name`, or report interner exhaustion as a typed error.
    pub fn try_new(name: &str) -> Result<Sym, ModelError> {
        {
            let table = read_interner();
            if let Some(&id) = table.index.get(name) {
                return Ok(Sym(id));
            }
        }
        let mut table = write_interner();
        if let Some(&id) = table.index.get(name) {
            return Ok(Sym(id));
        }
        // Check capacity *before* leaking, so a failing intern leaks nothing.
        let id = next_sym_id(table.names.len())?;
        // Leaking is deliberate: the set of distinct names in a session is
        // bounded by schema + query text, and a 'static str lets lookups
        // avoid any allocation.
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        table.names.push(leaked);
        table.index.insert(leaked, id);
        Ok(Sym(id))
    }

    /// The interned string. The reserved overflow sentinel (and any id not
    /// allocated by this process) renders as a fixed marker rather than
    /// panicking on the out-of-bounds index.
    pub fn as_str(self) -> &'static str {
        let table = read_interner();
        table
            .names
            .get(self.0 as usize)
            .copied()
            .unwrap_or("<sym:overflow>")
    }

    /// Raw interner id (stable within a process run).
    pub fn id(self) -> u32 {
        self.0
    }

    /// Compare two symbols by their textual names.
    pub fn cmp_str(self, other: Sym) -> std::cmp::Ordering {
        if self == other {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({:?})", self.as_str())
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::new(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Sym {
        Sym::new(&s)
    }
}

/// Convenience: intern a name.
pub fn sym(name: &str) -> Sym {
    Sym::new(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Sym::new("title");
        let b = Sym::new("title");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "title");
    }

    #[test]
    fn distinct_names_are_distinct() {
        assert_ne!(Sym::new("title"), Sym::new("author"));
    }

    #[test]
    fn display_matches_source() {
        assert_eq!(Sym::new("sections").to_string(), "sections");
    }

    #[test]
    fn cmp_str_is_lexicographic() {
        use std::cmp::Ordering;
        assert_eq!(
            Sym::new("abstract").cmp_str(Sym::new("title")),
            Ordering::Less
        );
        assert_eq!(
            Sym::new("title").cmp_str(Sym::new("title")),
            Ordering::Equal
        );
    }

    #[test]
    fn empty_name_is_internable() {
        let e = Sym::new("");
        assert_eq!(e.as_str(), "");
    }

    #[test]
    fn sym_id_allocation_fails_typed_at_capacity() {
        // 2³² distinct names cannot be interned in a test; exercise the
        // checked allocator at the boundary directly.
        assert_eq!(next_sym_id(0).unwrap(), 0);
        assert_eq!(next_sym_id(u32::MAX as usize - 1).unwrap(), u32::MAX - 1);
        assert_eq!(
            next_sym_id(u32::MAX as usize).unwrap_err(),
            ModelError::SymbolTableOverflow,
            "the sentinel id is never allocated"
        );
        assert_eq!(
            next_sym_id(u32::MAX as usize + 1).unwrap_err(),
            ModelError::SymbolTableOverflow
        );
    }

    #[test]
    fn overflow_sentinel_renders_without_panicking() {
        assert_eq!(Sym(OVERFLOW_ID).as_str(), "<sym:overflow>");
        assert_eq!(format!("{:?}", Sym(OVERFLOW_ID)), "Sym(\"<sym:overflow>\")");
    }

    #[test]
    fn interning_from_many_threads() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    for j in 0..100 {
                        let s = Sym::new(&format!("thread-shared-{}", j % 10));
                        assert!(s.as_str().starts_with("thread-shared-"));
                        let _ = Sym::new(&format!("thread-{i}-{j}"));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // All threads must agree on the interning of the shared names.
        let s = Sym::new("thread-shared-3");
        assert_eq!(s, Sym::new("thread-shared-3"));
    }
}
