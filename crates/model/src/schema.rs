//! Schemas `(C, σ, ≺, M, G)` (§5.1).
//!
//! A schema couples a well-formed class hierarchy with method signatures `M`
//! (carried for completeness, as in the paper) and named roots of persistence
//! `G`, each with an associated type.

use crate::error::{ModelError, Result};
use crate::hierarchy::{ClassDef, ClassHierarchy};
use crate::sym::Sym;
use crate::types::Type;
use std::collections::HashMap;
use std::fmt;

/// A method signature in `M`. The paper introduces methods "just for the sake
/// of completeness" and never uses them; we do the same, plus optional
/// interpreted-function dispatch in the calculus.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodSig {
    /// Receiver class.
    pub class: Sym,
    /// Method name.
    pub name: Sym,
    /// Argument types (excluding receiver).
    pub args: Vec<Type>,
    /// Result type.
    pub result: Type,
}

/// A schema `(C, σ, ≺, M, G)`.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    hierarchy: ClassHierarchy,
    methods: Vec<MethodSig>,
    roots: Vec<(Sym, Type)>,
    root_index: HashMap<Sym, usize>,
}

impl Schema {
    /// Start building a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder::default()
    }

    /// The class hierarchy `(C, σ, ≺)`.
    pub fn hierarchy(&self) -> &ClassHierarchy {
        &self.hierarchy
    }

    /// Method signatures `M`.
    pub fn methods(&self) -> &[MethodSig] {
        &self.methods
    }

    /// Roots of persistence `G` with their types, in declaration order.
    pub fn roots(&self) -> &[(Sym, Type)] {
        &self.roots
    }

    /// The declared type of a root of persistence.
    pub fn root_type(&self, name: Sym) -> Option<&Type> {
        self.root_index.get(&name).map(|&i| &self.roots[i].1)
    }

    /// Is `name` a root of persistence?
    pub fn has_root(&self, name: Sym) -> bool {
        self.root_index.contains_key(&name)
    }

    /// Subtype / lub operations bound to this schema's hierarchy.
    pub fn type_ops(&self) -> crate::subtype::TypeOps<'_> {
        crate::subtype::TypeOps::new(&self.hierarchy)
    }

    /// σ(c), resolved through inheritance for classes declared as
    /// `class X inherit Y` without a local type.
    pub fn class_type(&self, class: Sym) -> Option<Type> {
        self.hierarchy.resolved_sigma(class)
    }
}

impl fmt::Display for Schema {
    /// Render in the Fig. 3 style (`class … public type … constraint: …`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for def in self.hierarchy.classes() {
            write!(f, "class {}", def.name)?;
            for p in &def.parents {
                write!(f, " inherit {p}")?;
            }
            if def.ty != Type::Any {
                write!(
                    f,
                    " public type {}",
                    display_with_private(&def.ty, &def.private_attrs)
                )?;
            }
            if !def.constraints.is_empty() {
                let cs: Vec<String> = def.constraints.iter().map(|c| c.to_string()).collect();
                write!(f, " constraint: {}", cs.join(", "))?;
            }
            writeln!(f)?;
        }
        for (name, ty) in &self.roots {
            writeln!(f, "name {name}: {ty}")?;
        }
        Ok(())
    }
}

/// Render a type, prefixing `private ` on the listed top-level attributes,
/// as Fig. 3 does for e.g. `private status: string`.
fn display_with_private(ty: &Type, private: &[Sym]) -> String {
    match ty {
        Type::Tuple(fs) if !private.is_empty() => {
            let parts: Vec<String> = fs
                .iter()
                .map(|f| {
                    if private.contains(&f.name) {
                        format!("private {}: {}", f.name, f.ty)
                    } else {
                        format!("{}: {}", f.name, f.ty)
                    }
                })
                .collect();
            format!("tuple({})", parts.join(", "))
        }
        _ => ty.to_string(),
    }
}

/// Builder enforcing the §5.1 invariants at `build()` time: well-formed
/// hierarchy, resolvable root types, no duplicate roots.
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    hierarchy: ClassHierarchy,
    methods: Vec<MethodSig>,
    roots: Vec<(Sym, Type)>,
    pending_error: Option<ModelError>,
}

impl SchemaBuilder {
    /// Declare a class.
    pub fn class(mut self, def: ClassDef) -> Self {
        if self.pending_error.is_none() {
            if let Err(e) = self.hierarchy.add(def) {
                self.pending_error = Some(e);
            }
        }
        self
    }

    /// Declare a method signature.
    pub fn method(mut self, sig: MethodSig) -> Self {
        self.methods.push(sig);
        self
    }

    /// Declare a root of persistence `name: τ`.
    pub fn root(mut self, name: impl Into<Sym>, ty: Type) -> Self {
        self.roots.push((name.into(), ty));
        self
    }

    /// Finish: checks hierarchy closure, well-formedness, root name
    /// uniqueness and that root/method types only reference declared classes.
    pub fn build(mut self) -> Result<Schema> {
        if let Some(e) = self.pending_error.take() {
            return Err(e);
        }
        self.hierarchy.finish()?;
        self.hierarchy.validate()?;
        let mut root_index = HashMap::new();
        for (i, (name, ty)) in self.roots.iter().enumerate() {
            if root_index.insert(*name, i).is_some() {
                return Err(ModelError::DuplicateRoot(*name));
            }
            ty.validate()?;
            let mut refs = Vec::new();
            ty.referenced_classes(&mut refs);
            for c in refs {
                if !self.hierarchy.contains(c) {
                    return Err(ModelError::UnknownClass(c));
                }
            }
        }
        Ok(Schema {
            hierarchy: self.hierarchy,
            methods: self.methods,
            roots: self.roots,
            root_index,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::sym;

    fn text() -> ClassDef {
        ClassDef::new("Text", Type::tuple([("contents", Type::String)]))
    }

    #[test]
    fn build_simple_schema() {
        let s = Schema::builder()
            .class(text())
            .class(ClassDef::new("Title", Type::Any).inherit("Text"))
            .root("Articles", Type::list(Type::class("Title")))
            .build()
            .unwrap();
        assert!(s.has_root(sym("Articles")));
        assert_eq!(
            s.root_type(sym("Articles")),
            Some(&Type::list(Type::class("Title")))
        );
        assert_eq!(
            s.class_type(sym("Title")),
            Some(Type::tuple([("contents", Type::String)]))
        );
    }

    #[test]
    fn duplicate_root_rejected() {
        let r = Schema::builder()
            .class(text())
            .root("G", Type::Integer)
            .root("G", Type::String)
            .build();
        assert_eq!(r.unwrap_err(), ModelError::DuplicateRoot(sym("G")));
    }

    #[test]
    fn root_referencing_unknown_class_rejected() {
        let r = Schema::builder().root("G", Type::class("Nope")).build();
        assert_eq!(r.unwrap_err(), ModelError::UnknownClass(sym("Nope")));
    }

    #[test]
    fn class_error_is_deferred_to_build() {
        let r = Schema::builder().class(text()).class(text()).build();
        assert_eq!(r.unwrap_err(), ModelError::DuplicateClass(sym("Text")));
    }

    #[test]
    fn display_renders_fig3_style() {
        let s = Schema::builder()
            .class(text())
            .class(ClassDef::new("Title", Type::Any).inherit("Text"))
            .class(
                ClassDef::new(
                    "Article",
                    Type::tuple([("title", Type::class("Title")), ("status", Type::String)]),
                )
                .private("status"),
            )
            .root("Articles", Type::list(Type::class("Article")))
            .build()
            .unwrap();
        let text = s.to_string();
        assert!(text.contains("class Title inherit Text"));
        assert!(text.contains("private status: string"));
        assert!(text.contains("name Articles: list(Article)"));
    }

    #[test]
    fn ill_formed_inheritance_rejected() {
        // Child's σ must be a subtype of parent's σ.
        let r = Schema::builder()
            .class(ClassDef::new("P", Type::tuple([("a", Type::Integer)])))
            .class(ClassDef::new("K", Type::tuple([("b", Type::String)])).inherit("P"))
            .build();
        assert!(matches!(
            r.unwrap_err(),
            ModelError::IllFormedInheritance { .. }
        ));
    }

    #[test]
    fn well_formed_inheritance_accepted() {
        // K adds attributes and refines — [a:int, b:str] ≤ [a:float].
        let s = Schema::builder()
            .class(ClassDef::new("P", Type::tuple([("a", Type::Float)])))
            .class(
                ClassDef::new(
                    "K",
                    Type::tuple([("a", Type::Integer), ("b", Type::String)]),
                )
                .inherit("P"),
            )
            .build();
        assert!(s.is_ok());
    }
}
