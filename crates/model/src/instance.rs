//! Instances `(π, ν, μ, γ)` of a schema (§5.1).
//!
//! * `π` — the oid assignment: each oid belongs to exactly one most-specific
//!   class (the *disjoint* assignment `π_d`); the inherited assignment
//!   `π(c) = ∪ { π_d(c') | c' ≺ c }` is answered by [`Instance::oid_in_class`].
//! * `ν` — maps each oid to a value of the correct type.
//! * `μ` — method semantics; represented as named native functions, unused by
//!   the document workloads (kept for completeness as in the paper).
//! * `γ` — gives each root of persistence in `G` a value.

use crate::error::{ModelError, Result};
use crate::schema::Schema;
use crate::sym::Sym;
use crate::value::{Oid, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// One slot of the object table.
#[derive(Debug, Clone)]
struct ObjSlot {
    /// Most-specific class of the object (π_d⁻¹).
    class: Sym,
    /// ν(o).
    value: Value,
}

/// An instance over a shared schema.
///
/// Slots are held behind `Arc` so cloning an instance — the snapshot fork
/// path of the store layer — shares every object value structurally instead
/// of deep-copying the document corpus; a post-clone [`Instance::set_value`]
/// copies only the one touched slot (`Arc::make_mut`).
#[derive(Debug, Clone)]
pub struct Instance {
    schema: Arc<Schema>,
    objects: Vec<Arc<ObjSlot>>,
    roots: HashMap<Sym, Value>,
}

/// Checked oid allocation: the object table holds at most 2³² objects.
fn next_oid(len: usize) -> Result<Oid> {
    u32::try_from(len)
        .map(Oid)
        .map_err(|_| ModelError::OidOverflow)
}

impl Instance {
    /// Fresh, empty instance of `schema`.
    pub fn new(schema: Arc<Schema>) -> Instance {
        Instance {
            schema,
            objects: Vec::new(),
            roots: HashMap::new(),
        }
    }

    /// The schema this instance populates.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Shared handle to the schema.
    pub fn schema_arc(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// Allocate a fresh object `(o, v)` in `class`. The value is *not*
    /// type-checked here (documents are built bottom-up and may temporarily
    /// hold placeholders); call [`Instance::check`] once construction is
    /// complete.
    pub fn new_object(&mut self, class: impl Into<Sym>, value: Value) -> Result<Oid> {
        let class = class.into();
        if !self.schema.hierarchy().contains(class) {
            return Err(ModelError::UnknownClass(class));
        }
        let oid = next_oid(self.objects.len())?;
        self.objects.push(Arc::new(ObjSlot { class, value }));
        Ok(oid)
    }

    /// ν(o).
    pub fn value_of(&self, oid: Oid) -> Result<&Value> {
        self.objects
            .get(oid.0 as usize)
            .map(|s| &s.value)
            .ok_or(ModelError::DanglingOid(oid))
    }

    /// Update ν(o).
    pub fn set_value(&mut self, oid: Oid, value: Value) -> Result<()> {
        let slot = self
            .objects
            .get_mut(oid.0 as usize)
            .ok_or(ModelError::DanglingOid(oid))?;
        Arc::make_mut(slot).value = value;
        Ok(())
    }

    /// The most-specific class of an object.
    pub fn class_of(&self, oid: Oid) -> Result<Sym> {
        self.objects
            .get(oid.0 as usize)
            .map(|s| s.class)
            .ok_or(ModelError::DanglingOid(oid))
    }

    /// Is `oid ∈ π(class)` — i.e. is the object's most-specific class equal
    /// to or below `class`?
    pub fn oid_in_class(&self, oid: Oid, class: Sym) -> bool {
        match self.class_of(oid) {
            Ok(c) => self.schema.hierarchy().is_subclass(c, class),
            Err(_) => false,
        }
    }

    /// γ: bind a root of persistence. The root must be declared in `G`.
    pub fn set_root(&mut self, name: impl Into<Sym>, value: Value) -> Result<()> {
        let name = name.into();
        if !self.schema.has_root(name) {
            return Err(ModelError::UnknownRoot(name));
        }
        self.roots.insert(name, value);
        Ok(())
    }

    /// γ(name).
    pub fn root(&self, name: Sym) -> Result<&Value> {
        self.roots.get(&name).ok_or(ModelError::UnknownRoot(name))
    }

    /// All bound roots.
    pub fn roots(&self) -> impl Iterator<Item = (Sym, &Value)> {
        self.roots.iter().map(|(n, v)| (*n, v))
    }

    /// Number of allocated objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Iterate over all objects as `(oid, class, value)`.
    pub fn objects(&self) -> impl Iterator<Item = (Oid, Sym, &Value)> {
        self.objects
            .iter()
            .enumerate()
            .map(|(i, s)| (Oid(i as u32), s.class, &s.value))
    }

    /// Full instance check (§5.1 definition of instance):
    /// * every object's value is in `dom(σ(c))` for its class `c`,
    /// * every bound root's value is in `dom(type(g))`,
    /// * every class constraint holds.
    ///
    /// Returns all violations rather than failing fast, so document loaders
    /// can report comprehensively.
    pub fn check(&self) -> Vec<ModelError> {
        let mut errs = Vec::new();
        for (oid, class, value) in self.objects() {
            if let Some(ty) = self.schema.class_type(class) {
                if !crate::conform::conforms(value, &ty, self) {
                    errs.push(ModelError::TypeMismatch {
                        context: format!("object {oid} of class {class}"),
                        expected: ty.clone(),
                        got: value.to_string(),
                    });
                }
            }
            if let Some(def) = self.schema.hierarchy().get(class) {
                let checker = crate::constraint::ConstraintChecker::new(self);
                for c in &def.constraints {
                    if let Err(detail) = checker.check(c, value) {
                        errs.push(ModelError::ConstraintViolation { class, detail });
                    }
                }
            }
        }
        for (name, value) in &self.roots {
            if let Some(ty) = self.schema.root_type(*name) {
                if !crate::conform::conforms(value, ty, self) {
                    errs.push(ModelError::TypeMismatch {
                        context: format!("root {name}"),
                        expected: ty.clone(),
                        got: value.to_string(),
                    });
                }
            }
        }
        errs
    }

    /// Dereference a value: follow it if it is an oid, else return it as-is.
    /// `nil` stays `nil`.
    pub fn deref<'a>(&'a self, v: &'a Value) -> Result<&'a Value> {
        match v {
            Value::Oid(o) => self.value_of(*o),
            other => Ok(other),
        }
    }

    /// Approximate deep storage size of the instance in bytes (object table
    /// + root values), used by the B4 storage-overhead experiment.
    pub fn approx_bytes(&self) -> usize {
        fn value_bytes(v: &Value) -> usize {
            std::mem::size_of::<Value>()
                + match v {
                    Value::Str(s) => s.len(),
                    Value::Tuple(fs) => fs
                        .iter()
                        .map(|(_, v)| std::mem::size_of::<Sym>() + value_bytes(v))
                        .sum(),
                    Value::Union(_, v) => value_bytes(v),
                    Value::List(items) | Value::Set(items) => items.iter().map(value_bytes).sum(),
                    _ => 0,
                }
        }
        self.objects
            .iter()
            .map(|s| std::mem::size_of::<ObjSlot>() + value_bytes(&s.value))
            .sum::<usize>()
            + self.roots.values().map(value_bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::ClassDef;
    use crate::sym::sym;
    use crate::types::Type;

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::builder()
                .class(ClassDef::new(
                    "Text",
                    Type::tuple([("contents", Type::String)]),
                ))
                .class(ClassDef::new("Title", Type::Any).inherit("Text"))
                .root("Titles", Type::list(Type::class("Title")))
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn object_lifecycle() {
        let mut i = Instance::new(schema());
        let o = i
            .new_object("Title", Value::tuple([("contents", Value::str("Intro"))]))
            .unwrap();
        assert_eq!(i.class_of(o).unwrap(), sym("Title"));
        assert_eq!(
            i.value_of(o).unwrap(),
            &Value::tuple([("contents", Value::str("Intro"))])
        );
        i.set_value(o, Value::tuple([("contents", Value::str("Intro!"))]))
            .unwrap();
        assert_eq!(
            i.value_of(o).unwrap().attr(sym("contents")),
            Some(&Value::str("Intro!"))
        );
    }

    #[test]
    fn unknown_class_rejected() {
        let mut i = Instance::new(schema());
        assert_eq!(
            i.new_object("Nope", Value::Nil).unwrap_err(),
            ModelError::UnknownClass(sym("Nope"))
        );
    }

    #[test]
    fn dangling_oid_detected() {
        let i = Instance::new(schema());
        assert_eq!(
            i.value_of(Oid(9)).unwrap_err(),
            ModelError::DanglingOid(Oid(9))
        );
    }

    #[test]
    fn oid_class_membership_respects_inheritance() {
        let mut i = Instance::new(schema());
        let o = i
            .new_object("Title", Value::tuple([("contents", Value::str("x"))]))
            .unwrap();
        assert!(i.oid_in_class(o, sym("Title")));
        assert!(i.oid_in_class(o, sym("Text")), "π is inherited upward");
        assert!(!i.oid_in_class(o, sym("Titles")));
    }

    #[test]
    fn roots_must_be_declared() {
        let mut i = Instance::new(schema());
        assert!(i.set_root("Titles", Value::List(vec![])).is_ok());
        assert_eq!(
            i.set_root("Ghosts", Value::Nil).unwrap_err(),
            ModelError::UnknownRoot(sym("Ghosts"))
        );
    }

    #[test]
    fn check_flags_ill_typed_object_and_root() {
        let mut i = Instance::new(schema());
        let o = i.new_object("Title", Value::Int(42)).unwrap();
        i.set_root("Titles", Value::list([Value::Oid(o)])).unwrap();
        let errs = i.check();
        assert_eq!(errs.len(), 1, "object ill-typed, root ok: {errs:?}");
        // Now also break the root.
        i.set_root("Titles", Value::Int(3)).unwrap();
        assert_eq!(i.check().len(), 2);
    }

    #[test]
    fn check_accepts_well_typed_instance() {
        let mut i = Instance::new(schema());
        let o = i
            .new_object("Title", Value::tuple([("contents", Value::str("ok"))]))
            .unwrap();
        i.set_root("Titles", Value::list([Value::Oid(o)])).unwrap();
        assert!(i.check().is_empty());
    }

    #[test]
    fn deref_follows_oids() {
        let mut i = Instance::new(schema());
        let o = i
            .new_object("Title", Value::tuple([("contents", Value::str("t"))]))
            .unwrap();
        let v = Value::Oid(o);
        assert_eq!(
            i.deref(&v).unwrap(),
            &Value::tuple([("contents", Value::str("t"))])
        );
        assert_eq!(i.deref(&Value::Int(1)).unwrap(), &Value::Int(1));
    }

    #[test]
    fn oid_allocation_fails_typed_at_capacity() {
        // 2³² live objects cannot be built in a test; exercise the checked
        // allocator at the boundary directly.
        assert_eq!(next_oid(0).unwrap(), Oid(0));
        assert_eq!(next_oid(u32::MAX as usize).unwrap(), Oid(u32::MAX));
        assert_eq!(
            next_oid(u32::MAX as usize + 1).unwrap_err(),
            ModelError::OidOverflow
        );
    }

    #[test]
    fn cloned_instance_shares_slots_until_written() {
        let mut a = Instance::new(schema());
        let o = a
            .new_object("Title", Value::tuple([("contents", Value::str("v1"))]))
            .unwrap();
        let mut b = a.clone();
        assert!(Arc::ptr_eq(&a.objects[0], &b.objects[0]), "clone shares");
        b.set_value(o, Value::tuple([("contents", Value::str("v2"))]))
            .unwrap();
        assert_eq!(
            a.value_of(o).unwrap().attr(sym("contents")),
            Some(&Value::str("v1")),
            "writes to the clone never leak into the original"
        );
        assert_eq!(
            b.value_of(o).unwrap().attr(sym("contents")),
            Some(&Value::str("v2"))
        );
    }

    #[test]
    fn approx_bytes_grows_with_content() {
        let mut i = Instance::new(schema());
        let before = i.approx_bytes();
        i.new_object(
            "Title",
            Value::tuple([("contents", Value::str("hello world"))]),
        )
        .unwrap();
        assert!(i.approx_bytes() > before);
    }
}
