//! Error type for the data-model crate.

use crate::sym::Sym;
use crate::types::Type;
use std::fmt;

/// Errors raised while building or validating schemas and instances.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A class name was declared twice in the same hierarchy.
    DuplicateClass(Sym),
    /// A class, referenced from a type or an inheritance edge, is not declared.
    UnknownClass(Sym),
    /// A root of persistence name was declared twice.
    DuplicateRoot(Sym),
    /// A referenced root of persistence does not exist.
    UnknownRoot(Sym),
    /// The inheritance declaration `sub ≺ super` violates well-formedness:
    /// σ(sub) is not a subtype of σ(super).
    IllFormedInheritance { sub: Sym, sup: Sym },
    /// The inheritance relation contains a cycle through this class.
    InheritanceCycle(Sym),
    /// A tuple or union type repeats an attribute name.
    DuplicateAttribute { in_type: Type, attr: Sym },
    /// A union type with no alternatives (the paper's unions are non-empty).
    EmptyUnion,
    /// An object id is not allocated in the instance.
    DanglingOid(crate::value::Oid),
    /// A value does not belong to the interpretation `dom(τ)` of the type it
    /// was declared with.
    TypeMismatch {
        context: String,
        expected: Type,
        got: String,
    },
    /// A constraint attached to a class is violated by an object's value.
    ConstraintViolation { class: Sym, detail: String },
    /// The process-global symbol interner is full (2³²−1 distinct names).
    /// Reachable only by adversarial name floods; surfaced as a typed error
    /// so library paths never abort the process.
    SymbolTableOverflow,
    /// An instance ran out of object identifiers (2³² objects). Surfaced as
    /// a typed error so adversarial ingest degrades into an ingest failure
    /// instead of a panic.
    OidOverflow,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateClass(c) => write!(f, "class `{c}` declared twice"),
            ModelError::UnknownClass(c) => write!(f, "unknown class `{c}`"),
            ModelError::DuplicateRoot(g) => write!(f, "root of persistence `{g}` declared twice"),
            ModelError::UnknownRoot(g) => write!(f, "unknown root of persistence `{g}`"),
            ModelError::IllFormedInheritance { sub, sup } => write!(
                f,
                "ill-formed hierarchy: σ({sub}) is not a subtype of σ({sup}) although {sub} ≺ {sup}"
            ),
            ModelError::InheritanceCycle(c) => {
                write!(f, "inheritance cycle through class `{c}`")
            }
            ModelError::DuplicateAttribute { in_type, attr } => {
                write!(f, "attribute `{attr}` repeated in type {in_type}")
            }
            ModelError::EmptyUnion => write!(f, "union type with no alternatives"),
            ModelError::DanglingOid(o) => write!(f, "dangling object identifier {o}"),
            ModelError::TypeMismatch {
                context,
                expected,
                got,
            } => write!(f, "{context}: value {got} is not in dom({expected})"),
            ModelError::ConstraintViolation { class, detail } => {
                write!(f, "constraint violation on class `{class}`: {detail}")
            }
            ModelError::SymbolTableOverflow => {
                write!(f, "symbol table overflow: too many distinct names")
            }
            ModelError::OidOverflow => {
                write!(f, "object table overflow: too many objects in instance")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ModelError>;
