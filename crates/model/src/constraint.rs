//! Class constraints (Fig. 3).
//!
//! The SGML→O₂ mapping emits constraints "to capture certain aspects of
//! occurrence indicators, the fact that some attributes are required and
//! also the range restrictions" — e.g. for `Article`:
//! `title != nil, authors != list(), status in set("final", "draft")`.
//! The paper then sets constraints aside; we implement the checker because
//! the document loader uses it to validate loaded instances.

use crate::instance::Instance;
use crate::sym::Sym;
use crate::value::Value;
use std::fmt;

/// A constraint over a class's value. Attribute paths address nested
/// components: e.g. `a1.title` in Fig. 3's `Section` constraint.
#[derive(Debug, Clone, PartialEq)]
pub enum Constraint {
    /// `attr != nil`
    NotNil(Vec<Sym>),
    /// `attr != list()` — non-empty list (covers the `+` occurrence indicator).
    NotEmptyList(Vec<Sym>),
    /// `attr in set(v₁, …, vₙ)` — range restriction (SGML enumerated attributes).
    OneOf(Vec<Sym>, Vec<Value>),
    /// Disjunction, e.g. `figure != nil | paragr != nil` on class `Body`.
    AnyOf(Vec<Constraint>),
    /// Conjunction grouping, used for per-branch union constraints:
    /// `(a1.title != nil, a1.bodies != list())`.
    AllOf(Vec<Constraint>),
}

impl Constraint {
    /// `attr != nil` on a top-level attribute.
    pub fn not_nil(attr: impl Into<Sym>) -> Constraint {
        Constraint::NotNil(vec![attr.into()])
    }

    /// `attr != list()` on a top-level attribute.
    pub fn not_empty(attr: impl Into<Sym>) -> Constraint {
        Constraint::NotEmptyList(vec![attr.into()])
    }

    /// `attr in set(…)` on a top-level attribute.
    pub fn one_of<I: IntoIterator<Item = Value>>(attr: impl Into<Sym>, vals: I) -> Constraint {
        Constraint::OneOf(vec![attr.into()], vals.into_iter().collect())
    }
}

fn path_to_string(path: &[Sym]) -> String {
    path.iter()
        .map(|s| s.as_str())
        .collect::<Vec<_>>()
        .join(".")
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::NotNil(p) => write!(f, "{} != nil", path_to_string(p)),
            Constraint::NotEmptyList(p) => write!(f, "{} != list()", path_to_string(p)),
            Constraint::OneOf(p, vals) => {
                let vs: Vec<String> = vals.iter().map(|v| v.to_string()).collect();
                write!(f, "{} in set({})", path_to_string(p), vs.join(", "))
            }
            Constraint::AnyOf(cs) => {
                let parts: Vec<String> = cs.iter().map(|c| c.to_string()).collect();
                write!(f, "{}", parts.join(" | "))
            }
            Constraint::AllOf(cs) => {
                let parts: Vec<String> = cs.iter().map(|c| c.to_string()).collect();
                write!(f, "({})", parts.join(", "))
            }
        }
    }
}

/// Evaluates constraints against object values, dereferencing oids through
/// the instance where a path crosses an object boundary.
pub struct ConstraintChecker<'i> {
    instance: &'i Instance,
}

impl<'i> ConstraintChecker<'i> {
    /// Checker bound to an instance.
    pub fn new(instance: &'i Instance) -> ConstraintChecker<'i> {
        ConstraintChecker { instance }
    }

    /// Check one constraint on a value. `Err(detail)` describes the
    /// violation.
    pub fn check(&self, c: &Constraint, value: &Value) -> Result<(), String> {
        match c {
            Constraint::NotNil(path) => match self.resolve(value, path) {
                // A union value not carrying the constrained branch is
                // vacuously fine (per-branch constraints in Fig. 3 apply
                // only when that branch was chosen).
                None => Ok(()),
                Some(v) if v.is_nil() => Err(format!("{} is nil", path_to_string(path))),
                Some(_) => Ok(()),
            },
            Constraint::NotEmptyList(path) => match self.resolve(value, path) {
                None => Ok(()),
                Some(Value::List(items)) if items.is_empty() => {
                    Err(format!("{} is the empty list", path_to_string(path)))
                }
                Some(_) => Ok(()),
            },
            Constraint::OneOf(path, allowed) => match self.resolve(value, path) {
                None => Ok(()),
                Some(v) => {
                    if allowed.iter().any(|a| a == v) {
                        Ok(())
                    } else {
                        Err(format!(
                            "{} = {} not in {{{}}}",
                            path_to_string(path),
                            v,
                            allowed
                                .iter()
                                .map(|a| a.to_string())
                                .collect::<Vec<_>>()
                                .join(", ")
                        ))
                    }
                }
            },
            Constraint::AnyOf(cs) => {
                let mut details = Vec::new();
                for sub in cs {
                    match self.check(sub, value) {
                        Ok(()) => return Ok(()),
                        Err(d) => details.push(d),
                    }
                }
                Err(format!("no alternative holds: {}", details.join(" | ")))
            }
            Constraint::AllOf(cs) => {
                for sub in cs {
                    self.check(sub, value)?;
                }
                Ok(())
            }
        }
    }

    /// Resolve an attribute path against a value. Returns `None` when a
    /// marker on the path names a branch the value does not carry (vacuous),
    /// and `Some(&nil)`-like values otherwise. Oids are dereferenced.
    fn resolve<'v>(&self, value: &'v Value, path: &[Sym]) -> Option<&'v Value>
    where
        'i: 'v,
    {
        let mut cur = value;
        for (i, step) in path.iter().enumerate() {
            cur = match self.instance.deref(cur) {
                Ok(v) => v,
                Err(_) => return None,
            };
            match cur.attr(*step) {
                Some(v) => cur = v,
                // Missing leaf attribute is reported as nil (violation for
                // NotNil), but a missing *branch marker* earlier on the path
                // is vacuous.
                None => {
                    return if i + 1 == path.len() && !matches!(cur, Value::Union(..)) {
                        Some(&Value::Nil)
                    } else {
                        None
                    };
                }
            }
        }
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::ClassDef;
    use crate::schema::Schema;
    use crate::sym::sym;
    use crate::types::Type;
    use std::sync::Arc;

    fn inst() -> Instance {
        let schema = Arc::new(
            Schema::builder()
                .class(ClassDef::new("C", Type::Any))
                .build()
                .unwrap(),
        );
        Instance::new(schema)
    }

    #[test]
    fn not_nil_violation() {
        let i = inst();
        let ch = ConstraintChecker::new(&i);
        let c = Constraint::not_nil("title");
        assert!(ch
            .check(&c, &Value::tuple([("title", Value::str("x"))]))
            .is_ok());
        assert!(ch
            .check(&c, &Value::tuple([("title", Value::Nil)]))
            .is_err());
        // Missing attribute counts as nil.
        assert!(ch
            .check(&c, &Value::tuple([("other", Value::Int(1))]))
            .is_err());
    }

    #[test]
    fn not_empty_list() {
        let i = inst();
        let ch = ConstraintChecker::new(&i);
        let c = Constraint::not_empty("authors");
        assert!(ch
            .check(
                &c,
                &Value::tuple([("authors", Value::list([Value::Int(1)]))])
            )
            .is_ok());
        assert!(ch
            .check(&c, &Value::tuple([("authors", Value::List(vec![]))]))
            .is_err());
    }

    #[test]
    fn one_of_range_restriction() {
        let i = inst();
        let ch = ConstraintChecker::new(&i);
        let c = Constraint::one_of("status", [Value::str("final"), Value::str("draft")]);
        assert!(ch
            .check(&c, &Value::tuple([("status", Value::str("draft"))]))
            .is_ok());
        let err = ch
            .check(&c, &Value::tuple([("status", Value::str("published"))]))
            .unwrap_err();
        assert!(err.contains("published"));
    }

    #[test]
    fn any_of_body_constraint() {
        // Body: figure != nil | paragr != nil
        let i = inst();
        let ch = ConstraintChecker::new(&i);
        let c = Constraint::AnyOf(vec![
            Constraint::not_nil("figure"),
            Constraint::not_nil("paragr"),
        ]);
        assert!(ch
            .check(&c, &Value::union("paragr", Value::str("text")))
            .is_ok());
        assert!(ch
            .check(
                &c,
                &Value::tuple([("figure", Value::Nil), ("paragr", Value::Nil)])
            )
            .is_err());
    }

    #[test]
    fn union_branch_constraints_are_vacuous_on_other_branch() {
        // Section: (a1.title != nil, a1.bodies != list()) applies only to a1.
        let i = inst();
        let ch = ConstraintChecker::new(&i);
        let c = Constraint::AllOf(vec![
            Constraint::NotNil(vec![sym("a1"), sym("title")]),
            Constraint::NotEmptyList(vec![sym("a1"), sym("bodies")]),
        ]);
        let a2_section = Value::union(
            "a2",
            Value::tuple([
                ("title", Value::str("t")),
                ("subsectns", Value::list([Value::Int(0)])),
            ]),
        );
        assert!(
            ch.check(&c, &a2_section).is_ok(),
            "a1 constraints vacuous on a2"
        );
        let bad_a1 = Value::union(
            "a1",
            Value::tuple([
                ("title", Value::Nil),
                ("bodies", Value::list([Value::Int(0)])),
            ]),
        );
        assert!(ch.check(&c, &bad_a1).is_err());
    }

    #[test]
    fn paths_deref_objects() {
        let mut i = inst();
        let o = i
            .new_object("C", Value::tuple([("title", Value::Nil)]))
            .unwrap();
        let ch = ConstraintChecker::new(&i);
        let holder = Value::tuple([("child", Value::Oid(o))]);
        let c = Constraint::NotNil(vec![sym("child"), sym("title")]);
        assert!(ch.check(&c, &holder).is_err());
    }

    #[test]
    fn display_matches_fig3_syntax() {
        let c = Constraint::AllOf(vec![
            Constraint::not_nil("title"),
            Constraint::not_empty("authors"),
            Constraint::one_of("status", [Value::str("final"), Value::str("draft")]),
        ]);
        assert_eq!(
            c.to_string(),
            "(title != nil, authors != list(), status in set(\"final\", \"draft\"))"
        );
        let d = Constraint::AnyOf(vec![
            Constraint::not_nil("figure"),
            Constraint::not_nil("paragr"),
        ]);
        assert_eq!(d.to_string(), "figure != nil | paragr != nil");
    }
}
