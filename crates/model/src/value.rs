//! Values over a set of oids (§5.1, `val(O)`).
//!
//! A value is `nil`, an atomic constant, an oid, or a tuple / set / list of
//! values. Two representation choices matter downstream:
//!
//! * **Tuples are ordered**: `[a:1, b:2] ≠ [b:2, a:1]` (the paper makes the
//!   non-identity permutation inequality explicit).
//! * A value of a **marked union** type `(… + aᵢ:τᵢ + …)` is a tuple of the
//!   form `[aᵢ:v]`; we give it a dedicated constructor [`Value::Union`] that
//!   is *equal* to the singleton tuple under the §5.1 equivalence `≡`
//!   (see [`Value::equiv`]), but kept distinct for `Eq` so that pattern
//!   matching on representations stays cheap and loss-free.
//!
//! `Value` implements a *total* order (floats via `f64::total_cmp`) so sets
//! can be canonically sorted and values can key maps.

use crate::sym::Sym;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// An object identifier. Oids are allocated by an [`crate::instance::Instance`]
/// and index into its object table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid(pub u32);

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// A database value (§5.1).
#[derive(Debug, Clone)]
pub enum Value {
    /// The undefined value `nil`.
    Nil,
    /// Integer atom.
    Int(i64),
    /// Float atom.
    Float(f64),
    /// Boolean atom.
    Bool(bool),
    /// String atom.
    Str(String),
    /// An object identifier (crossing it requires dereferencing, `→`).
    Oid(Oid),
    /// Ordered tuple `[a₁:v₁, …, aₙ:vₙ]`.
    Tuple(Vec<(Sym, Value)>),
    /// Marked-union value `[aᵢ:v]` — the chosen alternative `aᵢ` with payload.
    Union(Sym, Box<Value>),
    /// List `[v₁, …, vₙ]`.
    List(Vec<Value>),
    /// Set `{v₁, …, vₙ}` — canonically sorted, deduplicated.
    Set(Vec<Value>),
}

impl Value {
    /// String value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Tuple from `(name, value)` pairs.
    pub fn tuple<I, N>(fields: I) -> Value
    where
        I: IntoIterator<Item = (N, Value)>,
        N: Into<Sym>,
    {
        Value::Tuple(fields.into_iter().map(|(n, v)| (n.into(), v)).collect())
    }

    /// Marked-union value.
    pub fn union(marker: impl Into<Sym>, v: Value) -> Value {
        Value::Union(marker.into(), Box::new(v))
    }

    /// Canonical set: sorted and deduplicated.
    pub fn set<I: IntoIterator<Item = Value>>(items: I) -> Value {
        let mut v: Vec<Value> = items.into_iter().collect();
        v.sort();
        v.dedup();
        Value::Set(v)
    }

    /// List in given order.
    pub fn list<I: IntoIterator<Item = Value>>(items: I) -> Value {
        Value::List(items.into_iter().collect())
    }

    /// Is this `nil`?
    pub fn is_nil(&self) -> bool {
        matches!(self, Value::Nil)
    }

    /// Tuple attribute lookup (also looks through a union's singleton view).
    pub fn attr(&self, name: Sym) -> Option<&Value> {
        match self {
            Value::Tuple(fs) => fs.iter().find(|(n, _)| *n == name).map(|(_, v)| v),
            Value::Union(m, v) if *m == name => Some(v),
            _ => None,
        }
    }

    /// Position (rank) of an attribute within a tuple, viewing the tuple as a
    /// heterogeneous list (used by the §4.4 / Q6 position queries). For a
    /// union value the singleton view gives the marker position 0.
    pub fn attr_position(&self, name: Sym) -> Option<usize> {
        match self {
            Value::Tuple(fs) => fs.iter().position(|(n, _)| *n == name),
            Value::Union(m, _) if *m == name => Some(0),
            _ => None,
        }
    }

    /// The heterogeneous-list view of a tuple (§5.1):
    /// `[a₁:v₁, …, aₙ:vₙ] ≡ [[a₁:v₁], …, [aₙ:vₙ]]`.
    ///
    /// Returns the `(marker, value)` pairs for tuples and union values, the
    /// element pairs for lists whose elements are all singleton tuples or
    /// union values, and `None` otherwise.
    pub fn as_hetero_list(&self) -> Option<Vec<(Sym, &Value)>> {
        match self {
            Value::Tuple(fs) => Some(fs.iter().map(|(n, v)| (*n, v)).collect()),
            Value::Union(m, v) => Some(vec![(*m, v.as_ref())]),
            Value::List(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    match item {
                        Value::Union(m, v) => out.push((*m, v.as_ref())),
                        Value::Tuple(fs) if fs.len() == 1 => out.push((fs[0].0, &fs[0].1)),
                        _ => return None,
                    }
                }
                Some(out)
            }
            _ => None,
        }
    }

    /// The §5.1 equivalence `≡`: identity extended with
    /// `[a₁:v₁,…,aₖ:vₖ] ≡ [[a₁:v₁],…,[aₖ:vₖ]]` (tuple vs heterogeneous list)
    /// and `Union(a, v) ≡ [a:v]` (marked value vs singleton tuple), applied
    /// congruently through constructors.
    pub fn equiv(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Union(a, v), Union(b, w)) => a == b && v.equiv(w),
            (Union(a, v), Tuple(fs)) | (Tuple(fs), Union(a, v)) => {
                fs.len() == 1 && fs[0].0 == *a && fs[0].1.equiv(v)
            }
            (Tuple(fs), Tuple(gs)) => {
                fs.len() == gs.len()
                    && fs
                        .iter()
                        .zip(gs)
                        .all(|((a, v), (b, w))| a == b && v.equiv(w))
            }
            (List(xs), List(ys)) => {
                xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| x.equiv(y))
            }
            (Set(xs), Set(ys)) => {
                // Canonical order may differ between ≡-equal members; compare
                // as multisets under ≡.
                xs.len() == ys.len()
                    && xs.iter().all(|x| ys.iter().any(|y| x.equiv(y)))
                    && ys.iter().all(|y| xs.iter().any(|x| x.equiv(y)))
            }
            (t @ (Tuple(_) | Union(..)), l @ List(_))
            | (l @ List(_), t @ (Tuple(_) | Union(..))) => {
                match (t.as_hetero_list(), l.as_hetero_list()) {
                    (Some(a), Some(b)) => {
                        a.len() == b.len()
                            && a.iter()
                                .zip(&b)
                                .all(|((n, v), (m, w))| n == m && v.equiv(w))
                    }
                    _ => false,
                }
            }
            _ => self == other,
        }
    }

    /// A short kind name for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Nil => "nil",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Str(_) => "string",
            Value::Oid(_) => "oid",
            Value::Tuple(_) => "tuple",
            Value::Union(..) => "union",
            Value::List(_) => "list",
            Value::Set(_) => "set",
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Nil => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
            Value::Oid(_) => 5,
            Value::Tuple(_) => 6,
            Value::Union(..) => 7,
            Value::List(_) => 8,
            Value::Set(_) => 9,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Nil, Nil) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            // Cross-numeric comparison keeps Int and Float distinct kinds;
            // query-level numeric coercion is done by the evaluators.
            (Str(a), Str(b)) => a.cmp(b),
            (Oid(a), Oid(b)) => a.cmp(b),
            (Tuple(a), Tuple(b)) => {
                for ((an, av), (bn, bv)) in a.iter().zip(b.iter()) {
                    match an.cmp_str(*bn).then_with(|| av.cmp(bv)) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                a.len().cmp(&b.len())
            }
            (Union(am, av), Union(bm, bv)) => am.cmp_str(*bm).then_with(|| av.cmp(bv)),
            (List(a), List(b)) | (Set(a), Set(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.cmp(y) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                a.len().cmp(&b.len())
            }
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.rank().hash(state);
        match self {
            Value::Nil => {}
            Value::Int(i) => i.hash(state),
            Value::Float(x) => x.to_bits().hash(state),
            Value::Bool(b) => b.hash(state),
            Value::Str(s) => s.hash(state),
            Value::Oid(o) => o.hash(state),
            Value::Tuple(fs) => {
                for (n, v) in fs {
                    n.hash(state);
                    v.hash(state);
                }
            }
            Value::Union(m, v) => {
                m.hash(state);
                v.hash(state);
            }
            Value::List(items) | Value::Set(items) => {
                for v in items {
                    v.hash(state);
                }
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Nil => f.write_str("nil"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Oid(o) => write!(f, "{o}"),
            Value::Tuple(fs) => {
                f.write_str("tuple(")?;
                for (i, (n, v)) in fs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{n}: {v}")?;
                }
                f.write_str(")")
            }
            Value::Union(m, v) => write!(f, "[{m}: {v}]"),
            Value::List(items) => {
                f.write_str("list(")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str(")")
            }
            Value::Set(items) => {
                f.write_str("set(")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str(")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::sym;

    #[test]
    fn tuple_order_matters_for_equality() {
        let ab = Value::tuple([("a", Value::Int(1)), ("b", Value::Int(2))]);
        let ba = Value::tuple([("b", Value::Int(2)), ("a", Value::Int(1))]);
        assert_ne!(ab, ba);
    }

    #[test]
    fn set_is_canonical() {
        let s1 = Value::set([Value::Int(3), Value::Int(1), Value::Int(3)]);
        let s2 = Value::set([Value::Int(1), Value::Int(3)]);
        assert_eq!(s1, s2);
    }

    #[test]
    fn float_ordering_is_total() {
        let nan = Value::Float(f64::NAN);
        let one = Value::Float(1.0);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert_ne!(nan.cmp(&one), Ordering::Equal);
    }

    #[test]
    fn union_equiv_singleton_tuple() {
        let u = Value::union("a1", Value::Int(5));
        let t = Value::tuple([("a1", Value::Int(5))]);
        assert_ne!(u, t, "representations stay distinct under Eq");
        assert!(u.equiv(&t), "but are identified under ≡");
    }

    #[test]
    fn tuple_equiv_hetero_list() {
        // [A:5, B:6] ≡ [[A:5], [B:6]]
        let t = Value::tuple([("A", Value::Int(5)), ("B", Value::Int(6))]);
        let l = Value::list([
            Value::tuple([("A", Value::Int(5))]),
            Value::tuple([("B", Value::Int(6))]),
        ]);
        assert!(t.equiv(&l));
        let l2 = Value::list([
            Value::union("A", Value::Int(5)),
            Value::union("B", Value::Int(6)),
        ]);
        assert!(t.equiv(&l2));
    }

    #[test]
    fn equiv_is_congruent_through_lists() {
        let a = Value::list([Value::union("x", Value::Int(1))]);
        let b = Value::list([Value::tuple([("x", Value::Int(1))])]);
        assert!(a.equiv(&b));
    }

    #[test]
    fn non_equiv_values() {
        let t = Value::tuple([("A", Value::Int(5))]);
        assert!(!t.equiv(&Value::Int(5)));
        assert!(!t.equiv(&Value::tuple([("A", Value::Int(6))])));
        assert!(!t.equiv(&Value::tuple([("B", Value::Int(5))])));
    }

    #[test]
    fn attr_lookup_and_position() {
        let t = Value::tuple([("to", Value::str("alice")), ("from", Value::str("bob"))]);
        assert_eq!(t.attr(sym("from")), Some(&Value::str("bob")));
        assert_eq!(t.attr_position(sym("to")), Some(0));
        assert_eq!(t.attr_position(sym("from")), Some(1));
        assert_eq!(t.attr_position(sym("cc")), None);
        let u = Value::union("from", Value::str("bob"));
        assert_eq!(u.attr(sym("from")), Some(&Value::str("bob")));
        assert_eq!(u.attr_position(sym("from")), Some(0));
    }

    #[test]
    fn hetero_list_view_of_mixed_list_fails() {
        let l = Value::list([Value::Int(1), Value::union("a", Value::Int(2))]);
        assert!(l.as_hetero_list().is_none());
    }

    #[test]
    fn display_forms() {
        let v = Value::tuple([("t", Value::str("Intro")), ("n", Value::Int(3))]);
        assert_eq!(v.to_string(), "tuple(t: \"Intro\", n: 3)");
        assert_eq!(Value::union("a1", Value::Nil).to_string(), "[a1: nil]");
        assert_eq!(
            Value::list([Value::Int(1), Value::Int(2)]).to_string(),
            "list(1, 2)"
        );
        assert_eq!(Value::Oid(Oid(7)).to_string(), "o7");
    }

    #[test]
    fn hash_agrees_with_eq_for_sets() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::set([Value::Int(2), Value::Int(1)]));
        assert!(set.contains(&Value::set([Value::Int(1), Value::Int(2)])));
    }
}
