//! The type language of the extended O₂ data model (§5.1).
//!
//! Compared with standard O₂, two constructors are added (the "boxed" material
//! of the paper): **marked union types** `(a₁:τ₁ + … + aₙ:τₙ)` and **ordered
//! tuples** `[a₁:τ₁, …, aₙ:τₙ]` whose attribute order is meaningful — required
//! because the SGML aggregation connector `,` imposes an order between
//! elements.

use crate::error::{ModelError, Result};
use crate::sym::Sym;
use std::fmt;

/// A named, typed component of a tuple or marked union.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Field {
    /// Attribute name (tuple attribute, or union *marker*).
    pub name: Sym,
    /// Component type.
    pub ty: Type,
}

impl Field {
    /// Build a field.
    pub fn new(name: impl Into<Sym>, ty: Type) -> Field {
        Field {
            name: name.into(),
            ty,
        }
    }
}

/// Types over a set of classes `C` (§5.1, `types(C)`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Type {
    /// Atomic type `integer`.
    Integer,
    /// Atomic type `string`.
    String,
    /// Atomic type `boolean`.
    Boolean,
    /// Atomic type `float`.
    Float,
    /// `any`, the top of the class hierarchy.
    Any,
    /// A class name in `C`; its interpretation is a set of oids plus `nil`.
    Class(Sym),
    /// List type `[τ]`.
    List(Box<Type>),
    /// Set type `{τ}`.
    Set(Box<Type>),
    /// Ordered tuple type `[a₁:τ₁, …, aₙ:τₙ]`. Attribute order is meaningful:
    /// `[a:…, b:…] ≠ [b:…, a:…]`.
    Tuple(Vec<Field>),
    /// Marked union type `(a₁:τ₁ + … + aₙ:τₙ)`. A value of this type is a
    /// tuple of the form `[aᵢ:v]` with `v : τᵢ`.
    Union(Vec<Field>),
}

impl Type {
    /// `[τ]`
    pub fn list(elem: Type) -> Type {
        Type::List(Box::new(elem))
    }

    /// `{τ}`
    pub fn set(elem: Type) -> Type {
        Type::Set(Box::new(elem))
    }

    /// Ordered tuple from `(name, type)` pairs.
    pub fn tuple<I, N>(fields: I) -> Type
    where
        I: IntoIterator<Item = (N, Type)>,
        N: Into<Sym>,
    {
        Type::Tuple(fields.into_iter().map(|(n, t)| Field::new(n, t)).collect())
    }

    /// Marked union from `(marker, type)` pairs.
    pub fn union<I, N>(alts: I) -> Type
    where
        I: IntoIterator<Item = (N, Type)>,
        N: Into<Sym>,
    {
        Type::Union(alts.into_iter().map(|(n, t)| Field::new(n, t)).collect())
    }

    /// Class reference type.
    pub fn class(name: impl Into<Sym>) -> Type {
        Type::Class(name.into())
    }

    /// Is this one of the four atomic types?
    pub fn is_atomic(&self) -> bool {
        matches!(
            self,
            Type::Integer | Type::String | Type::Boolean | Type::Float
        )
    }

    /// Is this a (marked) union type? Drives the §4.2 typing rules.
    pub fn is_union(&self) -> bool {
        matches!(self, Type::Union(_))
    }

    /// The fields of a tuple or union type, if any.
    pub fn fields(&self) -> Option<&[Field]> {
        match self {
            Type::Tuple(fs) | Type::Union(fs) => Some(fs),
            _ => None,
        }
    }

    /// Look up an attribute/marker by name in a tuple or union type.
    pub fn field(&self, name: Sym) -> Option<&Field> {
        self.fields()
            .and_then(|fs| fs.iter().find(|f| f.name == name))
    }

    /// Structural well-formedness: attribute names within one tuple/union are
    /// distinct, unions are non-empty; checked recursively.
    pub fn validate(&self) -> Result<()> {
        match self {
            Type::Tuple(fs) | Type::Union(fs) => {
                if matches!(self, Type::Union(_)) && fs.is_empty() {
                    return Err(ModelError::EmptyUnion);
                }
                for (i, f) in fs.iter().enumerate() {
                    if fs[..i].iter().any(|g| g.name == f.name) {
                        return Err(ModelError::DuplicateAttribute {
                            in_type: self.clone(),
                            attr: f.name,
                        });
                    }
                    f.ty.validate()?;
                }
                Ok(())
            }
            Type::List(t) | Type::Set(t) => t.validate(),
            _ => Ok(()),
        }
    }

    /// All class names referenced (transitively) by this type.
    pub fn referenced_classes(&self, out: &mut Vec<Sym>) {
        match self {
            Type::Class(c) if !out.contains(c) => {
                out.push(*c);
            }
            Type::List(t) | Type::Set(t) => t.referenced_classes(out),
            Type::Tuple(fs) | Type::Union(fs) => {
                for f in fs {
                    f.ty.referenced_classes(out);
                }
            }
            _ => {}
        }
    }

    /// The §5.1 "tuple as heterogeneous list" view at the *type* level:
    /// `[a₁:τ₁,…,aₙ:τₙ] ≤ [(a₁:τ₁+…+aₙ:τₙ)]`. Returns the list-of-union type
    /// a tuple type embeds into, or `None` for non-tuple types.
    pub fn as_hetero_list_type(&self) -> Option<Type> {
        match self {
            Type::Tuple(fs) if !fs.is_empty() => {
                Some(Type::List(Box::new(Type::Union(fs.clone()))))
            }
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn fields(f: &mut fmt::Formatter<'_>, fs: &[Field], sep: &str) -> fmt::Result {
            for (i, field) in fs.iter().enumerate() {
                if i > 0 {
                    f.write_str(sep)?;
                }
                write!(f, "{}: {}", field.name, field.ty)?;
            }
            Ok(())
        }
        match self {
            Type::Integer => f.write_str("integer"),
            Type::String => f.write_str("string"),
            Type::Boolean => f.write_str("boolean"),
            Type::Float => f.write_str("float"),
            Type::Any => f.write_str("any"),
            Type::Class(c) => write!(f, "{c}"),
            Type::List(t) => write!(f, "list({t})"),
            Type::Set(t) => write!(f, "set({t})"),
            Type::Tuple(fs) => {
                f.write_str("tuple(")?;
                fields(f, fs, ", ")?;
                f.write_str(")")
            }
            Type::Union(fs) => {
                f.write_str("union(")?;
                fields(f, fs, " + ")?;
                f.write_str(")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::sym;

    fn section_union() -> Type {
        Type::union([
            (
                "a1",
                Type::tuple([
                    ("title", Type::class("Title")),
                    ("bodies", Type::list(Type::class("Body"))),
                ]),
            ),
            (
                "a2",
                Type::tuple([
                    ("title", Type::class("Title")),
                    ("bodies", Type::list(Type::class("Body"))),
                    ("subsectns", Type::list(Type::class("Subsectn"))),
                ]),
            ),
        ])
    }

    #[test]
    fn display_round_trips_structure() {
        let t = section_union();
        assert_eq!(
            t.to_string(),
            "union(a1: tuple(title: Title, bodies: list(Body)) + \
             a2: tuple(title: Title, bodies: list(Body), subsectns: list(Subsectn)))"
        );
    }

    #[test]
    fn tuple_order_is_meaningful() {
        let ab = Type::tuple([("a", Type::Integer), ("b", Type::String)]);
        let ba = Type::tuple([("b", Type::String), ("a", Type::Integer)]);
        assert_ne!(ab, ba);
    }

    #[test]
    fn validate_rejects_duplicate_attrs() {
        let t = Type::tuple([("a", Type::Integer), ("a", Type::String)]);
        assert!(matches!(
            t.validate(),
            Err(ModelError::DuplicateAttribute { .. })
        ));
    }

    #[test]
    fn validate_rejects_empty_union() {
        let t = Type::Union(vec![]);
        assert_eq!(t.validate(), Err(ModelError::EmptyUnion));
    }

    #[test]
    fn validate_recurses_into_collections() {
        let t = Type::list(Type::union([("a", Type::Integer), ("a", Type::Float)]));
        assert!(t.validate().is_err());
    }

    #[test]
    fn field_lookup() {
        let t = section_union();
        assert!(t.field(sym("a1")).is_some());
        assert!(t.field(sym("a3")).is_none());
    }

    #[test]
    fn referenced_classes_are_collected_once() {
        let t = section_union();
        let mut out = Vec::new();
        t.referenced_classes(&mut out);
        assert_eq!(out, vec![sym("Title"), sym("Body"), sym("Subsectn")]);
    }

    #[test]
    fn hetero_list_type_of_tuple() {
        let t = Type::tuple([("from", Type::String), ("to", Type::String)]);
        let l = t.as_hetero_list_type().unwrap();
        assert_eq!(
            l,
            Type::list(Type::union([("from", Type::String), ("to", Type::String)]))
        );
        assert!(Type::Integer.as_hetero_list_type().is_none());
    }
}
