//! Class hierarchies `(C, σ, ≺)` (§5.1).
//!
//! `C` is a finite set of class names, `σ` maps each class to a type, and `≺`
//! is a partial order (inheritance). A hierarchy is *well-formed* when
//! `c ≺ c'` implies `σ(c) ≤ σ(c')`; well-formedness is checked by
//! [`ClassHierarchy::validate`] (it requires the subtyping relation of
//! [`crate::subtype`], which in turn needs the hierarchy — validation is
//! therefore performed on the completed hierarchy, exactly as in the paper
//! where `≤` is defined relative to `(C, σ, ≺)`).

use crate::constraint::Constraint;
use crate::error::{ModelError, Result};
use crate::sym::Sym;
use crate::types::Type;
use std::collections::HashMap;

/// A class declaration: name, structural type `σ(c)`, direct superclasses,
/// and the constraints the SGML mapping attaches (Fig. 3).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDef {
    /// Class name.
    pub name: Sym,
    /// Structural type `σ(c)`.
    pub ty: Type,
    /// Direct superclasses (the `inherit` clause of Fig. 3).
    pub parents: Vec<Sym>,
    /// Class constraints (`constraint:` clauses of Fig. 3).
    pub constraints: Vec<Constraint>,
    /// Attributes marked `private` in the class type (e.g. `status` in
    /// `Article`). Privacy does not affect the formal model; it is kept for
    /// faithful Fig. 3 rendering and for the surface language to warn on.
    pub private_attrs: Vec<Sym>,
}

impl ClassDef {
    /// A class with only a type (no parents, constraints or private attrs).
    pub fn new(name: impl Into<Sym>, ty: Type) -> ClassDef {
        ClassDef {
            name: name.into(),
            ty,
            parents: Vec::new(),
            constraints: Vec::new(),
            private_attrs: Vec::new(),
        }
    }

    /// Add a direct superclass.
    pub fn inherit(mut self, parent: impl Into<Sym>) -> ClassDef {
        self.parents.push(parent.into());
        self
    }

    /// Attach a constraint.
    pub fn constrained(mut self, c: Constraint) -> ClassDef {
        self.constraints.push(c);
        self
    }

    /// Mark an attribute private.
    pub fn private(mut self, attr: impl Into<Sym>) -> ClassDef {
        self.private_attrs.push(attr.into());
        self
    }
}

/// A class hierarchy `(C, σ, ≺)` with the transitive closure of `≺`
/// precomputed for O(1) subclass tests.
#[derive(Debug, Clone, Default)]
pub struct ClassHierarchy {
    classes: Vec<ClassDef>,
    index: HashMap<Sym, usize>,
    /// `ancestors[i]` = indices of all strict ancestors of class `i`.
    ancestors: Vec<Vec<usize>>,
}

impl ClassHierarchy {
    /// Empty hierarchy.
    pub fn new() -> ClassHierarchy {
        ClassHierarchy::default()
    }

    /// Add a class. Ancestor closure is recomputed by [`Self::finish`].
    pub fn add(&mut self, def: ClassDef) -> Result<()> {
        if self.index.contains_key(&def.name) {
            return Err(ModelError::DuplicateClass(def.name));
        }
        def.ty.validate()?;
        self.index.insert(def.name, self.classes.len());
        self.classes.push(def);
        Ok(())
    }

    /// Recompute the ancestor closure and check declarations are resolvable
    /// and acyclic. Must be called after the last [`Self::add`];
    /// [`crate::schema::SchemaBuilder`] does this automatically.
    pub fn finish(&mut self) -> Result<()> {
        let n = self.classes.len();
        self.ancestors = vec![Vec::new(); n];
        // Depth-first closure with cycle detection.
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks = vec![Mark::White; n];
        fn visit(
            i: usize,
            classes: &[ClassDef],
            index: &HashMap<Sym, usize>,
            ancestors: &mut Vec<Vec<usize>>,
            marks: &mut Vec<Mark>,
        ) -> Result<()> {
            match marks[i] {
                Mark::Black => return Ok(()),
                Mark::Grey => return Err(ModelError::InheritanceCycle(classes[i].name)),
                Mark::White => {}
            }
            marks[i] = Mark::Grey;
            let parents = classes[i].parents.clone();
            for p in parents {
                let j = *index.get(&p).ok_or(ModelError::UnknownClass(p))?;
                visit(j, classes, index, ancestors, marks)?;
                let mut inherited = ancestors[j].clone();
                inherited.push(j);
                for a in inherited {
                    if !ancestors[i].contains(&a) {
                        ancestors[i].push(a);
                    }
                }
            }
            marks[i] = Mark::Black;
            Ok(())
        }
        for i in 0..n {
            visit(
                i,
                &self.classes,
                &self.index,
                &mut self.ancestors,
                &mut marks,
            )?;
        }
        // Every class referenced from a σ(c) must be declared.
        for def in &self.classes {
            let mut refs = Vec::new();
            def.ty.referenced_classes(&mut refs);
            for c in refs {
                if !self.index.contains_key(&c) {
                    return Err(ModelError::UnknownClass(c));
                }
            }
        }
        Ok(())
    }

    /// Well-formedness (§5.1): for each `c ≺ c'`, `σ(c) ≤ σ(c')`.
    pub fn validate(&self) -> Result<()> {
        let ops = crate::subtype::TypeOps::new(self);
        for def in &self.classes {
            // A class declared without a local type (`class Title inherit
            // Text`, Fig. 3) has σ(Title) = σ(Text): compare resolved types.
            let sub_ty = self
                .resolved_sigma(def.name)
                .ok_or(ModelError::UnknownClass(def.name))?;
            for p in &def.parents {
                let sup_ty = self
                    .resolved_sigma(*p)
                    .ok_or(ModelError::UnknownClass(*p))?;
                if !ops.is_subtype(&sub_ty, &sup_ty) {
                    return Err(ModelError::IllFormedInheritance {
                        sub: def.name,
                        sup: *p,
                    });
                }
            }
        }
        Ok(())
    }

    /// Look a class up by name.
    pub fn get(&self, name: Sym) -> Option<&ClassDef> {
        self.index.get(&name).map(|&i| &self.classes[i])
    }

    /// σ(c): the structural type of a class.
    pub fn sigma(&self, name: Sym) -> Option<&Type> {
        self.get(name).map(|d| &d.ty)
    }

    /// Does the hierarchy declare this class?
    pub fn contains(&self, name: Sym) -> bool {
        self.index.contains_key(&name)
    }

    /// Reflexive-transitive `≺*`: is `sub` the same class as or a descendant
    /// of `sup`?
    pub fn is_subclass(&self, sub: Sym, sup: Sym) -> bool {
        if sub == sup {
            return self.contains(sub);
        }
        match (self.index.get(&sub), self.index.get(&sup)) {
            (Some(&i), Some(&j)) => self.ancestors[i].contains(&j),
            _ => false,
        }
    }

    /// Strict ancestors of a class, nearest-first order not guaranteed.
    pub fn ancestors_of(&self, name: Sym) -> Vec<Sym> {
        match self.index.get(&name) {
            Some(&i) => self.ancestors[i]
                .iter()
                .map(|&j| self.classes[j].name)
                .collect(),
            None => Vec::new(),
        }
    }

    /// All declared classes, in declaration order.
    pub fn classes(&self) -> &[ClassDef] {
        &self.classes
    }

    /// Number of declared classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Is the hierarchy empty?
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// The *resolved* structural type of a class: σ(c) if declared with a
    /// type of its own, otherwise the resolved type of its (first) parent.
    /// Fig. 3 classes such as `class Title inherit Text` have no local type;
    /// we model that as σ(Title) = σ(Text).
    pub fn resolved_sigma(&self, name: Sym) -> Option<Type> {
        let def = self.get(name)?;
        match &def.ty {
            Type::Any if !def.parents.is_empty() => self.resolved_sigma(def.parents[0]),
            t => Some(t.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sym::sym;

    fn text_class() -> ClassDef {
        ClassDef::new("Text", Type::tuple([("contents", Type::String)]))
    }

    #[test]
    fn add_and_lookup() {
        let mut h = ClassHierarchy::new();
        h.add(text_class()).unwrap();
        h.add(ClassDef::new("Title", Type::Any).inherit("Text"))
            .unwrap();
        h.finish().unwrap();
        assert!(h.contains(sym("Text")));
        assert!(h.is_subclass(sym("Title"), sym("Text")));
        assert!(!h.is_subclass(sym("Text"), sym("Title")));
        assert!(h.is_subclass(sym("Text"), sym("Text")));
    }

    #[test]
    fn duplicate_class_rejected() {
        let mut h = ClassHierarchy::new();
        h.add(text_class()).unwrap();
        assert_eq!(
            h.add(text_class()),
            Err(ModelError::DuplicateClass(sym("Text")))
        );
    }

    #[test]
    fn unknown_parent_rejected() {
        let mut h = ClassHierarchy::new();
        h.add(ClassDef::new("Title", Type::Any).inherit("Missing"))
            .unwrap();
        assert_eq!(h.finish(), Err(ModelError::UnknownClass(sym("Missing"))));
    }

    #[test]
    fn cycle_detected() {
        let mut h = ClassHierarchy::new();
        h.add(ClassDef::new("A", Type::Any).inherit("B")).unwrap();
        h.add(ClassDef::new("B", Type::Any).inherit("A")).unwrap();
        assert!(matches!(h.finish(), Err(ModelError::InheritanceCycle(_))));
    }

    #[test]
    fn transitive_ancestors() {
        let mut h = ClassHierarchy::new();
        h.add(ClassDef::new("A", Type::Any)).unwrap();
        h.add(ClassDef::new("B", Type::Any).inherit("A")).unwrap();
        h.add(ClassDef::new("C", Type::Any).inherit("B")).unwrap();
        h.finish().unwrap();
        assert!(h.is_subclass(sym("C"), sym("A")));
        let mut anc = h.ancestors_of(sym("C"));
        anc.sort_by(|a, b| a.cmp_str(*b));
        assert_eq!(anc, vec![sym("A"), sym("B")]);
    }

    #[test]
    fn unresolved_type_reference_rejected() {
        let mut h = ClassHierarchy::new();
        h.add(ClassDef::new("A", Type::class("Ghost"))).unwrap();
        assert_eq!(h.finish(), Err(ModelError::UnknownClass(sym("Ghost"))));
    }

    #[test]
    fn resolved_sigma_follows_inheritance() {
        let mut h = ClassHierarchy::new();
        h.add(text_class()).unwrap();
        h.add(ClassDef::new("Title", Type::Any).inherit("Text"))
            .unwrap();
        h.finish().unwrap();
        assert_eq!(
            h.resolved_sigma(sym("Title")),
            Some(Type::tuple([("contents", Type::String)]))
        );
    }

    #[test]
    fn diamond_inheritance_closure() {
        let mut h = ClassHierarchy::new();
        h.add(ClassDef::new("Top", Type::Any)).unwrap();
        h.add(ClassDef::new("L", Type::Any).inherit("Top")).unwrap();
        h.add(ClassDef::new("R", Type::Any).inherit("Top")).unwrap();
        h.add(ClassDef::new("Bot", Type::Any).inherit("L").inherit("R"))
            .unwrap();
        h.finish().unwrap();
        assert!(h.is_subclass(sym("Bot"), sym("Top")));
        assert_eq!(h.ancestors_of(sym("Bot")).len(), 3);
    }
}
