//! The extended subtyping relation `≤` and least common supertypes (§5.1, §4.2).
//!
//! Standard O₂ subtyping (class specialisation, covariant collections,
//! width/depth tuple subtyping) is extended with the paper's two new rules:
//!
//! 1. `[aᵢ:τᵢ] ≤ (… + aᵢ:τᵢ + …)` — a (singleton) tuple is a value of any
//!    marked union offering that alternative. Combined with width subtyping
//!    this yields the chain highlighted in the paper:
//!    `[a₁:τ₁,…,aₙ:τₙ] ≤ [aᵢ:τᵢ] ≤ (a₁:τ₁+…+aₙ:τₙ)`.
//! 2. `[a₁:τ₁,…,aₙ:τₙ] ≤ [(a₁:τ₁+…+aₙ:τₙ)]` — a tuple is a special case of a
//!    *heterogeneous list*, blurring the tuple/list distinction (used by the
//!    §4.4 position queries, Q6).
//!
//! [`TypeOps::common_supertype`] implements the §4.2 typing rules for the
//! query language: no common supertype between union and non-union types
//! (rule 1), and the marker-conflict rule for pairs of unions (rule 2).

use crate::hierarchy::ClassHierarchy;
use crate::sym::Sym;
use crate::types::{Field, Type};

/// Subtyping and least-upper-bound operations, relative to a class hierarchy.
pub struct TypeOps<'h> {
    hierarchy: &'h ClassHierarchy,
}

impl<'h> TypeOps<'h> {
    /// Operations over the given hierarchy.
    pub fn new(hierarchy: &'h ClassHierarchy) -> TypeOps<'h> {
        TypeOps { hierarchy }
    }

    /// The extended subtyping relation `a ≤ b`.
    pub fn is_subtype(&self, a: &Type, b: &Type) -> bool {
        use Type::*;
        if a == b {
            return true;
        }
        match (a, b) {
            // integer ≤ float (standard O₂ numeric widening).
            (Integer, Float) => true,
            // Classes: c ≤ c' iff c ≺* c'; every class ≤ any.
            (Class(_), Any) => true,
            (Class(c), Class(d)) => self.hierarchy.is_subclass(*c, *d),
            // Covariant collections.
            (Set(x), Set(y)) => self.is_subtype(x, y),
            // Tuple-as-heterogeneous-list (new rule 2) first, then covariance.
            (Tuple(fs), List(y)) => fs
                .iter()
                .all(|f| self.is_subtype(&Tuple(vec![f.clone()]), y)),
            (List(x), List(y)) => self.is_subtype(x, y),
            // Tuple width + depth subtyping: the supertype's attributes must
            // appear in the subtype as an order-preserving subsequence, with
            // covariant component types. (The paper's dom() definition adds
            // trailing attributes; dropping interior attributes is the
            // generalisation needed for the chain [a₁..aₙ] ≤ [aᵢ:τᵢ].)
            (Tuple(fs), Tuple(gs)) => is_subsequence(fs, gs, |f, g| {
                f.name == g.name && self.is_subtype(&f.ty, &g.ty)
            }),
            // New rule 1: a tuple is a value of a union offering one of its
            // attributes (via its singleton projection).
            (Tuple(fs), Union(us)) => fs.iter().any(|f| {
                us.iter()
                    .any(|u| u.name == f.name && self.is_subtype(&f.ty, &u.ty))
            }),
            // Union values are singleton tuples, so a union is a subtype of τ
            // iff each alternative's singleton tuple is.
            (Union(us), b) => us
                .iter()
                .all(|u| self.is_subtype(&Tuple(vec![u.clone()]), b)),
            _ => false,
        }
    }

    /// Least common supertype per the §4.2 typing rules. Returns `None` when
    /// the two types have no common supertype (so e.g. collections mixing
    /// them must be rejected).
    pub fn common_supertype(&self, a: &Type, b: &Type) -> Option<Type> {
        use Type::*;
        if a == b {
            return Some(a.clone());
        }
        if self.is_subtype(a, b) {
            return Some(b.clone());
        }
        if self.is_subtype(b, a) {
            return Some(a.clone());
        }
        match (a, b) {
            // §4.2 rule 1: no common supertype between a union type and a
            // non-union type.
            (Union(_), t) | (t, Union(_)) if !t.is_union() => None,
            // §4.2 rule 2: two unions join iff they have no marker conflict;
            // the lub is then the union of the two alternative lists.
            (Union(us), Union(vs)) => {
                let mut out: Vec<Field> = us.clone();
                for v in vs {
                    match out.iter_mut().find(|u| u.name == v.name) {
                        Some(u) => {
                            // Shared marker: domains must join.
                            let joined = self.common_supertype(&u.ty, &v.ty)?;
                            u.ty = joined;
                        }
                        None => out.push(v.clone()),
                    }
                }
                Some(Union(out))
            }
            (Integer, Float) | (Float, Integer) => Some(Float),
            (Class(c), Class(d)) => Some(self.least_common_class(*c, *d)),
            (Class(_), Any) | (Any, Class(_)) => Some(Any),
            (Set(x), Set(y)) => Some(Type::set(self.common_supertype(x, y)?)),
            (List(x), List(y)) => Some(Type::list(self.common_supertype(x, y)?)),
            // Tuples: keep the longest order-preserving common subsequence of
            // attributes whose component types join. (Always defined — the
            // empty tuple is a supertype of every tuple.)
            (Tuple(fs), Tuple(gs)) => Some(Tuple(self.tuple_lcs(fs, gs))),
            // A tuple joins with a list through its heterogeneous-list view.
            (Tuple(_), List(_)) => {
                let hl = a.as_hetero_list_type()?;
                self.common_supertype(&hl, b)
            }
            (List(_), Tuple(_)) => {
                let hl = b.as_hetero_list_type()?;
                self.common_supertype(a, &hl)
            }
            _ => None,
        }
    }

    /// Nearest common superclass, defaulting to `any` (the top of the class
    /// hierarchy) when the classes share no declared ancestor.
    fn least_common_class(&self, c: Sym, d: Sym) -> Type {
        if self.hierarchy.is_subclass(c, d) {
            return Type::Class(d);
        }
        if self.hierarchy.is_subclass(d, c) {
            return Type::Class(c);
        }
        let anc_c = self.hierarchy.ancestors_of(c);
        let anc_d = self.hierarchy.ancestors_of(d);
        // Pick a common ancestor none of whose descendants is also common —
        // i.e. a minimal element of the intersection.
        let common: Vec<_> = anc_c.iter().filter(|a| anc_d.contains(a)).collect();
        let minimal = common.iter().find(|&&&a| {
            !common
                .iter()
                .any(|&&other| other != a && self.hierarchy.is_subclass(other, a))
        });
        match minimal {
            Some(&&a) => Type::Class(a),
            None => Type::Any,
        }
    }

    /// Longest common subsequence of tuple fields under joinability; on join
    /// failure for a shared attribute name the attribute is dropped (the
    /// empty tuple is always a common supertype).
    fn tuple_lcs(&self, fs: &[Field], gs: &[Field]) -> Vec<Field> {
        // Classic O(n·m) LCS over field names, joining component types.
        let n = fs.len();
        let m = gs.len();
        let mut table = vec![vec![0usize; m + 1]; n + 1];
        for i in (0..n).rev() {
            for j in (0..m).rev() {
                table[i][j] = if fs[i].name == gs[j].name
                    && self.common_supertype(&fs[i].ty, &gs[j].ty).is_some()
                {
                    table[i + 1][j + 1] + 1
                } else {
                    table[i + 1][j].max(table[i][j + 1])
                };
            }
        }
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < n && j < m {
            if fs[i].name == gs[j].name {
                if let Some(joined) = self.common_supertype(&fs[i].ty, &gs[j].ty) {
                    out.push(Field::new(fs[i].name, joined));
                    i += 1;
                    j += 1;
                    continue;
                }
            }
            if table[i + 1][j] >= table[i][j + 1] {
                i += 1;
            } else {
                j += 1;
            }
        }
        out
    }
}

/// Is `needle` an order-preserving subsequence of `hay` under `matches`?
fn is_subsequence<T>(hay: &[T], needle: &[T], mut matches: impl FnMut(&T, &T) -> bool) -> bool {
    let mut it = hay.iter();
    'outer: for n in needle {
        for h in it.by_ref() {
            if matches(h, n) {
                continue 'outer;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::ClassDef;

    fn hierarchy() -> ClassHierarchy {
        let mut h = ClassHierarchy::new();
        h.add(ClassDef::new(
            "Text",
            Type::tuple([("contents", Type::String)]),
        ))
        .unwrap();
        h.add(ClassDef::new("Title", Type::Any).inherit("Text"))
            .unwrap();
        h.add(ClassDef::new("Caption", Type::Any).inherit("Text"))
            .unwrap();
        h.add(ClassDef::new(
            "Bitmap",
            Type::tuple([("bits", Type::String)]),
        ))
        .unwrap();
        h.finish().unwrap();
        h
    }

    fn t(pairs: &[(&str, Type)]) -> Type {
        Type::tuple(pairs.iter().map(|(n, t)| (*n, t.clone())))
    }

    fn u(pairs: &[(&str, Type)]) -> Type {
        Type::union(pairs.iter().map(|(n, t)| (*n, t.clone())))
    }

    #[test]
    fn reflexivity_and_atomics() {
        let h = hierarchy();
        let ops = TypeOps::new(&h);
        assert!(ops.is_subtype(&Type::Integer, &Type::Integer));
        assert!(ops.is_subtype(&Type::Integer, &Type::Float));
        assert!(!ops.is_subtype(&Type::Float, &Type::Integer));
        assert!(!ops.is_subtype(&Type::String, &Type::Integer));
    }

    #[test]
    fn class_subtyping() {
        let h = hierarchy();
        let ops = TypeOps::new(&h);
        assert!(ops.is_subtype(&Type::class("Title"), &Type::class("Text")));
        assert!(ops.is_subtype(&Type::class("Title"), &Type::Any));
        assert!(!ops.is_subtype(&Type::class("Text"), &Type::class("Title")));
        assert!(!ops.is_subtype(&Type::class("Bitmap"), &Type::class("Text")));
    }

    #[test]
    fn collection_covariance() {
        let h = hierarchy();
        let ops = TypeOps::new(&h);
        assert!(ops.is_subtype(
            &Type::list(Type::class("Title")),
            &Type::list(Type::class("Text"))
        ));
        assert!(ops.is_subtype(&Type::set(Type::Integer), &Type::set(Type::Float)));
        assert!(!ops.is_subtype(&Type::set(Type::Float), &Type::set(Type::Integer)));
    }

    #[test]
    fn paper_chain_tuple_projection_union() {
        // [a₁:τ₁,…,aₙ:τₙ] ≤ [aᵢ:τᵢ] ≤ (a₁:τ₁+…+aₙ:τₙ)
        let h = hierarchy();
        let ops = TypeOps::new(&h);
        let full = t(&[("a", Type::Integer), ("b", Type::String)]);
        let proj_a = t(&[("a", Type::Integer)]);
        let proj_b = t(&[("b", Type::String)]);
        let union = u(&[("a", Type::Integer), ("b", Type::String)]);
        assert!(ops.is_subtype(&full, &proj_a));
        assert!(ops.is_subtype(&full, &proj_b));
        assert!(ops.is_subtype(&proj_a, &union));
        assert!(ops.is_subtype(&full, &union));
        assert!(!ops.is_subtype(&union, &full));
    }

    #[test]
    fn paper_rule_tuple_as_hetero_list() {
        // [a₁:τ₁,…,aₙ:τₙ] ≤ [(a₁:τ₁+…+aₙ:τₙ)]
        let h = hierarchy();
        let ops = TypeOps::new(&h);
        let tup = t(&[("from", Type::String), ("to", Type::String)]);
        let hetero = Type::list(u(&[("from", Type::String), ("to", Type::String)]));
        assert!(ops.is_subtype(&tup, &hetero));
        // Also into a *wider* union list.
        let wider = Type::list(u(&[
            ("from", Type::String),
            ("to", Type::String),
            ("cc", Type::String),
        ]));
        assert!(ops.is_subtype(&tup, &wider));
        // But not into a list missing one attribute.
        let narrower = Type::list(u(&[("from", Type::String)]));
        assert!(!ops.is_subtype(&tup, &narrower));
    }

    #[test]
    fn union_subtyping_widens() {
        let h = hierarchy();
        let ops = TypeOps::new(&h);
        let small = u(&[("a", Type::Integer)]);
        let big = u(&[("a", Type::Integer), ("b", Type::String)]);
        assert!(ops.is_subtype(&small, &big));
        assert!(!ops.is_subtype(&big, &small));
        // Covariant in alternative domains.
        let refined = u(&[("a", Type::Integer), ("b", Type::class("Title"))]);
        let loose = u(&[("a", Type::Float), ("b", Type::class("Text"))]);
        assert!(ops.is_subtype(&refined, &loose));
    }

    #[test]
    fn lub_rule1_union_vs_non_union() {
        // §4.2 rule 1: set of integers vs set of (a:integer + b:char)'s has
        // no common supertype.
        let h = hierarchy();
        let ops = TypeOps::new(&h);
        let iu = u(&[("a", Type::Integer), ("b", Type::String)]);
        assert_eq!(ops.common_supertype(&Type::Integer, &iu), None);
        assert_eq!(
            ops.common_supertype(&Type::set(Type::Integer), &Type::set(iu.clone())),
            None
        );
    }

    #[test]
    fn lub_rule2_union_union() {
        // lub of (a:int + b:char) and (b:char + c:string) is
        // (a:int + b:char + c:string) — paper's example with char→string.
        let h = hierarchy();
        let ops = TypeOps::new(&h);
        let ab = u(&[("a", Type::Integer), ("b", Type::Boolean)]);
        let bc = u(&[("b", Type::Boolean), ("c", Type::String)]);
        assert_eq!(
            ops.common_supertype(&ab, &bc),
            Some(u(&[
                ("a", Type::Integer),
                ("b", Type::Boolean),
                ("c", Type::String)
            ]))
        );
    }

    #[test]
    fn lub_rule2_marker_conflict() {
        let h = hierarchy();
        let ops = TypeOps::new(&h);
        let ab = u(&[("a", Type::Integer), ("b", Type::Boolean)]);
        let conflict = u(&[("b", Type::class("Bitmap")), ("c", Type::String)]);
        assert_eq!(ops.common_supertype(&ab, &conflict), None);
    }

    #[test]
    fn lub_classes() {
        let h = hierarchy();
        let ops = TypeOps::new(&h);
        assert_eq!(
            ops.common_supertype(&Type::class("Title"), &Type::class("Caption")),
            Some(Type::class("Text"))
        );
        assert_eq!(
            ops.common_supertype(&Type::class("Title"), &Type::class("Bitmap")),
            Some(Type::Any)
        );
    }

    #[test]
    fn lub_tuples_keeps_joinable_common_subsequence() {
        let h = hierarchy();
        let ops = TypeOps::new(&h);
        let x = t(&[
            ("title", Type::class("Title")),
            ("n", Type::Integer),
            ("extra", Type::String),
        ]);
        let y = t(&[("title", Type::class("Caption")), ("n", Type::Float)]);
        assert_eq!(
            ops.common_supertype(&x, &y),
            Some(t(&[("title", Type::class("Text")), ("n", Type::Float)]))
        );
    }

    #[test]
    fn lub_numeric_and_collections() {
        let h = hierarchy();
        let ops = TypeOps::new(&h);
        assert_eq!(
            ops.common_supertype(&Type::Integer, &Type::Float),
            Some(Type::Float)
        );
        assert_eq!(
            ops.common_supertype(&Type::list(Type::Integer), &Type::list(Type::Float)),
            Some(Type::list(Type::Float))
        );
        assert_eq!(ops.common_supertype(&Type::Integer, &Type::String), None);
    }

    #[test]
    fn subtype_implies_lub_is_super() {
        let h = hierarchy();
        let ops = TypeOps::new(&h);
        let sub = t(&[("a", Type::Integer), ("b", Type::String)]);
        let sup = t(&[("a", Type::Float)]);
        assert!(ops.is_subtype(&sub, &sup));
        assert_eq!(ops.common_supertype(&sub, &sup), Some(sup));
    }
}
