// Property-based suite, disabled while the build is offline: `proptest`
// cannot be fetched in this container, so the whole file is compiled out
// (`cfg(any())` is never true). Re-enable by removing this gate and
// restoring the `proptest` dev-dependency.
#![cfg(any())]

//! Property-based tests on the core model invariants:
//! total order on values, ≡-equivalence laws, subtyping laws
//! (reflexivity, transitivity), and the soundness link
//! `τ ≤ τ' ⇒ dom(τ) ⊆ dom(τ')` on generated witnesses.

use docql_model::{conforms, ClassDef, Instance, Schema, Type, Value};
use proptest::prelude::*;
use std::sync::Arc;

/// Small attribute alphabet so tuples/unions collide often.
fn attr_name() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string()),
        Just("title".to_string()),
        Just("body".to_string()),
    ]
}

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Nil),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        any::<bool>().prop_map(Value::Bool),
        "[a-z]{0,6}".prop_map(Value::str),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::list),
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::set),
            prop::collection::vec((attr_name(), inner.clone()), 0..3).prop_map(|fs| {
                // Deduplicate attribute names, keeping first occurrence.
                let mut seen = Vec::new();
                let mut out = Vec::new();
                for (n, v) in fs {
                    if !seen.contains(&n) {
                        seen.push(n.clone());
                        out.push((n, v));
                    }
                }
                Value::tuple(out)
            }),
            (attr_name(), inner).prop_map(|(n, v)| Value::union(n, v)),
        ]
    })
}

fn arb_type() -> impl Strategy<Value = Type> {
    let leaf = prop_oneof![
        Just(Type::Integer),
        Just(Type::String),
        Just(Type::Boolean),
        Just(Type::Float),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(Type::list),
            inner.clone().prop_map(Type::set),
            prop::collection::vec((attr_name(), inner.clone()), 0..3).prop_map(|fs| {
                let mut seen = Vec::new();
                let mut out = Vec::new();
                for (n, t) in fs {
                    if !seen.contains(&n) {
                        seen.push(n.clone());
                        out.push((n, t));
                    }
                }
                Type::tuple(out)
            }),
            prop::collection::vec((attr_name(), inner), 1..3).prop_map(|fs| {
                let mut seen = Vec::new();
                let mut out = Vec::new();
                for (n, t) in fs {
                    if !seen.contains(&n) {
                        seen.push(n.clone());
                        out.push((n, t));
                    }
                }
                Type::union(out)
            }),
        ]
    })
}

/// Could a subtype derivation `a ≤ b` use the tuple-as-heterogeneous-list
/// rule anywhere? (Conservative structural check used to scope properties
/// away from the paper's documented tuple/list friction.)
fn may_cross_tuple_list(a: &Type, b: &Type) -> bool {
    match (a, b) {
        (Type::Tuple(_), Type::List(_)) => true,
        (Type::List(x), Type::List(y)) | (Type::Set(x), Type::Set(y)) => may_cross_tuple_list(x, y),
        (Type::Tuple(fs), Type::Tuple(gs)) => fs.iter().any(|f| {
            gs.iter()
                .any(|g| g.name == f.name && may_cross_tuple_list(&f.ty, &g.ty))
        }),
        (Type::Tuple(fs), Type::Union(us)) | (Type::Union(us), Type::Tuple(fs)) => {
            fs.iter().any(|f| {
                us.iter()
                    .any(|u| u.name == f.name && may_cross_tuple_list(&f.ty, &u.ty))
            })
        }
        (Type::Union(us), Type::Union(vs)) => us.iter().any(|u| {
            vs.iter()
                .any(|v| v.name == u.name && may_cross_tuple_list(&u.ty, &v.ty))
        }),
        (Type::Union(us), other) => us.iter().any(|u| may_cross_tuple_list(&u.ty, other)),
        _ => false,
    }
}

fn empty_instance() -> Instance {
    let schema = Arc::new(
        Schema::builder()
            .class(ClassDef::new("C", Type::Any))
            .build()
            .unwrap(),
    );
    Instance::new(schema)
}

proptest! {
    #[test]
    fn value_order_is_total_and_antisymmetric(a in arb_value(), b in arb_value()) {
        use std::cmp::Ordering;
        let ab = a.cmp(&b);
        let ba = b.cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        if ab == Ordering::Equal {
            prop_assert_eq!(&a, &b);
        }
    }

    #[test]
    fn value_order_transitive(a in arb_value(), b in arb_value(), c in arb_value()) {
        let mut v = [a, b, c];
        v.sort();
        prop_assert!(v[0] <= v[1] && v[1] <= v[2] && v[0] <= v[2]);
    }

    #[test]
    fn equiv_is_reflexive(a in arb_value()) {
        prop_assert!(a.equiv(&a));
    }

    #[test]
    fn equiv_is_symmetric(a in arb_value(), b in arb_value()) {
        prop_assert_eq!(a.equiv(&b), b.equiv(&a));
    }

    #[test]
    fn eq_implies_equiv(a in arb_value(), b in arb_value()) {
        if a == b {
            prop_assert!(a.equiv(&b));
        }
    }

    #[test]
    fn tuple_equiv_its_hetero_list(fs in prop::collection::vec((attr_name(), arb_value()), 0..4)) {
        let mut seen = Vec::new();
        let mut pairs = Vec::new();
        for (n, v) in fs {
            if !seen.contains(&n) {
                seen.push(n.clone());
                pairs.push((n, v));
            }
        }
        let t = Value::tuple(pairs.clone());
        let l = Value::list(pairs.into_iter().map(|(n, v)| Value::union(n, v)));
        prop_assert!(t.equiv(&l));
    }

    #[test]
    fn hash_consistent_with_eq(a in arb_value(), b in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        if a == b {
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }

    #[test]
    fn subtype_reflexive(t in arb_type()) {
        let inst = empty_instance();
        let ops = inst.schema().type_ops();
        prop_assert!(ops.is_subtype(&t, &t));
    }

    #[test]
    fn subtype_transitive(a in arb_type(), b in arb_type(), c in arb_type()) {
        // The paper's literal rule set is transitively closed except across
        // the tuple-as-heterogeneous-list crossing (rule 2), where width
        // subtyping of tuples and the fixed component list of the embedded
        // union interact; the paper reconciles the two only through
        // ≡-equivalence classes. We check transitivity on the rest.
        if may_cross_tuple_list(&a, &b) || may_cross_tuple_list(&b, &c) {
            return Ok(());
        }
        let inst = empty_instance();
        let ops = inst.schema().type_ops();
        if ops.is_subtype(&a, &b) && ops.is_subtype(&b, &c) {
            prop_assert!(ops.is_subtype(&a, &c),
                "transitivity failed: {a} ≤ {b} ≤ {c}");
        }
    }

    #[test]
    fn lub_is_upper_bound(a in arb_type(), b in arb_type()) {
        let inst = empty_instance();
        let ops = inst.schema().type_ops();
        if let Some(j) = ops.common_supertype(&a, &b) {
            prop_assert!(ops.is_subtype(&a, &j), "lub({a},{b}) = {j} not ≥ {a}");
            prop_assert!(ops.is_subtype(&b, &j), "lub({a},{b}) = {j} not ≥ {b}");
        }
    }

    #[test]
    fn lub_commutes(a in arb_type(), b in arb_type()) {
        let inst = empty_instance();
        let ops = inst.schema().type_ops();
        let ab = ops.common_supertype(&a, &b);
        let ba = ops.common_supertype(&b, &a);
        prop_assert_eq!(ab.is_some(), ba.is_some());
    }

    #[test]
    fn conform_respects_subtype(v in arb_value(), a in arb_type(), b in arb_type()) {
        // τ ≤ τ' and v ∈ dom(τ) ⇒ v ∈ dom(τ').
        //
        // One documented exception: the paper's dom(tuple) is
        // width-extensible (trailing extra attributes are members) while the
        // tuple-as-heterogeneous-list rule [a₁:τ₁,…,aₙ:τₙ] ≤ [(a₁+…+aₙ)]
        // fixes the component list; the paper reconciles the two only "by
        // abuse of notation" through ≡-equivalence classes. We therefore
        // exclude derivations crossing tuple≤list at any depth.
        if may_cross_tuple_list(&a, &b) {
            return Ok(());
        }
        let inst = empty_instance();
        let ops = inst.schema().type_ops();
        if ops.is_subtype(&a, &b) && conforms(&v, &a, &inst) {
            prop_assert!(conforms(&v, &b, &inst),
                "{v} ∈ dom({a}) but ∉ dom({b}) despite {a} ≤ {b}");
        }
    }

    #[test]
    fn sets_are_canonical(items in prop::collection::vec(arb_value(), 0..6)) {
        let s1 = Value::set(items.clone());
        let mut rev = items;
        rev.reverse();
        let s2 = Value::set(rev);
        prop_assert_eq!(s1, s2);
    }
}
