//! Property-based tests on the core model invariants:
//! total order on values, ≡-equivalence laws, subtyping laws
//! (reflexivity, transitivity), and the soundness link
//! `τ ≤ τ' ⇒ dom(τ) ⊆ dom(τ')` on generated witnesses.
//!
//! Originally written against an external property-testing library and
//! gated off; now running on the in-repo `docql-prop` harness.

use docql_model::{conforms, ClassDef, Instance, Schema, Type, Value};
use docql_prop::{
    bool_any, check, element, f64_any, i64_any, just, one_of, prop_assert, prop_assert_eq,
    recursive, string_of, vec_of, zip, zip3, Gen,
};
use std::sync::Arc;

const CASES: usize = 256;

/// Small attribute alphabet so tuples/unions collide often.
fn attr_name() -> Gen<String> {
    element(
        ["a", "b", "c", "title", "body"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    )
}

/// Deduplicate attribute names, keeping first occurrence.
fn dedup_pairs<T: Clone>(fs: &[(String, T)]) -> Vec<(String, T)> {
    let mut seen = Vec::new();
    let mut out = Vec::new();
    for (n, v) in fs {
        if !seen.contains(n) {
            seen.push(n.clone());
            out.push((n.clone(), v.clone()));
        }
    }
    out
}

fn arb_value() -> Gen<Value> {
    let leaf = one_of(vec![
        just(Value::Nil),
        i64_any().map(|i| Value::Int(*i)),
        f64_any().map(|f| Value::Float(*f)),
        bool_any().map(|b| Value::Bool(*b)),
        string_of("abcdefghijklmnopqrstuvwxyz", 0, 6).map(|s| Value::str(s.clone())),
    ]);
    recursive(leaf, 3, |inner| {
        one_of(vec![
            vec_of(inner.clone(), 0..4).map(|vs| Value::list(vs.clone())),
            vec_of(inner.clone(), 0..4).map(|vs| Value::set(vs.clone())),
            vec_of(zip(attr_name(), inner.clone()), 0..3).map(|fs| Value::tuple(dedup_pairs(fs))),
            zip(attr_name(), inner.clone()).map(|(n, v)| Value::union(n.clone(), v.clone())),
        ])
    })
}

fn arb_type() -> Gen<Type> {
    let leaf = one_of(vec![
        just(Type::Integer),
        just(Type::String),
        just(Type::Boolean),
        just(Type::Float),
    ]);
    recursive(leaf, 3, |inner| {
        one_of(vec![
            inner.clone().map(|t| Type::list(t.clone())),
            inner.clone().map(|t| Type::set(t.clone())),
            vec_of(zip(attr_name(), inner.clone()), 0..3).map(|fs| Type::tuple(dedup_pairs(fs))),
            vec_of(zip(attr_name(), inner.clone()), 1..3).map(|fs| Type::union(dedup_pairs(fs))),
        ])
    })
}

/// Could a subtype derivation `a ≤ b` use the tuple-as-heterogeneous-list
/// rule anywhere? (Conservative structural check used to scope properties
/// away from the paper's documented tuple/list friction.)
fn may_cross_tuple_list(a: &Type, b: &Type) -> bool {
    match (a, b) {
        (Type::Tuple(_), Type::List(_)) => true,
        (Type::List(x), Type::List(y)) | (Type::Set(x), Type::Set(y)) => may_cross_tuple_list(x, y),
        (Type::Tuple(fs), Type::Tuple(gs)) => fs.iter().any(|f| {
            gs.iter()
                .any(|g| g.name == f.name && may_cross_tuple_list(&f.ty, &g.ty))
        }),
        (Type::Tuple(fs), Type::Union(us)) | (Type::Union(us), Type::Tuple(fs)) => {
            fs.iter().any(|f| {
                us.iter()
                    .any(|u| u.name == f.name && may_cross_tuple_list(&f.ty, &u.ty))
            })
        }
        (Type::Union(us), Type::Union(vs)) => us.iter().any(|u| {
            vs.iter()
                .any(|v| v.name == u.name && may_cross_tuple_list(&u.ty, &v.ty))
        }),
        (Type::Union(us), other) => us.iter().any(|u| may_cross_tuple_list(&u.ty, other)),
        _ => false,
    }
}

fn empty_instance() -> Instance {
    let schema = Arc::new(
        Schema::builder()
            .class(ClassDef::new("C", Type::Any))
            .build()
            .unwrap(),
    );
    Instance::new(schema)
}

#[test]
fn value_order_is_total_and_antisymmetric() {
    check(
        "value_order_is_total_and_antisymmetric",
        CASES,
        &zip(arb_value(), arb_value()),
        |(a, b)| {
            use std::cmp::Ordering;
            let ab = a.cmp(b);
            let ba = b.cmp(a);
            prop_assert_eq!(ab, ba.reverse());
            if ab == Ordering::Equal {
                prop_assert_eq!(a, b);
            }
            Ok(())
        },
    );
}

#[test]
fn value_order_transitive() {
    check(
        "value_order_transitive",
        CASES,
        &zip3(arb_value(), arb_value(), arb_value()),
        |(a, b, c)| {
            let mut v = [a.clone(), b.clone(), c.clone()];
            v.sort();
            prop_assert!(v[0] <= v[1] && v[1] <= v[2] && v[0] <= v[2]);
            Ok(())
        },
    );
}

#[test]
fn equiv_is_reflexive() {
    check("equiv_is_reflexive", CASES, &arb_value(), |a| {
        prop_assert!(a.equiv(a));
        Ok(())
    });
}

#[test]
fn equiv_is_symmetric() {
    check(
        "equiv_is_symmetric",
        CASES,
        &zip(arb_value(), arb_value()),
        |(a, b)| {
            prop_assert_eq!(a.equiv(b), b.equiv(a));
            Ok(())
        },
    );
}

#[test]
fn eq_implies_equiv() {
    check(
        "eq_implies_equiv",
        CASES,
        &zip(arb_value(), arb_value()),
        |(a, b)| {
            if a == b {
                prop_assert!(a.equiv(b));
            }
            Ok(())
        },
    );
}

#[test]
fn tuple_equiv_its_hetero_list() {
    check(
        "tuple_equiv_its_hetero_list",
        CASES,
        &vec_of(zip(attr_name(), arb_value()), 0..4),
        |fs| {
            let pairs = dedup_pairs(fs);
            let t = Value::tuple(pairs.clone());
            let l = Value::list(pairs.into_iter().map(|(n, v)| Value::union(n, v)));
            prop_assert!(t.equiv(&l));
            Ok(())
        },
    );
}

#[test]
fn hash_consistent_with_eq() {
    check(
        "hash_consistent_with_eq",
        CASES,
        &zip(arb_value(), arb_value()),
        |(a, b)| {
            use std::collections::hash_map::DefaultHasher;
            use std::hash::{Hash, Hasher};
            if a == b {
                let mut ha = DefaultHasher::new();
                let mut hb = DefaultHasher::new();
                a.hash(&mut ha);
                b.hash(&mut hb);
                prop_assert_eq!(ha.finish(), hb.finish());
            }
            Ok(())
        },
    );
}

#[test]
fn subtype_reflexive() {
    check("subtype_reflexive", CASES, &arb_type(), |t| {
        let inst = empty_instance();
        let ops = inst.schema().type_ops();
        prop_assert!(ops.is_subtype(t, t));
        Ok(())
    });
}

#[test]
fn subtype_transitive() {
    check(
        "subtype_transitive",
        CASES,
        &zip3(arb_type(), arb_type(), arb_type()),
        |(a, b, c)| {
            // The paper's literal rule set is transitively closed except
            // across the tuple-as-heterogeneous-list crossing (rule 2),
            // where width subtyping of tuples and the fixed component list
            // of the embedded union interact; the paper reconciles the two
            // only through ≡-equivalence classes. We check transitivity on
            // the rest.
            if may_cross_tuple_list(a, b) || may_cross_tuple_list(b, c) {
                return Ok(());
            }
            let inst = empty_instance();
            let ops = inst.schema().type_ops();
            if ops.is_subtype(a, b) && ops.is_subtype(b, c) {
                prop_assert!(ops.is_subtype(a, c), "transitivity failed: {a} ≤ {b} ≤ {c}");
            }
            Ok(())
        },
    );
}

#[test]
fn lub_is_upper_bound() {
    check(
        "lub_is_upper_bound",
        CASES,
        &zip(arb_type(), arb_type()),
        |(a, b)| {
            let inst = empty_instance();
            let ops = inst.schema().type_ops();
            if let Some(j) = ops.common_supertype(a, b) {
                prop_assert!(ops.is_subtype(a, &j), "lub({a},{b}) = {j} not ≥ {a}");
                prop_assert!(ops.is_subtype(b, &j), "lub({a},{b}) = {j} not ≥ {b}");
            }
            Ok(())
        },
    );
}

#[test]
fn lub_commutes() {
    check(
        "lub_commutes",
        CASES,
        &zip(arb_type(), arb_type()),
        |(a, b)| {
            let inst = empty_instance();
            let ops = inst.schema().type_ops();
            let ab = ops.common_supertype(a, b);
            let ba = ops.common_supertype(b, a);
            prop_assert_eq!(ab.is_some(), ba.is_some());
            Ok(())
        },
    );
}

#[test]
fn conform_respects_subtype() {
    check(
        "conform_respects_subtype",
        CASES,
        &zip3(arb_value(), arb_type(), arb_type()),
        |(v, a, b)| {
            // τ ≤ τ' and v ∈ dom(τ) ⇒ v ∈ dom(τ').
            //
            // One documented exception: the paper's dom(tuple) is
            // width-extensible (trailing extra attributes are members) while
            // the tuple-as-heterogeneous-list rule
            // [a₁:τ₁,…,aₙ:τₙ] ≤ [(a₁+…+aₙ)] fixes the component list; the
            // paper reconciles the two only "by abuse of notation" through
            // ≡-equivalence classes. We therefore exclude derivations
            // crossing tuple≤list at any depth.
            if may_cross_tuple_list(a, b) {
                return Ok(());
            }
            let inst = empty_instance();
            let ops = inst.schema().type_ops();
            if ops.is_subtype(a, b) && conforms(v, a, &inst) {
                prop_assert!(
                    conforms(v, b, &inst),
                    "{v} ∈ dom({a}) but ∉ dom({b}) despite {a} ≤ {b}"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn sets_are_canonical() {
    check(
        "sets_are_canonical",
        CASES,
        &vec_of(arb_value(), 0..6),
        |items| {
            let s1 = Value::set(items.clone());
            let mut rev = items.clone();
            rev.reverse();
            let s2 = Value::set(rev);
            prop_assert_eq!(s1, s2);
            Ok(())
        },
    );
}
