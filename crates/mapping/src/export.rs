//! Database objects → SGML document (the inverse mapping).
//!
//! The paper's footnote 1 points out that "the inverse mapping from database
//! schema/instances to SGML DTD/documents also opens interesting
//! perspectives" and §6 lists updating the document from the database as a
//! key aspect \[5\]. This module implements the instance side: an object of a
//! mapped class is re-serialised as an SGML element tree, so documents can
//! round-trip database edits.

use crate::schema_gen::{AttrKind, ContentKind, DtdMapping, MapError};
use crate::shape::Shape;
use docql_model::{Instance, Oid, Value};
use docql_sgml::{Document, Element, Node};
use std::collections::HashMap;

/// Export the object `root` (of a mapped element class) as a document.
pub fn export_document(
    mapping: &DtdMapping,
    instance: &Instance,
    root: Oid,
) -> Result<Document, MapError> {
    let exporter = Exporter {
        mapping,
        instance,
        ids: collect_ids(mapping, instance),
    };
    Ok(Document {
        root: exporter.element(root)?,
    })
}

/// Rebuild the ID table (oid → SGML ID string) by scanning ID-kind attribute
/// values. Exported IDREF attributes need the target's textual ID; we keep
/// a deterministic synthetic id per target object.
fn collect_ids(mapping: &DtdMapping, instance: &Instance) -> HashMap<Oid, String> {
    let mut out = HashMap::new();
    for (oid, class, _) in instance.objects() {
        let has_id_attr = mapping
            .elements
            .values()
            .any(|em| em.class == class && em.attrs.iter().any(|a| matches!(a.kind, AttrKind::Id)));
        if has_id_attr {
            out.insert(oid, format!("id{}", oid.0));
        }
    }
    out
}

struct Exporter<'m, 'i> {
    mapping: &'m DtdMapping,
    instance: &'i Instance,
    ids: HashMap<Oid, String>,
}

impl Exporter<'_, '_> {
    fn element(&self, oid: Oid) -> Result<Element, MapError> {
        let class = self.instance.class_of(oid).map_err(MapError::Model)?;
        let em = self
            .mapping
            .elements
            .values()
            .find(|em| em.class == class)
            .ok_or_else(|| MapError::Load(format!("class `{class}` maps to no element")))?;
        let value = self.instance.value_of(oid).map_err(MapError::Model)?;
        let mut out = Element::new(em.tag.clone());

        match &em.content {
            ContentKind::TextContent => {
                if let Some(Value::Str(s)) = value.attr(docql_model::sym("contents")) {
                    if !s.is_empty() {
                        out.children.push(Node::Text(s.clone()));
                    }
                }
            }
            ContentKind::Media => {}
            ContentKind::AnyContent => {
                if let Some(Value::List(items)) = value.attr(docql_model::sym("contents")) {
                    for item in items {
                        match item {
                            Value::Union(m, payload) if m.as_str() == "text" => {
                                if let Value::Str(s) = payload.as_ref() {
                                    out.children.push(Node::Text(s.clone()));
                                }
                            }
                            Value::Union(_, payload) => {
                                if let Value::Oid(o) = payload.as_ref() {
                                    out.children.push(Node::Element(self.element(*o)?));
                                }
                            }
                            _ => {}
                        }
                    }
                }
            }
            ContentKind::Structured { shape, .. } => {
                // Unwrap the attribute-carrying wrapper if present.
                let content_val = match value {
                    Value::Tuple(_) if matches!(shape, Shape::Union(_)) => {
                        value.attr(docql_model::sym("content")).unwrap_or(value)
                    }
                    v => v,
                };
                self.shape_children(shape, content_val, &mut out)?;
            }
        }

        // Attributes.
        for am in &em.attrs {
            let Some(v) = value.attr(am.field) else {
                continue;
            };
            match (&am.kind, v) {
                (AttrKind::Str | AttrKind::Entity, Value::Str(s))
                    // The loader stores absent #IMPLIED attributes as the
                    // empty string; those are omitted on the way out.
                    if !s.is_empty() => {
                        out.attrs.push((am.sgml_name.clone(), s.clone()));
                    }
                (AttrKind::Id, Value::List(_)) => {
                    if let Some(id) = self.ids.get(&oid) {
                        out.attrs.push((am.sgml_name.clone(), id.clone()));
                    }
                }
                (AttrKind::Ref, Value::Oid(target)) => {
                    if let Some(id) = self.ids.get(target) {
                        out.attrs.push((am.sgml_name.clone(), id.clone()));
                    }
                }
                (AttrKind::Refs, Value::List(items)) => {
                    let ids: Vec<String> = items
                        .iter()
                        .filter_map(|i| match i {
                            Value::Oid(o) => self.ids.get(o).cloned(),
                            _ => None,
                        })
                        .collect();
                    if !ids.is_empty() {
                        out.attrs.push((am.sgml_name.clone(), ids.join(" ")));
                    }
                }
                _ => {}
            }
        }
        Ok(out)
    }

    fn shape_children(
        &self,
        shape: &Shape,
        value: &Value,
        out: &mut Element,
    ) -> Result<(), MapError> {
        match (shape, value) {
            (Shape::Class(_), Value::Oid(o)) => {
                out.children.push(Node::Element(self.element(*o)?));
            }
            (Shape::Class(_), Value::Nil) => {}
            (Shape::Text, Value::Str(s)) => {
                if !s.is_empty() {
                    out.children.push(Node::Text(s.clone()));
                }
            }
            (Shape::Tuple(fields), Value::Tuple(fs)) => {
                for ((name, s), (vn, v)) in fields.iter().zip(fs) {
                    debug_assert_eq!(name, vn);
                    self.shape_children(s, v, out)?;
                }
            }
            (Shape::Union(branches), Value::Union(marker, payload)) => {
                if let Some((_, s)) = branches.iter().find(|(m, _)| m == marker) {
                    self.shape_children(s, payload, out)?;
                }
            }
            (Shape::List(inner, _), Value::List(items)) => {
                for item in items {
                    self.shape_children(inner, item, out)?;
                }
            }
            (Shape::Optional(_), Value::Nil) => {}
            (Shape::Optional(inner), v) => self.shape_children(inner, v, out)?,
            _ => {
                return Err(MapError::Load(format!(
                    "value {value} does not fit shape {shape:?}"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::load_sgml_text;
    use crate::schema_gen::map_dtd;
    use docql_model::Instance;
    use docql_sgml::fixtures::{ARTICLE_DTD, FIG2_DOCUMENT, LETTER_DTD};
    use docql_sgml::{validate, Dtd};

    #[test]
    fn fig2_round_trips_through_the_database() {
        let dtd = Dtd::parse(ARTICLE_DTD).unwrap();
        let mapping = map_dtd(&dtd).unwrap();
        let mut instance = Instance::new(mapping.schema.clone());
        let loaded = load_sgml_text(&mapping, &dtd, &mut instance, FIG2_DOCUMENT).unwrap();
        let doc = export_document(&mapping, &instance, loaded.root).unwrap();
        // The exported document is valid against the DTD…
        let errs = validate(&doc, &dtd);
        assert!(errs.is_empty(), "{errs:?}");
        // …and preserves structure and content.
        assert_eq!(doc.root.name, "article");
        assert_eq!(doc.root.attr("status"), Some("final"));
        let mut authors = Vec::new();
        doc.root.find_all("author", &mut authors);
        assert_eq!(authors.len(), 4);
        assert!(doc
            .root
            .find("abstract")
            .unwrap()
            .text_content()
            .contains("Structured documents"));
    }

    #[test]
    fn exported_text_reparses_to_equivalent_instance() {
        let dtd = Dtd::parse(ARTICLE_DTD).unwrap();
        let mapping = map_dtd(&dtd).unwrap();
        let mut instance = Instance::new(mapping.schema.clone());
        let loaded = load_sgml_text(&mapping, &dtd, &mut instance, FIG2_DOCUMENT).unwrap();
        let doc = export_document(&mapping, &instance, loaded.root).unwrap();
        let sgml = doc.to_sgml();
        // Reload the exported text into a fresh instance.
        let mut instance2 = Instance::new(mapping.schema.clone());
        let loaded2 = load_sgml_text(&mapping, &dtd, &mut instance2, &sgml).unwrap();
        let t1 = &loaded.text_of[&loaded.root];
        let t2 = &loaded2.text_of[&loaded2.root];
        assert_eq!(t1, t2, "text content preserved across round-trip");
        assert_eq!(instance.object_count(), instance2.object_count());
    }

    #[test]
    fn letters_round_trip_preserves_field_order() {
        let dtd = Dtd::parse(LETTER_DTD).unwrap();
        let mapping = map_dtd(&dtd).unwrap();
        let mut instance = Instance::new(mapping.schema.clone());
        let loaded = load_sgml_text(
            &mapping,
            &dtd,
            &mut instance,
            "<letter><preamble><from>carol<to>dan</preamble><para>yo</para></letter>",
        )
        .unwrap();
        let doc = export_document(&mapping, &instance, loaded.root).unwrap();
        let pre = doc.root.find("preamble").unwrap();
        let kids: Vec<&str> = pre.child_elements().map(|e| e.name.as_str()).collect();
        assert_eq!(kids, vec!["from", "to"], "document order preserved");
    }
}
