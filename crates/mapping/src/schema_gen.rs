//! DTD → O₂ schema generation (§3, Fig. 1 → Fig. 3).
//!
//! Each element declaration is interpreted as a class with a type, some
//! constraints and a default behaviour. Specifics, all visible in Fig. 3:
//!
//! * `(#PCDATA)` elements become classes inheriting `Text`;
//! * `EMPTY` elements become classes inheriting `Bitmap` (media content);
//! * the choice connector becomes a marked union, `+`/`*` become lists,
//!   `?` becomes a nilable attribute, and `&` becomes the marked union of
//!   its permutations;
//! * SGML attributes become *private* trailing tuple attributes
//!   (`private status: string`); `ID` attributes become back-reference lists
//!   (`private label: list(Object)`), `IDREF` attributes become object
//!   references (`private reflabel: Object`);
//! * occurrence indicators, `#REQUIRED` attributes and enumerated ranges
//!   become constraints.

use crate::names::{class_name, plural};
use crate::shape::Shape;
use docql_model::{sym, ClassDef, Constraint, Field, ModelError, Schema, Sym, Type, Value};
use docql_sgml::{content::expand_and, AttDefault, AttType, ContentModel, Dtd, ElementDecl};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// How an element's content is realised in the database.
#[derive(Debug, Clone, PartialEq)]
pub enum ContentKind {
    /// `(#PCDATA)` — a `Text` subclass with a `contents: string` attribute.
    TextContent,
    /// `EMPTY` — a `Bitmap` subclass with a `bits: string` attribute.
    Media,
    /// `ANY` — a list of (object | string) union values.
    AnyContent,
    /// A model group, with its (already `&`-expanded) expression and shape.
    Structured {
        /// The expanded content expression (for match-tree construction).
        expr: docql_sgml::ContentExpr,
        /// The shared shape driving typing and loading.
        shape: Shape,
    },
}

/// How one SGML attribute is realised.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrMapping {
    /// SGML attribute name.
    pub sgml_name: String,
    /// Database attribute (always appended, private).
    pub field: Sym,
    /// Realisation.
    pub kind: AttrKind,
}

/// Attribute realisation kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrKind {
    /// CDATA / NMTOKEN / enumerated → `string`.
    Str,
    /// ID → back-reference list `list(Object)`; the value is also recorded
    /// in the document's id table.
    Id,
    /// IDREF → `Object` (patched to the target's oid after loading).
    Ref,
    /// IDREFS → `list(Object)`.
    Refs,
    /// ENTITY → `string` (the entity's system identifier).
    Entity,
}

/// Per-element mapping metadata, consumed by the loader and exporter.
#[derive(Debug, Clone)]
pub struct ElementMapping {
    /// SGML tag.
    pub tag: String,
    /// Database class.
    pub class: Sym,
    /// Content realisation.
    pub content: ContentKind,
    /// Attribute realisations, in ATTLIST order.
    pub attrs: Vec<AttrMapping>,
}

/// The full result of mapping a DTD.
pub struct DtdMapping {
    /// The generated schema (base classes + one class per element + root).
    pub schema: Arc<Schema>,
    /// Per-element metadata, keyed by tag.
    pub elements: HashMap<String, ElementMapping>,
    /// The document element's tag.
    pub doctype: String,
    /// The root of persistence (`Articles` for doctype `article`).
    pub root: Sym,
}

impl fmt::Debug for DtdMapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DtdMapping")
            .field("doctype", &self.doctype)
            .field("root", &self.root)
            .field("elements", &self.elements.len())
            .finish()
    }
}

/// Errors of the mapping stage.
#[derive(Debug)]
pub enum MapError {
    /// From the SGML layer (e.g. `&` group too large).
    Sgml(docql_sgml::SgmlError),
    /// From the model layer (e.g. generated schema ill-formed).
    Model(ModelError),
    /// Loader errors.
    Load(String),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Sgml(e) => write!(f, "SGML error: {e}"),
            MapError::Model(e) => write!(f, "model error: {e}"),
            MapError::Load(s) => write!(f, "load error: {s}"),
        }
    }
}

impl std::error::Error for MapError {}

impl From<docql_sgml::SgmlError> for MapError {
    fn from(e: docql_sgml::SgmlError) -> MapError {
        MapError::Sgml(e)
    }
}

impl From<ModelError> for MapError {
    fn from(e: ModelError) -> MapError {
        MapError::Model(e)
    }
}

/// Map a DTD to an O₂ schema (the Fig. 1 → Fig. 3 transformation).
pub fn map_dtd(dtd: &Dtd) -> Result<DtdMapping, MapError> {
    map_dtd_with(dtd, &[])
}

/// Like [`map_dtd`], with extra roots of persistence of the document
/// element's class (e.g. `my_article`, `my_old_article` in §4.3).
pub fn map_dtd_with(dtd: &Dtd, extra_roots: &[&str]) -> Result<DtdMapping, MapError> {
    let mut builder = Schema::builder()
        .class(ClassDef::new(
            "Text",
            Type::tuple([("contents", Type::String)]),
        ))
        .class(ClassDef::new(
            "Bitmap",
            Type::tuple([("bits", Type::String)]),
        ));
    let mut elements = HashMap::new();

    for decl in &dtd.elements {
        let (def, mapping) = map_element(dtd, decl)?;
        builder = builder.class(def);
        elements.insert(decl.name.clone(), mapping);
    }

    let doctype_class = class_name(&dtd.doctype);
    let root = sym(&plural(&doctype_class));
    builder = builder.root(root, Type::list(Type::class(doctype_class.as_str())));
    for extra in extra_roots {
        builder = builder.root(*extra, Type::class(doctype_class.as_str()));
    }
    let schema = Arc::new(builder.build()?);
    Ok(DtdMapping {
        schema,
        elements,
        doctype: dtd.doctype.clone(),
        root,
    })
}

fn map_element(dtd: &Dtd, decl: &ElementDecl) -> Result<(ClassDef, ElementMapping), MapError> {
    let class = sym(&class_name(&decl.name));
    let attr_mappings: Vec<AttrMapping> = dtd
        .attributes_of(&decl.name)
        .iter()
        .map(|a| AttrMapping {
            sgml_name: a.name.clone(),
            field: sym(&a.name),
            kind: match a.ty {
                AttType::Id => AttrKind::Id,
                AttType::Idref => AttrKind::Ref,
                AttType::Idrefs => AttrKind::Refs,
                AttType::Entity => AttrKind::Entity,
                _ => AttrKind::Str,
            },
        })
        .collect();
    let attr_fields: Vec<Field> = attr_mappings
        .iter()
        .map(|m| {
            Field::new(
                m.field,
                match m.kind {
                    AttrKind::Str | AttrKind::Entity => Type::String,
                    AttrKind::Id | AttrKind::Refs => Type::list(Type::Any),
                    AttrKind::Ref => Type::Any,
                },
            )
        })
        .collect();

    let (mut def, content) = match &decl.content {
        ContentModel::Pcdata => {
            let mut fields = vec![Field::new(sym("contents"), Type::String)];
            fields.extend(attr_fields.clone());
            let def = ClassDef::new(class, Type::Tuple(fields)).inherit("Text");
            (def, ContentKind::TextContent)
        }
        ContentModel::Empty => {
            let mut fields = vec![Field::new(sym("bits"), Type::String)];
            fields.extend(attr_fields.clone());
            let def = ClassDef::new(class, Type::Tuple(fields)).inherit("Bitmap");
            (def, ContentKind::Media)
        }
        ContentModel::Any => {
            let content_ty =
                Type::list(Type::union([("text", Type::String), ("object", Type::Any)]));
            let mut fields = vec![Field::new(sym("contents"), content_ty)];
            fields.extend(attr_fields.clone());
            (
                ClassDef::new(class, Type::Tuple(fields)),
                ContentKind::AnyContent,
            )
        }
        ContentModel::Model(raw) => {
            let expr = expand_and(raw)?;
            let shape = Shape::of_expr(&expr);
            let ty = match shape.to_type() {
                // A union-typed element with SGML attributes wraps the union
                // into a tuple so the attributes have somewhere to live.
                Type::Union(branches) if !attr_fields.is_empty() => {
                    let mut fields = vec![Field::new(sym("content"), Type::Union(branches))];
                    fields.extend(attr_fields.clone());
                    Type::Tuple(fields)
                }
                Type::Union(branches) => Type::Union(branches),
                Type::Tuple(mut fields) => {
                    fields.extend(attr_fields.clone());
                    Type::Tuple(fields)
                }
                // Single-component models still become tuples (so the class
                // type is a record and attributes can be appended).
                other => {
                    let mut fields = vec![Field::new(sym("content"), other)];
                    fields.extend(attr_fields.clone());
                    Type::Tuple(fields)
                }
            };
            (
                ClassDef::new(class, ty),
                ContentKind::Structured { expr, shape },
            )
        }
    };

    // Constraints: occurrence indicators and attribute requirements (Fig. 3).
    for c in shape_constraints(&content) {
        def = def.constrained(c);
    }
    for (m, a) in attr_mappings.iter().zip(dtd.attributes_of(&decl.name)) {
        if matches!(a.default, AttDefault::Required) {
            def = def.constrained(Constraint::not_nil(m.field));
        }
        if let AttType::Enumerated(allowed) = &a.ty {
            def = def.constrained(Constraint::one_of(
                m.field,
                allowed.iter().map(|v| Value::str(v.clone())),
            ));
        }
        def = def.private(m.field);
    }

    Ok((
        def,
        ElementMapping {
            tag: decl.name.clone(),
            class,
            content,
            attrs: attr_mappings,
        },
    ))
}

/// Constraints induced by the content shape: `attr != nil` for required
/// components, `attr != list()` for `+` lists; per-branch conjunctions for
/// unions; `figure != nil | paragr != nil` style disjunction for unions of
/// plain elements (Fig. 3 class Body).
fn shape_constraints(content: &ContentKind) -> Vec<Constraint> {
    let ContentKind::Structured { shape, .. } = content else {
        return Vec::new();
    };
    match shape {
        Shape::Tuple(fields) => tuple_constraints(fields, &[]),
        Shape::Union(branches) => {
            let mut out = Vec::new();
            let mut all_leaf = true;
            for (marker, s) in branches {
                match s {
                    Shape::Tuple(fields) => {
                        all_leaf = false;
                        let cs = tuple_constraints(fields, &[*marker]);
                        if !cs.is_empty() {
                            out.push(Constraint::AllOf(cs));
                        }
                    }
                    Shape::Class(_) | Shape::Text => {}
                    _ => all_leaf = false,
                }
            }
            if all_leaf && !branches.is_empty() {
                // union(figure: Figure + paragr: Paragr):
                // figure != nil | paragr != nil
                return vec![Constraint::AnyOf(
                    branches
                        .iter()
                        .map(|(m, _)| Constraint::not_nil(*m))
                        .collect(),
                )];
            }
            out
        }
        _ => Vec::new(),
    }
}

fn tuple_constraints(fields: &[(Sym, Shape)], prefix: &[Sym]) -> Vec<Constraint> {
    let mut out = Vec::new();
    for (name, s) in fields {
        let mut path = prefix.to_vec();
        path.push(*name);
        match s {
            Shape::Class(_) | Shape::Text | Shape::Tuple(_) | Shape::Union(_) => {
                out.push(Constraint::NotNil(path));
            }
            Shape::List(_, true) => out.push(Constraint::NotEmptyList(path)),
            Shape::List(_, false) => {}
            Shape::Optional(_) => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use docql_sgml::fixtures::ARTICLE_DTD;

    fn mapping() -> DtdMapping {
        map_dtd(&Dtd::parse(ARTICLE_DTD).unwrap()).unwrap()
    }

    #[test]
    fn generates_fig3_article_class() {
        let m = mapping();
        let article = m.schema.hierarchy().get(sym("Article")).unwrap();
        assert_eq!(
            article.ty.to_string(),
            "tuple(title: Title, authors: list(Author), affil: Affil, \
             abstract: Abstract, sections: list(Section), acknowl: Acknowl, \
             status: string)"
        );
        assert!(article.private_attrs.contains(&sym("status")));
        // Fig. 3 constraints: title != nil, authors != list(), …, status range
        let cs: Vec<String> = article.constraints.iter().map(|c| c.to_string()).collect();
        assert!(cs.contains(&"title != nil".to_string()));
        assert!(cs.contains(&"authors != list()".to_string()));
        assert!(cs.contains(&"status in set(\"final\", \"draft\")".to_string()));
    }

    #[test]
    fn generates_fig3_section_union() {
        let m = mapping();
        let section = m.schema.hierarchy().get(sym("Section")).unwrap();
        assert_eq!(
            section.ty.to_string(),
            "union(a1: tuple(title: Title, bodies: list(Body)) + \
             a2: tuple(title: Title, bodies: list(Body), subsectns: list(Subsectn)))"
        );
        // Per-branch constraints, as in Fig. 3.
        let cs: Vec<String> = section.constraints.iter().map(|c| c.to_string()).collect();
        assert!(cs.iter().any(|c| c.contains("a1.title != nil")), "{cs:?}");
        assert!(
            cs.iter().any(|c| c.contains("a2.subsectns != list()")),
            "{cs:?}"
        );
    }

    #[test]
    fn generates_fig3_body_union_with_disjunction() {
        let m = mapping();
        let body = m.schema.hierarchy().get(sym("Body")).unwrap();
        assert_eq!(
            body.ty.to_string(),
            "union(figure: Figure + paragr: Paragr)"
        );
        let cs: Vec<String> = body.constraints.iter().map(|c| c.to_string()).collect();
        assert_eq!(cs, vec!["figure != nil | paragr != nil".to_string()]);
    }

    #[test]
    fn text_classes_inherit_text() {
        let m = mapping();
        for name in ["Title", "Author", "Abstract", "Caption", "Acknowl"] {
            let def = m.schema.hierarchy().get(sym(name)).unwrap();
            assert_eq!(def.parents, vec![sym("Text")], "{name} should inherit Text");
        }
        assert!(m.schema.hierarchy().is_subclass(sym("Title"), sym("Text")));
    }

    #[test]
    fn picture_inherits_bitmap() {
        let m = mapping();
        let pic = m.schema.hierarchy().get(sym("Picture")).unwrap();
        assert_eq!(pic.parents, vec![sym("Bitmap")]);
        // NMTOKEN and ENTITY attributes appended as private strings.
        assert!(pic.ty.to_string().contains("sizex: string"));
        assert!(pic.ty.to_string().contains("file: string"));
    }

    #[test]
    fn figure_gets_id_backref_list_and_paragr_gets_object_ref() {
        let m = mapping();
        let fig = m.schema.hierarchy().get(sym("Figure")).unwrap();
        assert!(
            fig.ty.to_string().contains("label: list(any)"),
            "Fig. 3: private label: list(Object) — got {}",
            fig.ty
        );
        let par = m.schema.hierarchy().get(sym("Paragr")).unwrap();
        assert!(par.ty.to_string().contains("reflabel: any"));
        assert!(par
            .constraints
            .iter()
            .any(|c| c.to_string() == "reflabel != nil"));
        assert_eq!(par.parents, vec![sym("Text")]);
    }

    #[test]
    fn root_of_persistence_matches_fig3() {
        let m = mapping();
        assert_eq!(m.root, sym("Articles"));
        assert_eq!(
            m.schema.root_type(sym("Articles")),
            Some(&Type::list(Type::class("Article")))
        );
    }

    #[test]
    fn figure_optional_caption_unconstrained() {
        let m = mapping();
        let fig = m.schema.hierarchy().get(sym("Figure")).unwrap();
        let cs: Vec<String> = fig.constraints.iter().map(|c| c.to_string()).collect();
        assert!(cs.contains(&"picture != nil".to_string()));
        assert!(
            !cs.iter().any(|c| c.contains("caption")),
            "caption? must not be constrained: {cs:?}"
        );
    }

    #[test]
    fn schema_is_well_formed() {
        let m = mapping();
        // builder.build() already validated; double-check hierarchy size:
        // 13 element classes + Text + Bitmap.
        assert_eq!(m.schema.hierarchy().len(), 15);
    }
}
