//! Document instance → database objects and values (§3).
//!
//! "Each SGML element definition in the DTD is interpreted as a class …";
//! correspondingly each element *occurrence* becomes an object of that
//! class. The loader walks the document tree bottom-up, matches every
//! element's children against its (expanded) content model to obtain a parse
//! tree, and builds the value in lock-step with the [`Shape`] the type
//! generator used — so loaded instances conform to the generated schema by
//! construction.
//!
//! Cross-references are resolved in a second pass: `IDREF` attributes are
//! patched to the referenced object's oid, and every `ID`-carrying object
//! receives the back-reference list Fig. 3 shows as
//! `private label: list(Object)`.
//!
//! The loader also records the paper's `text` operator: the "inverse mapping
//! from a logical object to the corresponding portion of text" \[5\], as a
//! side table `oid → text`.

use crate::schema_gen::{AttrKind, ContentKind, DtdMapping, MapError};
use crate::shape::Shape;
use docql_model::{Instance, Oid, Sym, Value};
use docql_sgml::{match_children, ContentExpr, Document, Element, Label, MatchNode, Node};
use std::collections::HashMap;

/// The result of loading one document.
#[derive(Debug)]
pub struct LoadedDocument {
    /// The document element's object.
    pub root: Oid,
    /// The paper's `text` operator: object → its text portion.
    pub text_of: HashMap<Oid, String>,
    /// ID table: SGML ID value → object.
    pub ids: HashMap<String, Oid>,
}

/// Load a parsed document into `instance` (which must be an instance of
/// `mapping.schema`) and append its root object to the root of persistence.
pub fn load_document(
    mapping: &DtdMapping,
    instance: &mut Instance,
    doc: &Document,
) -> Result<LoadedDocument, MapError> {
    let mut loader = Loader {
        mapping,
        instance,
        text_of: HashMap::new(),
        ids: HashMap::new(),
        pending_refs: Vec::new(),
    };
    let root = loader.element(&doc.root)?;
    loader.patch_references()?;
    let text_of = loader.text_of;
    let ids = loader.ids;

    // Append to the root of persistence (γ).
    let existing = instance
        .root(mapping.root)
        .cloned()
        .unwrap_or(Value::List(Vec::new()));
    let mut items = match existing {
        Value::List(items) => items,
        other => vec![other],
    };
    items.push(Value::Oid(root));
    instance
        .set_root(mapping.root, Value::List(items))
        .map_err(MapError::Model)?;

    Ok(LoadedDocument { root, text_of, ids })
}

struct Loader<'m, 'i> {
    mapping: &'m DtdMapping,
    instance: &'i mut Instance,
    text_of: HashMap<Oid, String>,
    ids: HashMap<String, Oid>,
    /// (object, field, referenced id, is_list)
    pending_refs: Vec<(Oid, Sym, String, bool)>,
}

impl Loader<'_, '_> {
    fn element(&mut self, e: &Element) -> Result<Oid, MapError> {
        let em = self
            .mapping
            .elements
            .get(&e.name)
            .ok_or_else(|| MapError::Load(format!("element `{}` has no mapping", e.name)))?;
        // Children first (bottom-up).
        let mut child_vals: Vec<ChildVal> = Vec::new();
        for c in &e.children {
            match c {
                Node::Element(child) => {
                    let oid = self.element(child)?;
                    child_vals.push(ChildVal::Obj(oid));
                }
                Node::Text(t) => child_vals.push(ChildVal::Text(t.clone())),
            }
        }

        let mut fields: Vec<(Sym, Value)> = Vec::new();
        let mut union_value: Option<Value> = None;
        match &em.content {
            ContentKind::TextContent => {
                fields.push((docql_model::sym("contents"), Value::str(e.text_content())));
            }
            ContentKind::Media => {
                // The "bits" of an external picture: its entity system id if
                // given, else empty.
                let bits = e.attr("file").unwrap_or_default().to_string();
                fields.push((docql_model::sym("bits"), Value::str(bits)));
            }
            ContentKind::AnyContent => {
                let items: Vec<Value> = child_vals
                    .iter()
                    .map(|cv| match cv {
                        ChildVal::Obj(o) => Value::union("object", Value::Oid(*o)),
                        ChildVal::Text(t) => Value::union("text", Value::str(t.clone())),
                    })
                    .collect();
                fields.push((docql_model::sym("contents"), Value::List(items)));
            }
            ContentKind::Structured { expr, shape } => {
                // Labels for content-model matching: drop whitespace-only
                // text unless the model accepts text.
                let labels: Vec<Label> = child_vals
                    .iter()
                    .map(|cv| match cv {
                        ChildVal::Obj(o) => {
                            let class = self
                                .instance
                                .class_of(*o)
                                .map_err(|err| MapError::Load(err.to_string()))?;
                            // Tag = lower-cased class name is not reliable;
                            // look it up from the element child list instead.
                            Ok(Label::Elem(self.tag_of_class(class).unwrap_or_default()))
                        }
                        ChildVal::Text(_) => Ok(Label::Text),
                    })
                    .collect::<Result<Vec<_>, MapError>>()?;
                // Filter whitespace-only text runs that the model ignores.
                let mut filtered_vals: Vec<&ChildVal> = Vec::new();
                let mut filtered_labels: Vec<Label> = Vec::new();
                for (cv, l) in child_vals.iter().zip(&labels) {
                    if let (ChildVal::Text(t), Label::Text) = (cv, l) {
                        if t.trim().is_empty() {
                            continue;
                        }
                    }
                    filtered_vals.push(cv);
                    filtered_labels.push(l.clone());
                }
                let m = match_children(expr, &filtered_labels).ok_or_else(|| {
                    MapError::Load(format!(
                        "children of `{}` do not match its content model",
                        e.name
                    ))
                })?;
                let built = build_value(shape, &m, &filtered_vals);
                match built {
                    Value::Tuple(fs) => fields.extend(fs),
                    other @ Value::Union(..) => union_value = Some(other),
                    other => fields.push((docql_model::sym("content"), other)),
                }
            }
        }

        // SGML attributes → trailing private fields.
        let mut id_value: Option<String> = None;
        for am in &em.attrs {
            let raw = e.attr(&am.sgml_name);
            let v = match (&am.kind, raw) {
                (AttrKind::Str, Some(s)) => Value::str(s),
                (AttrKind::Entity, Some(s)) => {
                    // Store the entity's system identifier if resolvable.
                    Value::str(s)
                }
                (AttrKind::Id, Some(s)) => {
                    id_value = Some(s.to_string());
                    Value::List(Vec::new()) // back-references patched later
                }
                (AttrKind::Ref, Some(_)) | (AttrKind::Refs, Some(_)) => Value::Nil, // patched
                // Absent #IMPLIED attributes: the empty string for string-
                // typed fields, the empty list for ID/IDREFS back-reference
                // lists, nil for object references (nil ∈ dom(any)).
                (AttrKind::Str | AttrKind::Entity, None) => Value::str(""),
                (AttrKind::Id | AttrKind::Refs, None) => Value::List(Vec::new()),
                (AttrKind::Ref, None) => Value::Nil,
            };
            fields.push((am.field, v));
        }

        let value = match union_value {
            Some(u) if fields.is_empty() => u,
            Some(u) => {
                // Union content wrapped with attributes (see schema_gen).
                let mut fs = vec![(docql_model::sym("content"), u)];
                fs.extend(fields);
                Value::Tuple(fs)
            }
            None => Value::Tuple(fields),
        };
        let oid = self
            .instance
            .new_object(em.class, value)
            .map_err(MapError::Model)?;
        self.text_of.insert(oid, e.text_content());
        if let Some(id) = id_value {
            if self.ids.insert(id.clone(), oid).is_some() {
                return Err(MapError::Load(format!("duplicate ID `{id}`")));
            }
        }
        for am in &em.attrs {
            if let Some(raw) = e.attr(&am.sgml_name) {
                match am.kind {
                    AttrKind::Ref => {
                        self.pending_refs
                            .push((oid, am.field, raw.to_string(), false));
                    }
                    AttrKind::Refs => {
                        for part in raw.split_whitespace() {
                            self.pending_refs
                                .push((oid, am.field, part.to_string(), true));
                        }
                    }
                    _ => {}
                }
            }
        }
        Ok(oid)
    }

    fn tag_of_class(&self, class: Sym) -> Option<String> {
        self.mapping
            .elements
            .values()
            .find(|em| em.class == class)
            .map(|em| em.tag.clone())
    }

    /// Second pass: point IDREF fields at their targets and build the ID
    /// side's back-reference lists.
    fn patch_references(&mut self) -> Result<(), MapError> {
        let mut backrefs: HashMap<Oid, Vec<Value>> = HashMap::new();
        for (holder, field, id, is_list) in std::mem::take(&mut self.pending_refs) {
            let target = *self
                .ids
                .get(&id)
                .ok_or_else(|| MapError::Load(format!("IDREF `{id}` matches no ID")))?;
            let mut v = self
                .instance
                .value_of(holder)
                .map_err(MapError::Model)?
                .clone();
            if let Value::Tuple(fs) = &mut v {
                for (n, fv) in fs.iter_mut() {
                    if *n == field {
                        if is_list {
                            match fv {
                                Value::List(items) => items.push(Value::Oid(target)),
                                _ => *fv = Value::List(vec![Value::Oid(target)]),
                            }
                        } else {
                            *fv = Value::Oid(target);
                        }
                    }
                }
            }
            self.instance
                .set_value(holder, v)
                .map_err(MapError::Model)?;
            backrefs.entry(target).or_default().push(Value::Oid(holder));
        }
        // Back-reference lists on ID holders (Fig. 3 `label: list(Object)`).
        for (&id_holder, refs) in &backrefs {
            let mut v = self
                .instance
                .value_of(id_holder)
                .map_err(MapError::Model)?
                .clone();
            if let Value::Tuple(fs) = &mut v {
                for (n, fv) in fs.iter_mut() {
                    let is_id_field = self.mapping.elements.values().any(|em| {
                        em.attrs
                            .iter()
                            .any(|a| a.field == *n && matches!(a.kind, AttrKind::Id))
                    });
                    if is_id_field {
                        *fv = Value::List(refs.clone());
                    }
                }
            }
            self.instance
                .set_value(id_holder, v)
                .map_err(MapError::Model)?;
        }
        Ok(())
    }
}

enum ChildVal {
    Obj(Oid),
    Text(String),
}

/// Build the value for a shape from its match tree, in lock-step.
fn build_value(shape: &Shape, m: &MatchNode, children: &[&ChildVal]) -> Value {
    match (shape, m) {
        (Shape::Class(_), MatchNode::Child(i)) => match children[*i] {
            ChildVal::Obj(o) => Value::Oid(*o),
            ChildVal::Text(_) => Value::Nil,
        },
        (Shape::Text, node) => {
            // #PCDATA leaf: concatenate the matched text runs.
            let mut idx = Vec::new();
            node.child_indices(&mut idx);
            let mut out = String::new();
            for i in idx {
                if let ChildVal::Text(t) = children[i] {
                    let t = t.trim();
                    if !t.is_empty() {
                        if !out.is_empty() {
                            out.push(' ');
                        }
                        out.push_str(t);
                    }
                }
            }
            Value::str(out)
        }
        (Shape::Tuple(fields), MatchNode::Seq(nodes)) => {
            debug_assert_eq!(fields.len(), nodes.len());
            Value::Tuple(
                fields
                    .iter()
                    .zip(nodes)
                    .map(|((name, s), n)| (*name, build_value(s, n, children)))
                    .collect(),
            )
        }
        (Shape::Union(branches), MatchNode::Choice(k, inner)) => {
            let (marker, s) = &branches[*k];
            Value::Union(*marker, Box::new(build_value(s, inner, children)))
        }
        (Shape::List(inner, _), MatchNode::Repeat(instances)) => Value::List(
            instances
                .iter()
                .map(|n| build_value(inner, n, children))
                .collect(),
        ),
        (Shape::Optional(inner), MatchNode::Repeat(instances)) => match instances.first() {
            Some(n) => build_value(inner, n, children),
            None => Value::Nil,
        },
        (Shape::Optional(inner), node) => build_value(inner, node, children),
        // A single-`Ref` model can be matched by a bare Child node.
        (Shape::Tuple(fields), node) if fields.len() == 1 => Value::Tuple(vec![(
            fields[0].0,
            build_value(&fields[0].1, node, children),
        )]),
        (shape, node) => {
            debug_assert!(false, "shape/match mismatch: {shape:?} vs {node:?}");
            Value::Nil
        }
    }
}

/// Convenience: parse and load a document from SGML text.
pub fn load_sgml_text(
    mapping: &DtdMapping,
    dtd: &docql_sgml::Dtd,
    instance: &mut Instance,
    src: &str,
) -> Result<LoadedDocument, MapError> {
    let parser = docql_sgml::DocParser::new(dtd)?;
    let doc = parser.parse(src)?;
    load_document(mapping, instance, &doc)
}

// expr is kept in ContentKind for future incremental loading.
#[allow(unused)]
fn _expr_is_used(e: &ContentExpr) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema_gen::map_dtd;
    use docql_model::sym;
    use docql_sgml::fixtures::{ARTICLE_DTD, FIG2_DOCUMENT, LETTER_DTD};
    use docql_sgml::Dtd;

    fn load_fig2() -> (DtdMapping, Instance, LoadedDocument) {
        let dtd = Dtd::parse(ARTICLE_DTD).unwrap();
        let mapping = map_dtd(&dtd).unwrap();
        let mut instance = Instance::new(mapping.schema.clone());
        let loaded = load_sgml_text(&mapping, &dtd, &mut instance, FIG2_DOCUMENT).unwrap();
        (mapping, instance, loaded)
    }

    #[test]
    fn fig2_loads_and_typechecks() {
        let (_, instance, _) = load_fig2();
        let errs = instance.check();
        assert!(errs.is_empty(), "{errs:?}");
        assert!(instance.object_count() > 10);
    }

    #[test]
    fn root_of_persistence_holds_the_article() {
        let (mapping, instance, loaded) = load_fig2();
        let root = instance.root(mapping.root).unwrap();
        assert_eq!(root, &Value::list([Value::Oid(loaded.root)]));
    }

    #[test]
    fn article_value_shape() {
        let (_, instance, loaded) = load_fig2();
        let v = instance.value_of(loaded.root).unwrap();
        let authors = v.attr(sym("authors")).unwrap();
        match authors {
            Value::List(items) => assert_eq!(items.len(), 4),
            other => panic!("{other:?}"),
        }
        assert_eq!(v.attr(sym("status")), Some(&Value::str("final")));
        let sections = v.attr(sym("sections")).unwrap();
        match sections {
            Value::List(items) => assert_eq!(items.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sections_take_the_a1_branch() {
        let (_, instance, loaded) = load_fig2();
        let v = instance.value_of(loaded.root).unwrap();
        let Value::List(sections) = v.attr(sym("sections")).unwrap() else {
            panic!()
        };
        let Value::Oid(s0) = sections[0] else {
            panic!()
        };
        let sv = instance.value_of(s0).unwrap();
        match sv {
            Value::Union(m, inner) => {
                assert_eq!(*m, sym("a1"), "title+bodies matches the first branch");
                assert!(inner.attr(sym("title")).is_some());
                assert!(inner.attr(sym("bodies")).is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn text_operator_recorded() {
        let (_, _, loaded) = load_fig2();
        let texts: Vec<&String> = loaded.text_of.values().collect();
        assert!(texts.iter().any(|t| t.contains("SGML preliminaries")));
        // The root object's text is the whole document text.
        let root_text = &loaded.text_of[&loaded.root];
        assert!(root_text.contains("Structured documents"));
        assert!(root_text.contains("Berger-Levrault"));
    }

    #[test]
    fn idref_patched_to_oid_and_backrefs_filled() {
        let (_, instance, loaded) = load_fig2();
        let fig_oid = loaded.ids.get("fig1").copied().expect("figure with ID");
        // Find a paragraph object and check its reflabel.
        let mut found = false;
        for (oid, class, value) in instance.objects() {
            if class == sym("Paragr") {
                assert_eq!(
                    value.attr(sym("reflabel")),
                    Some(&Value::Oid(fig_oid)),
                    "paragraph {oid} reflabel"
                );
                found = true;
            }
        }
        assert!(found);
        // Back-references on the figure.
        let fig_val = instance.value_of(fig_oid).unwrap();
        match fig_val.attr(sym("label")) {
            Some(Value::List(items)) => assert_eq!(items.len(), 2, "two referencing paragraphs"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dangling_idref_is_an_error() {
        let dtd = Dtd::parse(ARTICLE_DTD).unwrap();
        let mapping = map_dtd(&dtd).unwrap();
        let mut instance = Instance::new(mapping.schema.clone());
        let bad = FIG2_DOCUMENT.replace("reflabel=\"fig1\"", "reflabel=\"ghost\"");
        let r = load_sgml_text(&mapping, &dtd, &mut instance, &bad);
        assert!(matches!(r, Err(MapError::Load(msg)) if msg.contains("ghost")));
    }

    #[test]
    fn letters_and_connector_loads_both_orders() {
        let dtd = Dtd::parse(LETTER_DTD).unwrap();
        let mapping = map_dtd(&dtd).unwrap();
        let mut instance = Instance::new(mapping.schema.clone());
        let l1 = load_sgml_text(
            &mapping,
            &dtd,
            &mut instance,
            "<letter><preamble><to>alice<from>bob</preamble><para>hi</para></letter>",
        )
        .unwrap();
        let l2 = load_sgml_text(
            &mapping,
            &dtd,
            &mut instance,
            "<letter><preamble><from>carol<to>dan</preamble><para>yo</para></letter>",
        )
        .unwrap();
        let get_preamble = |root: Oid| -> Value {
            let v = instance.value_of(root).unwrap();
            let Value::Oid(p) = v.attr(sym("preamble")).unwrap() else {
                panic!()
            };
            instance.value_of(*p).unwrap().clone()
        };
        match get_preamble(l1.root) {
            Value::Union(m, inner) => {
                assert_eq!(m, sym("a1"), "declared order to,from");
                assert_eq!(inner.attr_position(sym("to")), Some(0));
            }
            other => panic!("{other:?}"),
        }
        match get_preamble(l2.root) {
            Value::Union(m, inner) => {
                assert_eq!(m, sym("a2"), "permuted order from,to");
                assert_eq!(inner.attr_position(sym("from")), Some(0));
            }
            other => panic!("{other:?}"),
        }
        assert!(instance.check().is_empty());
    }

    #[test]
    fn loading_two_documents_accumulates_in_root() {
        let dtd = Dtd::parse(ARTICLE_DTD).unwrap();
        let mapping = map_dtd(&dtd).unwrap();
        let mut instance = Instance::new(mapping.schema.clone());
        load_sgml_text(&mapping, &dtd, &mut instance, FIG2_DOCUMENT).unwrap();
        load_sgml_text(&mapping, &dtd, &mut instance, FIG2_DOCUMENT).unwrap();
        match instance.root(mapping.root).unwrap() {
            Value::List(items) => assert_eq!(items.len(), 2),
            other => panic!("{other:?}"),
        }
    }
}
