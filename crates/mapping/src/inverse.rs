//! Schema → DTD: the inverse mapping of the paper's footnote 1 ("the
//! inverse mapping from database schema/instances to SGML DTD/documents
//! also opens interesting perspectives for exchanging information between
//! heterogeneous databases, writing reports, etc.").
//!
//! Reconstructs a DTD from the mapping metadata by emitting declaration
//! text and re-parsing it. Note that `&` groups were normalised into
//! choices of permutations during the forward mapping, so the reconstructed
//! DTD is the *expanded* equivalent (same language).

use crate::schema_gen::{AttrKind, ContentKind, DtdMapping, MapError};
use docql_sgml::{ContentModel, Dtd};
use std::fmt::Write as _;

/// Reconstruct a DTD equivalent to the one this mapping was generated from.
pub fn schema_to_dtd(mapping: &DtdMapping) -> Result<Dtd, MapError> {
    let text = schema_to_dtd_text(mapping);
    Dtd::parse(&text).map_err(MapError::Sgml)
}

/// The reconstructed DTD as SGML declaration text.
pub fn schema_to_dtd_text(mapping: &DtdMapping) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "<!DOCTYPE {} [", mapping.doctype);
    // Deterministic order: document element first, then alphabetical.
    let mut tags: Vec<&String> = mapping.elements.keys().collect();
    tags.sort_by_key(|t| (**t != mapping.doctype, (*t).clone()));
    for tag in tags {
        let em = &mapping.elements[tag];
        let content = match &em.content {
            ContentKind::TextContent => ContentModel::Pcdata,
            ContentKind::Media => ContentModel::Empty,
            ContentKind::AnyContent => ContentModel::Any,
            ContentKind::Structured { expr, .. } => ContentModel::Model(expr.clone()),
        };
        // Conservative reconstruction: all tags required (`- -`).
        let _ = writeln!(out, "<!ELEMENT {} - - {}>", em.tag, content);
        if !em.attrs.is_empty() {
            let _ = write!(out, "<!ATTLIST {}", em.tag);
            for a in &em.attrs {
                let ty = match a.kind {
                    AttrKind::Str => "CDATA",
                    AttrKind::Id => "ID",
                    AttrKind::Ref => "IDREF",
                    AttrKind::Refs => "IDREFS",
                    AttrKind::Entity => "ENTITY",
                };
                let _ = write!(out, " {} {ty} #IMPLIED", a.sgml_name);
            }
            let _ = writeln!(out, ">");
        }
    }
    out.push_str("]>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema_gen::map_dtd;
    use docql_corpus::{generate_article, ArticleParams};
    use docql_sgml::{validate, Dtd};

    #[test]
    fn reconstructed_dtd_accepts_the_same_documents() {
        let original = Dtd::parse(docql_sgml::fixtures::ARTICLE_DTD).unwrap();
        let mapping = map_dtd(&original).unwrap();
        let rebuilt = schema_to_dtd(&mapping).unwrap();
        assert_eq!(rebuilt.doctype, "article");
        // Every corpus document valid under the original is valid under the
        // reconstruction. (The reconstruction declares attributes #IMPLIED,
        // so required-attribute errors cannot arise; everything else must
        // hold.)
        for seed in 0..5 {
            let doc = generate_article(&ArticleParams {
                seed,
                sections: 4,
                subsections: 2,
                ..ArticleParams::default()
            });
            assert!(validate(&doc, &original).is_empty());
            let errs = validate(&doc, &rebuilt);
            assert!(errs.is_empty(), "seed {seed}: {errs:?}");
        }
    }

    #[test]
    fn reconstruction_round_trips_through_mapping() {
        // Mapping the reconstructed DTD again yields the same classes.
        let original = Dtd::parse(docql_sgml::fixtures::ARTICLE_DTD).unwrap();
        let m1 = map_dtd(&original).unwrap();
        let rebuilt = schema_to_dtd(&m1).unwrap();
        let m2 = map_dtd(&rebuilt).unwrap();
        assert_eq!(m1.schema.hierarchy().len(), m2.schema.hierarchy().len());
        for def in m1.schema.hierarchy().classes() {
            let other = m2
                .schema
                .hierarchy()
                .get(def.name)
                .unwrap_or_else(|| panic!("class {} lost", def.name));
            assert_eq!(def.ty, other.ty, "σ({}) differs", def.name);
        }
    }

    #[test]
    fn letters_and_connector_reconstructs_as_expanded_choice() {
        let original = Dtd::parse(docql_sgml::fixtures::LETTER_DTD).unwrap();
        let mapping = map_dtd(&original).unwrap();
        let rebuilt = schema_to_dtd(&mapping).unwrap();
        let pre = rebuilt.element("preamble").unwrap();
        let rendered = pre.content.to_string();
        assert!(
            rendered.contains('|'),
            "& normalised to a choice of permutations: {rendered}"
        );
    }
}
