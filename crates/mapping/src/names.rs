//! Naming conventions of the SGML→O₂ mapping, matching Fig. 3:
//! `article` → class `Article`; `author+` → attribute `authors`;
//! `body+` → `bodies`; unnamed groups get system-supplied names `a1, a2, …`.

/// Class name for an element tag: first letter capitalised.
pub fn class_name(tag: &str) -> String {
    let mut cs = tag.chars();
    match cs.next() {
        Some(first) => first.to_uppercase().collect::<String>() + cs.as_str(),
        None => String::new(),
    }
}

/// Attribute name for a repeated (`+`/`*`) element: English-ish plural.
pub fn plural(tag: &str) -> String {
    if let Some(stem) = tag.strip_suffix('y') {
        let penult = stem.chars().last();
        if penult.is_some_and(|c| !"aeiou".contains(c)) {
            return format!("{stem}ies");
        }
    }
    if tag.ends_with('s')
        || tag.ends_with('x')
        || tag.ends_with('z')
        || tag.ends_with("ch")
        || tag.ends_with("sh")
    {
        return format!("{tag}es");
    }
    format!("{tag}s")
}

/// System-supplied marker names for unnamed union alternatives: `a1, a2, …`.
pub fn branch_name(i: usize) -> String {
    format!("a{}", i + 1)
}

/// System-supplied field names for unnamed nested groups: `g1, g2, …`.
pub fn group_name(i: usize) -> String {
    format!("g{}", i + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_names_match_fig3() {
        assert_eq!(class_name("article"), "Article");
        assert_eq!(class_name("subsectn"), "Subsectn");
        assert_eq!(class_name("acknowl"), "Acknowl");
        assert_eq!(class_name("picture"), "Picture");
    }

    #[test]
    fn plurals_match_fig3() {
        assert_eq!(plural("author"), "authors");
        assert_eq!(plural("section"), "sections");
        assert_eq!(plural("body"), "bodies");
        assert_eq!(plural("subsectn"), "subsectns");
    }

    #[test]
    fn plural_special_cases() {
        assert_eq!(plural("class"), "classes");
        assert_eq!(plural("box"), "boxes");
        assert_eq!(plural("day"), "days", "vowel before y");
        assert_eq!(plural("branch"), "branches");
    }

    #[test]
    fn system_names() {
        assert_eq!(branch_name(0), "a1");
        assert_eq!(branch_name(1), "a2");
        assert_eq!(group_name(0), "g1");
    }
}
