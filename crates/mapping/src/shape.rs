//! The shared *shape* of an element's content: the single recursion both the
//! type generator (§3, Fig. 3) and the instance loader walk, guaranteeing
//! that generated types and built values stay in lock-step.
//!
//! The `&` connector is expanded into a choice of permutations *before*
//! shaping, so an `(to & from)` preamble becomes the marked union of the two
//! attribute orders — exactly the paper's formal treatment of the letters
//! example in §5.3:
//! `[(a₁:[from,to,…] + a₂:[to,from,…])]`.

use crate::names::{branch_name, class_name, group_name, plural};
use docql_model::{sym, Sym, Type};
use docql_sgml::ContentExpr;

/// The shape of one field's content.
#[derive(Debug, Clone, PartialEq)]
pub enum Shape {
    /// A reference to an element → object of the element's class.
    Class(String),
    /// `#PCDATA` → string.
    Text,
    /// An ordered group `(…, …)` → tuple.
    Tuple(Vec<(Sym, Shape)>),
    /// A choice `(… | …)` → marked union.
    Union(Vec<(Sym, Shape)>),
    /// `+` / `*` → list. `min_one` records `+` (for constraints).
    List(Box<Shape>, bool),
    /// `?` → the inner shape, nilable.
    Optional(Box<Shape>),
}

impl Shape {
    /// Shape of a (already `&`-expanded) content expression appearing as the
    /// body of an element declaration.
    pub fn of_expr(expr: &ContentExpr) -> Shape {
        match expr {
            ContentExpr::Pcdata => Shape::Text,
            ContentExpr::Ref(n) => Shape::Class(n.clone()),
            ContentExpr::Seq(items) => Shape::Tuple(seq_fields(items)),
            ContentExpr::Choice(alts) => Shape::Union(choice_branches(alts)),
            ContentExpr::And(_) => unreachable!("& groups are expanded before shaping"),
            ContentExpr::Occur(inner, occ) => {
                let inner_shape = Shape::of_expr(inner);
                match occ {
                    docql_sgml::Occurrence::Opt => Shape::Optional(Box::new(inner_shape)),
                    docql_sgml::Occurrence::Plus => Shape::List(Box::new(inner_shape), true),
                    docql_sgml::Occurrence::Star => Shape::List(Box::new(inner_shape), false),
                }
            }
        }
    }

    /// The O₂ type this shape maps to.
    pub fn to_type(&self) -> Type {
        match self {
            Shape::Class(tag) => Type::class(class_name(tag).as_str()),
            Shape::Text => Type::String,
            Shape::Tuple(fields) => Type::Tuple(
                fields
                    .iter()
                    .map(|(n, s)| docql_model::Field::new(*n, s.to_type()))
                    .collect(),
            ),
            Shape::Union(branches) => Type::Union(
                branches
                    .iter()
                    .map(|(n, s)| docql_model::Field::new(*n, s.to_type()))
                    .collect(),
            ),
            Shape::List(inner, _) => Type::list(inner.to_type()),
            Shape::Optional(inner) => inner.to_type(),
        }
    }
}

/// Field naming for the members of an ordered group (Fig. 3):
/// `title` → `title: Title`; `author+` → `authors: list(Author)`;
/// unnamed nested groups → `g1, g2, …`.
fn seq_fields(items: &[ContentExpr]) -> Vec<(Sym, Shape)> {
    let mut out = Vec::new();
    let mut group_counter = 0usize;
    for item in items {
        let (name, shape) = field_of(item, &mut group_counter);
        out.push((name, shape));
    }
    // Disambiguate repeated names (e.g. (a, b, a)) with suffixes.
    let mut seen: Vec<Sym> = Vec::new();
    for i in 0..out.len() {
        if seen.contains(&out[i].0) {
            let mut k = 2;
            loop {
                let candidate = sym(&format!("{}_{k}", out[i].0));
                if !seen.contains(&candidate) && !out.iter().any(|(n, _)| *n == candidate) {
                    out[i].0 = candidate;
                    break;
                }
                k += 1;
            }
        }
        seen.push(out[i].0);
    }
    out
}

fn field_of(item: &ContentExpr, group_counter: &mut usize) -> (Sym, Shape) {
    match item {
        ContentExpr::Ref(n) => (sym(n), Shape::Class(n.clone())),
        ContentExpr::Pcdata => (sym("text"), Shape::Text),
        ContentExpr::Occur(inner, occ) => {
            let (base_name, inner_shape) = field_of(inner, group_counter);
            match occ {
                docql_sgml::Occurrence::Opt => (base_name, Shape::Optional(Box::new(inner_shape))),
                docql_sgml::Occurrence::Plus => (
                    sym(&plural(base_name.as_str())),
                    Shape::List(Box::new(inner_shape), true),
                ),
                docql_sgml::Occurrence::Star => (
                    sym(&plural(base_name.as_str())),
                    Shape::List(Box::new(inner_shape), false),
                ),
            }
        }
        ContentExpr::Seq(items) => {
            let name = sym(&group_name(*group_counter));
            *group_counter += 1;
            (name, Shape::Tuple(seq_fields(items)))
        }
        ContentExpr::Choice(alts) => {
            let name = sym(&group_name(*group_counter));
            *group_counter += 1;
            (name, Shape::Union(choice_branches(alts)))
        }
        ContentExpr::And(_) => unreachable!("& groups are expanded before shaping"),
    }
}

/// Branch naming for choices: a plain element keeps its name
/// (`union(figure: Figure, paragr: Paragr)`, Fig. 3 class Body); unnamed
/// groups get system-supplied `a1, a2, …` (Fig. 3 class Section).
fn choice_branches(alts: &[ContentExpr]) -> Vec<(Sym, Shape)> {
    let any_group = alts
        .iter()
        .any(|a| !matches!(a, ContentExpr::Ref(_) | ContentExpr::Pcdata));
    alts.iter()
        .enumerate()
        .map(|(i, alt)| match alt {
            ContentExpr::Ref(n) if !any_group => (sym(n), Shape::Class(n.clone())),
            ContentExpr::Pcdata if !any_group => (sym("text"), Shape::Text),
            other => (sym(&branch_name(i)), Shape::of_expr(other)),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use docql_sgml::Dtd;

    fn expr(model: &str) -> ContentExpr {
        let dtd = Dtd::parse(&format!("<!ELEMENT x - - {model}>")).unwrap();
        match &dtd.element("x").unwrap().content {
            docql_sgml::ContentModel::Model(e) => docql_sgml::content::expand_and(e).unwrap(),
            docql_sgml::ContentModel::Pcdata => ContentExpr::Pcdata,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn article_shape_matches_fig3() {
        let s = Shape::of_expr(&expr(
            "(title, author+, affil, abstract, section+, acknowl)",
        ));
        let t = s.to_type();
        assert_eq!(
            t.to_string(),
            "tuple(title: Title, authors: list(Author), affil: Affil, \
             abstract: Abstract, sections: list(Section), acknowl: Acknowl)"
        );
    }

    #[test]
    fn section_shape_matches_fig3() {
        let s = Shape::of_expr(&expr("((title, body+) | (title, body*, subsectn+))"));
        let t = s.to_type();
        assert_eq!(
            t.to_string(),
            "union(a1: tuple(title: Title, bodies: list(Body)) + \
             a2: tuple(title: Title, bodies: list(Body), subsectns: list(Subsectn)))"
        );
    }

    #[test]
    fn body_shape_keeps_element_branch_names() {
        let s = Shape::of_expr(&expr("(figure | paragr)"));
        assert_eq!(
            s.to_type().to_string(),
            "union(figure: Figure + paragr: Paragr)"
        );
    }

    #[test]
    fn figure_shape_with_optional() {
        let s = Shape::of_expr(&expr("(picture, caption?)"));
        assert_eq!(
            s.to_type().to_string(),
            "tuple(picture: Picture, caption: Caption)"
        );
    }

    #[test]
    fn and_group_becomes_union_of_permutations() {
        // (to & from) → union(a1: tuple(to, from) + a2: tuple(from, to)) —
        // the §5.3 letters type.
        let s = Shape::of_expr(&expr("(to & from)"));
        assert_eq!(
            s.to_type().to_string(),
            "union(a1: tuple(to: To, from: From) + a2: tuple(from: From, to: To))"
        );
    }

    #[test]
    fn nested_group_gets_system_name() {
        let s = Shape::of_expr(&expr("(title, (figure, caption)+)"));
        assert_eq!(
            s.to_type().to_string(),
            "tuple(title: Title, g1s: list(tuple(figure: Figure, caption: Caption)))"
        );
    }

    #[test]
    fn duplicate_field_names_disambiguated() {
        let s = Shape::of_expr(&expr("(title, body, title)"));
        assert_eq!(
            s.to_type().to_string(),
            "tuple(title: Title, body: Body, title_2: Title)"
        );
    }

    #[test]
    fn mixed_content_choice() {
        let s = Shape::of_expr(&expr("((#PCDATA | figure)*)"));
        assert_eq!(
            s.to_type().to_string(),
            "list(union(text: string + figure: Figure))"
        );
    }
}
