//! # docql-mapping — the SGML ↔ O₂ mapping (§3)
//!
//! The paper's Fig. 1 → Fig. 3 transformation and its instance-level
//! counterpart:
//!
//! * [`schema_gen`] — DTD → schema: each element becomes a class; choice
//!   connectors become marked unions, occurrence indicators become lists /
//!   nilable attributes / constraints, SGML attributes become private
//!   trailing attributes, `ID`/`IDREF` become object references.
//! * [`load`] — document instance → objects and values (with the `text`
//!   inverse-mapping side table and ID/IDREF patching).
//! * [`export`] — objects → SGML document (the inverse mapping of
//!   footnote 1 / the update path of §6).
//! * [`shape`] / [`names`] — the shared content-shape recursion and the
//!   Fig. 3 naming conventions.

pub mod export;
pub mod inverse;
pub mod load;
pub mod names;
pub mod schema_gen;
pub mod shape;

pub use export::export_document;
pub use inverse::{schema_to_dtd, schema_to_dtd_text};
pub use load::{load_document, load_sgml_text, LoadedDocument};
pub use names::{class_name, plural};
pub use schema_gen::{
    map_dtd, map_dtd_with, AttrKind, AttrMapping, ContentKind, DtdMapping, ElementMapping, MapError,
};
pub use shape::Shape;
