//! End-to-end coverage for the less-travelled DTD constructs: `ANY`
//! declared content, `IDREFS`, three-operand `&` groups, nested groups with
//! occurrence indicators, and mixed content.

use docql_mapping::{load_sgml_text, map_dtd, schema_to_dtd};
use docql_model::{sym, Instance, Value};
use docql_sgml::{validate, Dtd};

fn load(
    dtd_text: &str,
    doc_text: &str,
) -> (
    docql_mapping::DtdMapping,
    Instance,
    docql_mapping::LoadedDocument,
) {
    let dtd = Dtd::parse(dtd_text).unwrap();
    let mapping = map_dtd(&dtd).unwrap();
    let mut instance = Instance::new(mapping.schema.clone());
    let loaded = load_sgml_text(&mapping, &dtd, &mut instance, doc_text).unwrap();
    (mapping, instance, loaded)
}

#[test]
fn any_content_loads_as_mixed_list() {
    let dtd = "<!DOCTYPE note [ <!ELEMENT note - - ANY> <!ELEMENT b - - (#PCDATA)> ]>";
    let (_, instance, loaded) = load(dtd, "<note>plain <b>bold</b> tail</note>");
    let v = instance.value_of(loaded.root).unwrap();
    let Some(Value::List(items)) = v.attr(sym("contents")) else {
        panic!("{v}");
    };
    assert_eq!(items.len(), 3);
    assert!(matches!(&items[0], Value::Union(m, _) if m.as_str() == "text"));
    assert!(
        matches!(&items[1], Value::Union(m, p) if m.as_str() == "object" && matches!(p.as_ref(), Value::Oid(_)))
    );
    assert!(instance.check().is_empty());
    assert_eq!(loaded.text_of[&loaded.root], "plain bold tail");
}

#[test]
fn idrefs_attribute_resolves_to_object_list() {
    let dtd = "<!DOCTYPE doc [ \
        <!ELEMENT doc - - (chunk+, xref)> \
        <!ELEMENT chunk - O (#PCDATA)> \
        <!ATTLIST chunk id ID #REQUIRED> \
        <!ELEMENT xref - O EMPTY> \
        <!ATTLIST xref targets IDREFS #REQUIRED> ]>";
    let (_, instance, loaded) = load(
        dtd,
        "<doc><chunk id=\"c1\">one</chunk><chunk id=\"c2\">two</chunk>\
         <xref targets=\"c1 c2\"></xref></doc>",
    );
    let c1 = loaded.ids["c1"];
    let c2 = loaded.ids["c2"];
    // Find the xref object.
    let xref = instance
        .objects()
        .find(|(_, class, _)| *class == sym("Xref"))
        .map(|(oid, _, _)| oid)
        .unwrap();
    let v = instance.value_of(xref).unwrap();
    assert_eq!(
        v.attr(sym("targets")),
        Some(&Value::list([Value::Oid(c1), Value::Oid(c2)]))
    );
    // Back-references on both chunks.
    for c in [c1, c2] {
        let cv = instance.value_of(c).unwrap();
        assert_eq!(cv.attr(sym("id")), Some(&Value::list([Value::Oid(xref)])));
    }
}

#[test]
fn three_operand_and_group_accepts_all_permutations() {
    let dtd = "<!DOCTYPE trio [ \
        <!ELEMENT trio - - (a & b & c)> \
        <!ELEMENT a - O (#PCDATA)> \
        <!ELEMENT b - O (#PCDATA)> \
        <!ELEMENT c - O (#PCDATA)> ]>";
    let parsed = Dtd::parse(dtd).unwrap();
    let mapping = map_dtd(&parsed).unwrap();
    // 3! = 6 permutation branches in the union.
    let trio = mapping.schema.hierarchy().get(sym("Trio")).unwrap();
    match &trio.ty {
        docql_model::Type::Union(alts) => assert_eq!(alts.len(), 6),
        other => panic!("{other}"),
    }
    for order in ["abc", "acb", "bac", "bca", "cab", "cba"] {
        let body: String = order
            .chars()
            .map(|ch| format!("<{ch}>{ch}!</{ch}>"))
            .collect();
        let mut instance = Instance::new(mapping.schema.clone());
        let r = load_sgml_text(
            &mapping,
            &parsed,
            &mut instance,
            &format!("<trio>{body}</trio>"),
        );
        assert!(r.is_ok(), "order {order}: {:?}", r.err());
        assert!(instance.check().is_empty(), "order {order}");
    }
}

#[test]
fn nested_group_with_plus_loads_grouped_values() {
    let dtd = "<!DOCTYPE pairs [ \
        <!ELEMENT pairs - - ((k, v)+)> \
        <!ELEMENT k - O (#PCDATA)> \
        <!ELEMENT v - O (#PCDATA)> ]>";
    let (_, instance, loaded) = load(dtd, "<pairs><k>a</k><v>1</v><k>b</k><v>2</v></pairs>");
    let val = instance.value_of(loaded.root).unwrap();
    // A top-level `(group)+` model wraps as `content: list(tuple(k, v))`.
    let Some(Value::List(items)) = val.attr(sym("content")) else {
        panic!("{val}");
    };
    assert_eq!(items.len(), 2);
    for item in items {
        let Value::Tuple(fs) = item else {
            panic!("{item}")
        };
        assert_eq!(fs.len(), 2);
    }
    assert!(instance.check().is_empty());
}

#[test]
fn mixed_content_star_loads_union_list() {
    let dtd = "<!DOCTYPE para [ \
        <!ELEMENT para - - ((#PCDATA | emph)*)> \
        <!ELEMENT emph - - (#PCDATA)> ]>";
    let (_, instance, loaded) = load(dtd, "<para>before <emph>shiny</emph> after</para>");
    let val = instance.value_of(loaded.root).unwrap();
    let Some(Value::List(items)) = val.attr(sym("content")) else {
        panic!("{val}");
    };
    assert_eq!(items.len(), 3);
    assert!(matches!(&items[0], Value::Union(m, _) if m.as_str() == "text"));
    assert!(matches!(&items[1], Value::Union(m, _) if m.as_str() == "emph"));
    assert_eq!(loaded.text_of[&loaded.root], "before shiny after");
}

#[test]
fn inverse_mapping_round_trips_edge_models() {
    for dtd_text in [
        "<!DOCTYPE trio [ <!ELEMENT trio - - (a & b & c)> <!ELEMENT a - O (#PCDATA)> <!ELEMENT b - O (#PCDATA)> <!ELEMENT c - O (#PCDATA)> ]>",
        "<!DOCTYPE pairs [ <!ELEMENT pairs - - ((k, v)+)> <!ELEMENT k - O (#PCDATA)> <!ELEMENT v - O (#PCDATA)> ]>",
    ] {
        let dtd = Dtd::parse(dtd_text).unwrap();
        let m1 = map_dtd(&dtd).unwrap();
        let rebuilt = schema_to_dtd(&m1).unwrap();
        let m2 = map_dtd(&rebuilt).unwrap();
        for def in m1.schema.hierarchy().classes() {
            assert_eq!(
                Some(&def.ty),
                m2.schema.hierarchy().get(def.name).map(|d| &d.ty),
                "σ({}) changed across the inverse mapping",
                def.name
            );
        }
    }
}

#[test]
fn exported_any_content_round_trips() {
    let dtd_text = "<!DOCTYPE note [ <!ELEMENT note - - ANY> <!ELEMENT b - - (#PCDATA)> ]>";
    let (mapping, instance, loaded) = load(dtd_text, "<note>plain <b>bold</b> tail</note>");
    let doc = docql_mapping::export_document(&mapping, &instance, loaded.root).unwrap();
    let dtd = Dtd::parse(dtd_text).unwrap();
    assert!(validate(&doc, &dtd).is_empty());
    assert_eq!(doc.root.text_content(), "plain bold tail");
}
