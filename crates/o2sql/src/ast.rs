//! Abstract syntax of the extended O₂SQL language (§4).

use docql_model::Value;

/// A top-level query.
#[derive(Debug, Clone, PartialEq)]
pub enum TopQuery {
    /// `select … from … where …`
    Select(SelectQuery),
    /// A bare path-pattern query, e.g. `my_article PATH_p` (returns the
    /// tuple of pattern variables; a single variable yields a plain set).
    PathQuery { base: String, steps: Vec<PatStep> },
    /// Set operation between two queries (Q4's difference).
    SetOp(Box<TopQuery>, SetOpKind, Box<TopQuery>),
}

/// Set operations on query results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOpKind {
    /// `-` (difference; Q4).
    Difference,
    /// `union`
    Union,
    /// `intersect`
    Intersect,
}

/// A select-from-where query.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    /// The select expression.
    pub select: Expr,
    /// The iteration clauses.
    pub from: Vec<FromItem>,
    /// Optional filter.
    pub where_: Option<Expr>,
}

/// One from-clause item.
#[derive(Debug, Clone, PartialEq)]
pub enum FromItem {
    /// `v in expr`
    In(String, Expr),
    /// `base STEPS` — a path expression with variables
    /// (`my_article PATH_p.title(t)`).
    Pattern { base: String, steps: Vec<PatStep> },
}

/// One step of a surface path pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum PatStep {
    /// `PATH_x`
    PathVar(String),
    /// `..` — anonymous path variable.
    AnonPath,
    /// `.name`
    Attr(String),
    /// `.ATT_x`
    AttrVar(String),
    /// `[3]`
    Index(usize),
    /// `[i]` — index variable.
    IndexVar(String),
    /// `(x)` — bind the value reached here.
    Bind(String),
    /// `{x}` — set-element binding.
    SetBind(String),
    /// `->`
    Deref,
}

/// Expressions (value- and boolean-valued; the translator enforces use).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal.
    Lit(Value),
    /// Identifier: a from-variable, pattern variable, or root of persistence.
    Ident(String),
    /// Postfix navigation `e.a[i]…`.
    Path(Box<Expr>, Vec<Sel>),
    /// Function call `f(e, …)`.
    Call(String, Vec<Expr>),
    /// `tuple(a: e, …)`
    TupleCons(Vec<(String, Expr)>),
    /// `list(e, …)`
    ListCons(Vec<Expr>),
    /// `set(e, …)`
    SetCons(Vec<Expr>),
    /// Comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Conjunction.
    And(Vec<Expr>),
    /// Disjunction.
    Or(Vec<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// `e contains ( … )` — boolean pattern combination (§4.1).
    Contains(Box<Expr>, CBool),
    /// `e in e'` — membership test.
    InTest(Box<Expr>, Box<Expr>),
    /// `exists(v in e : cond)` — the O₂SQL exists iterator.
    Exists(String, Box<Expr>, Box<Expr>),
}

/// Postfix selector.
#[derive(Debug, Clone, PartialEq)]
pub enum Sel {
    /// `.name`
    Attr(String),
    /// `[3]`
    Index(usize),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Boolean combination of patterns, the argument of `contains`.
#[derive(Debug, Clone, PartialEq)]
pub enum CBool {
    /// A single pattern.
    Pat(String),
    /// All must occur.
    And(Vec<CBool>),
    /// At least one must occur.
    Or(Vec<CBool>),
    /// Must not occur.
    Not(Box<CBool>),
}
