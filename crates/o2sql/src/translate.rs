//! Translation of O₂SQL queries into the calculus (§5.2: "any O₂SQL query …
//! can be translated into a calculus expression").
//!
//! A `select e from v₁ in t₁, …, pattern-items… where φ` becomes
//! `{H | t₁-membership ∧ … ∧ path-predicates ∧ φ' ∧ H = e'}` — from-items
//! become `∈` atoms or path predicates, the where-clause becomes a formula
//! (with `contains` combinations expanded into boolean structure over
//! `contains` atoms), and the select expression is materialised into the
//! single head variable.

use crate::ast::*;
use crate::O2sqlError;
use docql_calculus::{
    Atom, AttrTerm, DataTerm, Formula, IntTerm, PathAtom, PathTerm, Query, QueryBuilder, Sort, Var,
};
use docql_model::{sym, Schema};
use std::collections::BTreeMap;

/// Result of translating a top-level query.
pub struct Translated {
    /// The calculus query (for set-ops: the left side; see `set_op`).
    pub query: Query,
    /// Column labels for the result (one per head variable).
    pub columns: Vec<String>,
    /// Set operation against a second query, if any.
    pub set_op: Option<(SetOpKind, Box<Translated>)>,
}

/// Translate a parsed query against a schema (used to resolve identifiers
/// that name roots of persistence).
pub fn translate(q: &TopQuery, schema: &Schema) -> Result<Translated, O2sqlError> {
    match q {
        TopQuery::Select(s) => translate_select(s, schema),
        TopQuery::PathQuery { base, steps } => translate_path_query(base, steps, schema),
        TopQuery::SetOp(l, op, r) => {
            let left = translate(l, schema)?;
            let right = translate(r, schema)?;
            if left.columns.len() != right.columns.len() {
                return Err(O2sqlError::Type(format!(
                    "set operation arity mismatch: {} vs {} columns",
                    left.columns.len(),
                    right.columns.len()
                )));
            }
            Ok(Translated {
                query: left.query,
                columns: left.columns,
                set_op: Some((*op, Box::new(right))),
            })
        }
    }
}

struct Cx<'s> {
    schema: &'s Schema,
    b: QueryBuilder,
    scope: BTreeMap<String, Var>,
}

impl Cx<'_> {
    fn declare(&mut self, name: &str) -> Var {
        let sort = if name.starts_with("PATH_") {
            Sort::Path
        } else if name.starts_with("ATT_") {
            Sort::Attr
        } else {
            Sort::Data
        };
        let v = self.b.var(name, sort);
        self.scope.insert(name.to_string(), v);
        v
    }

    fn resolve(&self, name: &str) -> Result<DataTerm, O2sqlError> {
        if let Some(&v) = self.scope.get(name) {
            return Ok(DataTerm::Var(v));
        }
        if self.schema.has_root(sym(name)) {
            return Ok(DataTerm::Name(sym(name)));
        }
        Err(O2sqlError::UnknownIdent(name.to_string()))
    }
}

fn translate_select(s: &SelectQuery, schema: &Schema) -> Result<Translated, O2sqlError> {
    let mut cx = Cx {
        schema,
        b: QueryBuilder::new(),
        scope: BTreeMap::new(),
    };
    let mut conjuncts = Vec::new();
    for item in &s.from {
        match item {
            FromItem::In(var, source) => {
                // Resolve the source *before* declaring the variable so that
                // `x in x.children` style self-reference errors out.
                let src_term = expr_term(source, &mut cx)?;
                let v = cx.declare(var);
                conjuncts.push(Formula::Atom(Atom::In(DataTerm::Var(v), src_term)));
            }
            FromItem::Pattern { base, steps } => {
                let base_term = cx.resolve(base)?;
                let pterm = pattern_to_path_term(steps, &mut cx)?;
                conjuncts.push(Formula::Atom(Atom::PathPred(base_term, pterm)));
            }
        }
    }
    if let Some(w) = &s.where_ {
        conjuncts.push(cond_formula(w, &mut cx)?);
    }
    let select_term = expr_term(&s.select, &mut cx)?;
    let h = cx.b.data("result");
    conjuncts.push(Formula::Atom(Atom::Eq(DataTerm::Var(h), select_term)));
    let query = cx.b.query(vec![h], Formula::And(conjuncts));
    Ok(Translated {
        query,
        columns: vec!["result".to_string()],
        set_op: None,
    })
}

fn translate_path_query(
    base: &str,
    steps: &[PatStep],
    schema: &Schema,
) -> Result<Translated, O2sqlError> {
    let mut cx = Cx {
        schema,
        b: QueryBuilder::new(),
        scope: BTreeMap::new(),
    };
    let base_term = cx.resolve(base)?;
    let pterm = pattern_to_path_term(steps, &mut cx)?;
    // Head: the named pattern variables, in declaration order.
    let mut head: Vec<Var> = Vec::new();
    let mut columns = Vec::new();
    for (name, &v) in &cx.scope {
        if !name.starts_with('\u{0}') {
            head.push(v);
            columns.push(name.clone());
        }
    }
    head.sort();
    columns = head
        .iter()
        .map(|v| {
            cx.scope
                .iter()
                .find(|(_, &sv)| sv == *v)
                .map(|(n, _)| n.clone())
                .unwrap_or_default()
        })
        .collect();
    if head.is_empty() {
        return Err(O2sqlError::Type(
            "a bare path query must bind at least one variable".to_string(),
        ));
    }
    let query =
        cx.b.query(head, Formula::Atom(Atom::PathPred(base_term, pterm)));
    Ok(Translated {
        query,
        columns,
        set_op: None,
    })
}

fn pattern_to_path_term(steps: &[PatStep], cx: &mut Cx<'_>) -> Result<PathTerm, O2sqlError> {
    let mut atoms = Vec::new();
    let mut anon = 0usize;
    for step in steps {
        match step {
            PatStep::PathVar(name) => {
                let v = match cx.scope.get(name) {
                    Some(&v) => v,
                    None => cx.declare(name),
                };
                atoms.push(PathAtom::PathVar(v));
            }
            PatStep::AnonPath => {
                // Anonymous `..` path variables are fresh and hidden.
                let v = cx.b.path(&format!("..{anon}"));
                anon += 1;
                atoms.push(PathAtom::PathVar(v));
            }
            PatStep::Attr(name) => {
                atoms.push(PathAtom::Attr(AttrTerm::Name(sym(name))));
            }
            PatStep::AttrVar(name) => {
                let v = match cx.scope.get(name) {
                    Some(&v) => v,
                    None => cx.declare(name),
                };
                atoms.push(PathAtom::Attr(AttrTerm::Var(v)));
            }
            PatStep::Index(i) => atoms.push(PathAtom::Index(IntTerm::Const(*i))),
            PatStep::IndexVar(name) => {
                let v = match cx.scope.get(name) {
                    Some(&v) => v,
                    None => cx.declare(name),
                };
                atoms.push(PathAtom::Index(IntTerm::Var(v)));
            }
            PatStep::Bind(name) => {
                let v = match cx.scope.get(name) {
                    Some(&v) => v,
                    None => cx.declare(name),
                };
                atoms.push(PathAtom::Bind(v));
            }
            PatStep::SetBind(name) => {
                let v = match cx.scope.get(name) {
                    Some(&v) => v,
                    None => cx.declare(name),
                };
                atoms.push(PathAtom::SetBind(v));
            }
            PatStep::Deref => atoms.push(PathAtom::Deref),
        }
    }
    Ok(PathTerm(atoms))
}

/// Translate an expression in *value* position.
fn expr_term(e: &Expr, cx: &mut Cx<'_>) -> Result<DataTerm, O2sqlError> {
    match e {
        Expr::Lit(v) => Ok(DataTerm::Const(v.clone())),
        Expr::Ident(name) => cx.resolve(name),
        Expr::Path(base, sels) => {
            let base_term = expr_term(base, cx)?;
            let atoms = sels
                .iter()
                .map(|s| match s {
                    Sel::Attr(a) => PathAtom::Attr(AttrTerm::Name(sym(a))),
                    Sel::Index(i) => PathAtom::Index(IntTerm::Const(*i)),
                })
                .collect();
            Ok(DataTerm::PathApp(Box::new(base_term), PathTerm(atoms)))
        }
        Expr::Call(name, args) => {
            let args = args
                .iter()
                .map(|a| expr_term(a, cx))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(DataTerm::Apply(sym(name), args))
        }
        Expr::TupleCons(fields) => Ok(DataTerm::Tuple(
            fields
                .iter()
                .map(|(n, e)| Ok((AttrTerm::Name(sym(n)), expr_term(e, cx)?)))
                .collect::<Result<Vec<_>, O2sqlError>>()?,
        )),
        Expr::ListCons(items) => Ok(DataTerm::List(
            items
                .iter()
                .map(|e| expr_term(e, cx))
                .collect::<Result<Vec<_>, _>>()?,
        )),
        Expr::SetCons(items) => Ok(DataTerm::Set(
            items
                .iter()
                .map(|e| expr_term(e, cx))
                .collect::<Result<Vec<_>, _>>()?,
        )),
        Expr::Cmp(..)
        | Expr::And(_)
        | Expr::Or(_)
        | Expr::Not(_)
        | Expr::Contains(..)
        | Expr::InTest(..)
        | Expr::Exists(..) => Err(O2sqlError::Type(format!(
            "boolean expression used in value position: {e:?}"
        ))),
    }
}

/// Translate an expression in *boolean* (where-clause) position.
fn cond_formula(e: &Expr, cx: &mut Cx<'_>) -> Result<Formula, O2sqlError> {
    match e {
        Expr::And(items) => Ok(Formula::And(
            items
                .iter()
                .map(|i| cond_formula(i, cx))
                .collect::<Result<_, _>>()?,
        )),
        Expr::Or(items) => Ok(Formula::Or(
            items
                .iter()
                .map(|i| cond_formula(i, cx))
                .collect::<Result<_, _>>()?,
        )),
        Expr::Not(inner) => Ok(Formula::Not(Box::new(cond_formula(inner, cx)?))),
        Expr::Cmp(op, l, r) => {
            let lt = expr_term(l, cx)?;
            let rt = expr_term(r, cx)?;
            Ok(match op {
                CmpOp::Eq => Formula::Atom(Atom::Eq(lt, rt)),
                CmpOp::Ne => Formula::Atom(Atom::Pred(sym("!="), vec![lt, rt])),
                CmpOp::Lt => Formula::Atom(Atom::Pred(sym("<"), vec![lt, rt])),
                CmpOp::Le => Formula::Atom(Atom::Pred(sym("<="), vec![lt, rt])),
                CmpOp::Gt => Formula::Atom(Atom::Pred(sym(">"), vec![lt, rt])),
                CmpOp::Ge => Formula::Atom(Atom::Pred(sym(">="), vec![lt, rt])),
            })
        }
        Expr::Contains(target, cbool) => {
            let t = expr_term(target, cx)?;
            Ok(contains_formula(&t, cbool))
        }
        Expr::InTest(x, coll) => Ok(Formula::Atom(Atom::In(
            expr_term(x, cx)?,
            expr_term(coll, cx)?,
        ))),
        Expr::Call(name, args) => {
            // Predicates used as calls (e.g. near(...)).
            let args = args
                .iter()
                .map(|a| expr_term(a, cx))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Formula::Atom(Atom::Pred(sym(name), args)))
        }
        Expr::Exists(var, source, cond) => {
            // exists(v in e : φ) ≡ ∃v(v ∈ e ∧ φ). The bound variable
            // shadows any outer binding of the same name during translation
            // of the condition and is scoped back out afterwards.
            let src_term = expr_term(source, cx)?;
            let shadowed = cx.scope.get(var).copied();
            let v = cx.declare(var);
            let cond_f = cond_formula(cond, cx)?;
            match shadowed {
                Some(prev) => {
                    cx.scope.insert(var.to_string(), prev);
                }
                None => {
                    cx.scope.remove(var);
                }
            }
            Ok(Formula::Exists(
                vec![v],
                Box::new(Formula::And(vec![
                    Formula::Atom(Atom::In(DataTerm::Var(v), src_term)),
                    cond_f,
                ])),
            ))
        }
        other => Err(O2sqlError::Type(format!(
            "expression is not a condition: {other:?}"
        ))),
    }
}

/// Expand a boolean pattern combination into formula structure over
/// `contains` atoms (Q1's `contains ("SGML" and "OODBMS")`).
fn contains_formula(target: &DataTerm, c: &CBool) -> Formula {
    match c {
        CBool::Pat(p) => Formula::Atom(Atom::Pred(
            sym("contains"),
            vec![
                target.clone(),
                DataTerm::Const(docql_model::Value::str(p.clone())),
            ],
        )),
        CBool::And(items) => {
            Formula::And(items.iter().map(|i| contains_formula(target, i)).collect())
        }
        CBool::Or(items) => {
            Formula::Or(items.iter().map(|i| contains_formula(target, i)).collect())
        }
        CBool::Not(inner) => Formula::Not(Box::new(contains_formula(target, inner))),
    }
}
