//! Recursive-descent parser for the extended O₂SQL language.

use crate::ast::*;
use crate::token::{lex, Tok, Token};
use crate::O2sqlError;
use docql_model::Value;

/// Parse a top-level query.
pub fn parse(src: &str) -> Result<TopQuery, O2sqlError> {
    let tokens = lex(src).map_err(|e| O2sqlError::Parse {
        at: e.at,
        msg: e.msg,
    })?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.top_query()?;
    if p.pos < p.tokens.len() {
        return Err(p.err(format!(
            "unexpected trailing input `{}`",
            p.tokens[p.pos].kind
        )));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// Keywords that may not be mistaken for bare attribute names in the `..`
/// pattern sugar.
fn is_reserved(s: &str) -> bool {
    matches!(
        s.to_ascii_lowercase().as_str(),
        "select"
            | "from"
            | "where"
            | "in"
            | "and"
            | "or"
            | "not"
            | "contains"
            | "union"
            | "intersect"
    )
}

impl Parser {
    fn err(&self, msg: String) -> O2sqlError {
        let at = self
            .tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| t.at)
            .unwrap_or(0);
        O2sqlError::Parse { at, msg }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.tokens.get(self.pos + 1).map(|t| &t.kind)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), O2sqlError> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{tok}`, found {}",
                self.peek()
                    .map(|t| format!("`{t}`"))
                    .unwrap_or_else(|| "end of input".to_string())
            )))
        }
    }

    fn keyword(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self) -> Result<String, O2sqlError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!(
                "expected an identifier, found {}",
                other
                    .map(|t| format!("`{t}`"))
                    .unwrap_or_else(|| "end of input".to_string())
            ))),
        }
    }

    // ---- top level -------------------------------------------------------

    fn top_query(&mut self) -> Result<TopQuery, O2sqlError> {
        let mut left = self.simple_query()?;
        loop {
            let op = if self.eat(&Tok::Minus) {
                SetOpKind::Difference
            } else if self.keyword("union") {
                SetOpKind::Union
            } else if self.keyword("intersect") {
                SetOpKind::Intersect
            } else {
                return Ok(left);
            };
            let right = self.simple_query()?;
            left = TopQuery::SetOp(Box::new(left), op, Box::new(right));
        }
    }

    fn simple_query(&mut self) -> Result<TopQuery, O2sqlError> {
        if self.peek_keyword("select") {
            self.keyword("select");
            return Ok(TopQuery::Select(self.select_query()?));
        }
        if self.eat(&Tok::LParen) {
            let q = self.top_query()?;
            self.expect(&Tok::RParen)?;
            return Ok(q);
        }
        // A bare path-pattern query: IDENT steps.
        let base = self.ident()?;
        let steps = self.pattern_steps()?;
        if steps.is_empty() {
            return Err(self.err(format!(
                "expected a query; `{base}` alone is not one (add pattern steps or use select)"
            )));
        }
        Ok(TopQuery::PathQuery { base, steps })
    }

    fn select_query(&mut self) -> Result<SelectQuery, O2sqlError> {
        let select = self.expr()?;
        if !self.keyword("from") {
            return Err(self.err("expected `from`".to_string()));
        }
        let mut from = vec![self.from_item()?];
        while self.eat(&Tok::Comma) {
            from.push(self.from_item()?);
        }
        let where_ = if self.keyword("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(SelectQuery {
            select,
            from,
            where_,
        })
    }

    #[allow(clippy::wrong_self_convention)] // parses a from-clause item
    fn from_item(&mut self) -> Result<FromItem, O2sqlError> {
        let first = self.ident()?;
        if self.keyword("in") {
            let e = self.expr()?;
            return Ok(FromItem::In(first, e));
        }
        let steps = self.pattern_steps()?;
        if steps.is_empty() {
            return Err(self.err(format!(
                "from-item `{first}` needs `in <expr>` or a path pattern"
            )));
        }
        Ok(FromItem::Pattern { base: first, steps })
    }

    /// Pattern steps: `PATH_p`, `..`, `.attr`, `.ATT_a`, `[3]`, `[i]`,
    /// `(x)`, `{x}`, `->`.
    fn pattern_steps(&mut self) -> Result<Vec<PatStep>, O2sqlError> {
        let mut out = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::Ident(s)) if s.starts_with("PATH_") => {
                    let name = s.clone();
                    self.pos += 1;
                    out.push(PatStep::PathVar(name));
                }
                Some(Tok::DotDot) => {
                    self.pos += 1;
                    out.push(PatStep::AnonPath);
                }
                // Sugar: after `..` a bare attribute name may follow without
                // a dot (`from my_article .. title(t)`), as in the paper.
                Some(Tok::Ident(s))
                    if matches!(out.last(), Some(PatStep::AnonPath)) && !is_reserved(s) =>
                {
                    let name = s.clone();
                    self.pos += 1;
                    if name.starts_with("ATT_") {
                        out.push(PatStep::AttrVar(name));
                    } else {
                        out.push(PatStep::Attr(name));
                    }
                }
                Some(Tok::Arrow) => {
                    self.pos += 1;
                    out.push(PatStep::Deref);
                }
                Some(Tok::Dot) => {
                    self.pos += 1;
                    let name = self.ident()?;
                    if name.starts_with("ATT_") {
                        out.push(PatStep::AttrVar(name));
                    } else {
                        out.push(PatStep::Attr(name));
                    }
                }
                Some(Tok::LBracket) => {
                    self.pos += 1;
                    match self.bump() {
                        Some(Tok::Int(i)) => {
                            let i = usize::try_from(i)
                                .map_err(|_| self.err("negative index".to_string()))?;
                            out.push(PatStep::Index(i));
                        }
                        Some(Tok::Ident(v)) => out.push(PatStep::IndexVar(v)),
                        other => {
                            return Err(self.err(format!("expected an index, found {other:?}")));
                        }
                    }
                    self.expect(&Tok::RBracket)?;
                }
                Some(Tok::LParen) => {
                    // `(x)` binder — only when a single identifier inside.
                    if let (Some(Tok::Ident(_)), Some(Tok::RParen)) =
                        (self.peek2(), self.tokens.get(self.pos + 2).map(|t| &t.kind))
                    {
                        self.pos += 1;
                        let v = self.ident()?;
                        self.expect(&Tok::RParen)?;
                        out.push(PatStep::Bind(v));
                    } else {
                        break;
                    }
                }
                Some(Tok::LBrace) => {
                    self.pos += 1;
                    let v = self.ident()?;
                    self.expect(&Tok::RBrace)?;
                    out.push(PatStep::SetBind(v));
                }
                _ => break,
            }
        }
        Ok(out)
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self) -> Result<Expr, O2sqlError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, O2sqlError> {
        let mut items = vec![self.and_expr()?];
        while self.keyword("or") {
            items.push(self.and_expr()?);
        }
        Ok(if items.len() == 1 {
            items.pop().expect("len checked")
        } else {
            Expr::Or(items)
        })
    }

    fn and_expr(&mut self) -> Result<Expr, O2sqlError> {
        let mut items = vec![self.not_expr()?];
        while self.keyword("and") {
            items.push(self.not_expr()?);
        }
        Ok(if items.len() == 1 {
            items.pop().expect("len checked")
        } else {
            Expr::And(items)
        })
    }

    fn not_expr(&mut self) -> Result<Expr, O2sqlError> {
        if self.keyword("not") {
            return Ok(Expr::Not(Box::new(self.not_expr()?)));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<Expr, O2sqlError> {
        let left = self.postfix()?;
        if self.keyword("contains") {
            let arg = self.contains_arg()?;
            return Ok(Expr::Contains(Box::new(left), arg));
        }
        if self.keyword("in") {
            let right = self.postfix()?;
            return Ok(Expr::InTest(Box::new(left), Box::new(right)));
        }
        let op = match self.peek() {
            Some(Tok::Eq) => CmpOp::Eq,
            Some(Tok::Ne) => CmpOp::Ne,
            Some(Tok::Lt) => CmpOp::Lt,
            Some(Tok::Le) => CmpOp::Le,
            Some(Tok::Gt) => CmpOp::Gt,
            Some(Tok::Ge) => CmpOp::Ge,
            _ => return Ok(left),
        };
        self.pos += 1;
        let right = self.postfix()?;
        Ok(Expr::Cmp(op, Box::new(left), Box::new(right)))
    }

    fn postfix(&mut self) -> Result<Expr, O2sqlError> {
        let mut base = self.primary()?;
        let mut sels = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::Dot) => {
                    self.pos += 1;
                    sels.push(Sel::Attr(self.ident()?));
                }
                Some(Tok::LBracket) => {
                    self.pos += 1;
                    match self.bump() {
                        Some(Tok::Int(i)) => {
                            let i = usize::try_from(i)
                                .map_err(|_| self.err("negative index".to_string()))?;
                            sels.push(Sel::Index(i));
                        }
                        other => {
                            return Err(self.err(format!(
                                "expected a constant index in expression, found {other:?}"
                            )));
                        }
                    }
                    self.expect(&Tok::RBracket)?;
                }
                _ => break,
            }
        }
        if !sels.is_empty() {
            base = Expr::Path(Box::new(base), sels);
        }
        Ok(base)
    }

    fn primary(&mut self) -> Result<Expr, O2sqlError> {
        match self.peek().cloned() {
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Lit(Value::Str(s)))
            }
            Some(Tok::Int(i)) => {
                self.pos += 1;
                Ok(Expr::Lit(Value::Int(i)))
            }
            Some(Tok::Float(x)) => {
                self.pos += 1;
                Ok(Expr::Lit(Value::Float(x)))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                let lower = name.to_ascii_lowercase();
                match lower.as_str() {
                    "nil" => return Ok(Expr::Lit(Value::Nil)),
                    "true" => return Ok(Expr::Lit(Value::Bool(true))),
                    "false" => return Ok(Expr::Lit(Value::Bool(false))),
                    "tuple" => {
                        self.expect(&Tok::LParen)?;
                        let mut fields = Vec::new();
                        if !self.eat(&Tok::RParen) {
                            loop {
                                let n = self.ident()?;
                                self.expect(&Tok::Colon)?;
                                fields.push((n, self.expr()?));
                                if self.eat(&Tok::Comma) {
                                    continue;
                                }
                                self.expect(&Tok::RParen)?;
                                break;
                            }
                        }
                        return Ok(Expr::TupleCons(fields));
                    }
                    "exists" => {
                        self.expect(&Tok::LParen)?;
                        let var = self.ident()?;
                        if !self.keyword("in") {
                            return Err(self.err("expected `in` inside exists".to_string()));
                        }
                        let source = self.expr()?;
                        self.expect(&Tok::Colon)?;
                        let cond = self.expr()?;
                        self.expect(&Tok::RParen)?;
                        return Ok(Expr::Exists(var, Box::new(source), Box::new(cond)));
                    }
                    "list" | "set" => {
                        self.expect(&Tok::LParen)?;
                        let mut items = Vec::new();
                        if !self.eat(&Tok::RParen) {
                            loop {
                                items.push(self.expr()?);
                                if self.eat(&Tok::Comma) {
                                    continue;
                                }
                                self.expect(&Tok::RParen)?;
                                break;
                            }
                        }
                        return Ok(if lower == "list" {
                            Expr::ListCons(items)
                        } else {
                            Expr::SetCons(items)
                        });
                    }
                    _ => {}
                }
                if self.peek() == Some(&Tok::LParen) {
                    // Function call.
                    self.pos += 1;
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat(&Tok::Comma) {
                                continue;
                            }
                            self.expect(&Tok::RParen)?;
                            break;
                        }
                    }
                    return Ok(Expr::Call(name, args));
                }
                Ok(Expr::Ident(name))
            }
            other => Err(self.err(format!(
                "expected an expression, found {}",
                other
                    .map(|t| format!("`{t}`"))
                    .unwrap_or_else(|| "end of input".to_string())
            ))),
        }
    }

    // ---- contains argument -----------------------------------------------

    fn contains_arg(&mut self) -> Result<CBool, O2sqlError> {
        if self.eat(&Tok::LParen) {
            let c = self.cbool_or()?;
            self.expect(&Tok::RParen)?;
            Ok(c)
        } else {
            match self.bump() {
                Some(Tok::Str(s)) => Ok(CBool::Pat(s)),
                other => Err(self.err(format!(
                    "contains needs a pattern string or a parenthesised combination, found {other:?}"
                ))),
            }
        }
    }

    fn cbool_or(&mut self) -> Result<CBool, O2sqlError> {
        let mut items = vec![self.cbool_and()?];
        while self.keyword("or") {
            items.push(self.cbool_and()?);
        }
        Ok(if items.len() == 1 {
            items.pop().expect("len checked")
        } else {
            CBool::Or(items)
        })
    }

    fn cbool_and(&mut self) -> Result<CBool, O2sqlError> {
        let mut items = vec![self.cbool_atom()?];
        while self.keyword("and") {
            items.push(self.cbool_atom()?);
        }
        Ok(if items.len() == 1 {
            items.pop().expect("len checked")
        } else {
            CBool::And(items)
        })
    }

    fn cbool_atom(&mut self) -> Result<CBool, O2sqlError> {
        if self.keyword("not") {
            return Ok(CBool::Not(Box::new(self.cbool_atom()?)));
        }
        if self.eat(&Tok::LParen) {
            let c = self.cbool_or()?;
            self.expect(&Tok::RParen)?;
            return Ok(c);
        }
        match self.bump() {
            Some(Tok::Str(s)) => Ok(CBool::Pat(s)),
            other => Err(self.err(format!("expected a pattern string, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_q1() {
        let q = parse(
            "select tuple (t: a.title, f_author: first(a.authors)) \
             from a in Articles, s in a.sections \
             where s.title contains (\"SGML\" and \"OODBMS\")",
        )
        .unwrap();
        let TopQuery::Select(s) = q else { panic!() };
        assert!(matches!(s.select, Expr::TupleCons(ref fs) if fs.len() == 2));
        assert_eq!(s.from.len(), 2);
        match &s.where_ {
            Some(Expr::Contains(_, CBool::And(items))) => assert_eq!(items.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_q3_path_pattern() {
        let q = parse("select t from my_article PATH_p.title(t)").unwrap();
        let TopQuery::Select(s) = q else { panic!() };
        match &s.from[0] {
            FromItem::Pattern { base, steps } => {
                assert_eq!(base, "my_article");
                assert_eq!(
                    steps,
                    &vec![
                        PatStep::PathVar("PATH_p".into()),
                        PatStep::Attr("title".into()),
                        PatStep::Bind("t".into())
                    ]
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_q3_sugar() {
        let q = parse("select t from my_article .. title(t)").unwrap();
        let TopQuery::Select(s) = q else { panic!() };
        match &s.from[0] {
            FromItem::Pattern { steps, .. } => {
                // `..` then bare attr name: the attr comes through as a Dot
                // step? No — `.. title` has no dot before title.
                assert_eq!(steps[0], PatStep::AnonPath);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_q4_difference() {
        let q = parse("my_article PATH_p - my_old_article PATH_p").unwrap();
        match q {
            TopQuery::SetOp(l, SetOpKind::Difference, r) => {
                assert!(matches!(*l, TopQuery::PathQuery { .. }));
                assert!(matches!(*r, TopQuery::PathQuery { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_q5_attr_variable() {
        let q = parse(
            "select name(ATT_a) from my_article PATH_p.ATT_a(val) \
             where val contains (\"final\")",
        )
        .unwrap();
        let TopQuery::Select(s) = q else { panic!() };
        assert!(matches!(s.select, Expr::Call(ref n, _) if n == "name"));
        match &s.from[0] {
            FromItem::Pattern { steps, .. } => {
                assert_eq!(steps[1], PatStep::AttrVar("ATT_a".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_q6_positions() {
        let q = parse(
            "select letter from letter in Letters, \
             i in positions(letter.preamble, \"from\"), \
             j in positions(letter.preamble, \"to\") \
             where j < i",
        )
        .unwrap();
        let TopQuery::Select(s) = q else { panic!() };
        assert_eq!(s.from.len(), 3);
        assert!(matches!(s.where_, Some(Expr::Cmp(CmpOp::Lt, _, _))));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("select").is_err());
        assert!(parse("select x from").is_err());
        assert!(parse("x").is_err());
        assert!(parse("select x from a in B where").is_err());
    }

    #[test]
    fn index_steps_in_patterns() {
        let q = parse("select x from doc PATH_p.sections[0].title(x)").unwrap();
        let TopQuery::Select(s) = q else { panic!() };
        match &s.from[0] {
            FromItem::Pattern { steps, .. } => {
                assert!(steps.contains(&PatStep::Index(0)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn near_call_in_where() {
        let q = parse("select a from a in Articles where near(text(a), \"SGML\", \"OODBMS\", 5)")
            .unwrap();
        let TopQuery::Select(s) = q else { panic!() };
        assert!(
            matches!(s.where_, Some(Expr::Call(ref n, ref args)) if n == "near" && args.len() == 4)
        );
    }
}
