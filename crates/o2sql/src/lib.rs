//! # docql-o2sql — the extended O₂SQL language (§4)
//!
//! The paper's surface language: select-from-where with `contains`/`near`
//! textual predicates (§4.1), union types with implicit selectors (§4.2),
//! `PATH_`/`ATT_` variables and the `..` sugar (§4.3), position queries over
//! ordered tuples (§4.4), and the Q4 set-difference form. Queries translate
//! to the calculus (§5.2) and evaluate through either the interpreter or the
//! §5.4 algebraizer.

pub mod ast;
pub mod cache;
pub mod engine;
pub mod metrics;
pub mod parser;
pub mod token;
pub mod translate;

pub use ast::{CBool, CmpOp, Expr, FromItem, PatStep, SelectQuery, SetOpKind, TopQuery};
pub use cache::{CacheStats, CachedPlan, PlanCache};
pub use engine::{Engine, Mode, QueryResult};
pub use metrics::{EngineMetrics, QueryProfile};
pub use parser::parse;
pub use translate::{translate, Translated};

use std::fmt;

/// Errors across parsing, translation and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum O2sqlError {
    /// Syntax error at a byte offset.
    Parse {
        /// Byte offset in the query text.
        at: usize,
        /// Description.
        msg: String,
    },
    /// An identifier that is neither a declared variable nor a root.
    UnknownIdent(String),
    /// Static translation/typing error.
    Type(String),
    /// Evaluation error.
    Eval(String),
    /// Execution stopped by the resource governor (deadline, budget, fuel
    /// or cancellation) while not in degrade mode. The payload is the
    /// authoritative trip read back from the query's
    /// [`docql_guard::Guard`].
    Interrupted(docql_guard::ExecError),
}

impl fmt::Display for O2sqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            O2sqlError::Parse { at, msg } => write!(f, "parse error at byte {at}: {msg}"),
            O2sqlError::UnknownIdent(n) => write!(
                f,
                "`{n}` is neither a variable in scope nor a root of persistence"
            ),
            O2sqlError::Type(m) => write!(f, "type error: {m}"),
            O2sqlError::Eval(m) => write!(f, "evaluation error: {m}"),
            O2sqlError::Interrupted(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for O2sqlError {}
