//! A bounded query-plan cache: source text → compiled plan.
//!
//! Repeated queries — the dominant shape of serving traffic — skip lexing,
//! parsing, translation to the calculus, and (in algebraic mode) the §5.4
//! algebraization. The cache is safe to share across reader threads: the
//! map is guarded by a [`Mutex`] held only for lookups/insertions (never
//! during evaluation), hit/miss counters are atomics, and the lazily
//! algebraized plans live in a [`OnceLock`] per entry.
//!
//! Plans depend only on the *schema* (translation resolves identifiers
//! against roots of persistence; algebraization substitutes schema paths),
//! so ingesting more documents never invalidates the cache. A schema change
//! means a new store, and with it a new cache. This also holds for the
//! path-extent index: plans embed `IndexPathScan` *choice points*, and
//! whether a scan reads the extent or walks is decided at evaluation time
//! from the engine's [`docql_algebra::ExecCtx`] — toggling or rebuilding
//! the index never invalidates cached plans either.
//!
//! The same schema-only dependence is what lets a store share one cache
//! (behind `Arc`) across every snapshot version it forks: a plan compiled
//! against version *n* evaluates correctly against version *n+k*, because
//! the engine binds the instance, indexes and extent handle at evaluation
//! time. Publication never invalidates or cools the cache.

use crate::translate::Translated;
use crate::O2sqlError;
use docql_algebra::{algebraize, AlgebraError, Algebraized};
use docql_model::Schema;
use docql_obs::{Counter, Gauge, MetricsRegistry};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Default number of cached plans ([`PlanCache::with_capacity`] overrides).
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 256;

/// A compiled query, ready for repeated evaluation.
pub struct CachedPlan {
    /// The translated calculus query (with set-op chain).
    pub translated: Translated,
    /// Algebraized plans for the set-op chain in pre-order (left query
    /// first, then each right-hand side), computed on the first algebraic
    /// run. `Err` is cached too: a query that cannot be algebraized fails
    /// identically on every run.
    algebra: OnceLock<Result<Vec<Arc<Algebraized>>, AlgebraError>>,
}

impl CachedPlan {
    /// Wrap a translation as a cacheable plan.
    pub fn new(translated: Translated) -> CachedPlan {
        CachedPlan {
            translated,
            algebra: OnceLock::new(),
        }
    }

    /// The algebraized plans for this query's set-op chain (pre-order),
    /// computing and memoising them on first use.
    pub fn algebra_plans(&self, schema: &Schema) -> Result<&[Arc<Algebraized>], O2sqlError> {
        fn collect(
            t: &Translated,
            schema: &Schema,
            out: &mut Vec<Arc<Algebraized>>,
        ) -> Result<(), AlgebraError> {
            out.push(Arc::new(algebraize(&t.query, schema)?));
            if let Some((_, right)) = &t.set_op {
                collect(right, schema, out)?;
            }
            Ok(())
        }
        let computed = self.algebra.get_or_init(|| {
            let mut out = Vec::new();
            collect(&self.translated, schema, &mut out)?;
            Ok(out)
        });
        match computed {
            Ok(plans) => Ok(plans.as_slice()),
            Err(e) => Err(O2sqlError::Eval(e.to_string())),
        }
    }

    /// Has the §5.4 algebraization already run (successfully or not)?
    /// Observability uses this to time algebraization only when it actually
    /// happens — memoised plans would otherwise record meaningless
    /// nanosecond samples on every run.
    pub fn is_algebraized(&self) -> bool {
        self.algebra.get().is_some()
    }
}

/// Cache observability for benches and ops counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum entries before eviction.
    pub capacity: usize,
}

struct Inner {
    map: HashMap<String, Arc<CachedPlan>>,
    /// Recency order, least-recently-used first.
    order: Vec<String>,
}

/// A bounded (LRU) map from query source text to compiled plan.
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<Inner>,
    /// Hit/miss counters are [`docql_obs`] handles so a metrics registry
    /// can adopt them (see [`PlanCache::register_metrics`]); free-standing
    /// they behave exactly like plain atomics.
    hits: Counter,
    misses: Counter,
    entries: Gauge,
}

impl Default for PlanCache {
    fn default() -> PlanCache {
        PlanCache::with_capacity(DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

impl PlanCache {
    /// A cache evicting past `capacity` entries (least recently used
    /// first). A capacity of 0 disables caching but keeps the counters.
    pub fn with_capacity(capacity: usize) -> PlanCache {
        PlanCache {
            capacity,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: Vec::new(),
            }),
            hits: Counter::new(),
            misses: Counter::new(),
            entries: Gauge::new(),
        }
    }

    /// Expose this cache's counters through `registry` under the
    /// `docql_plan_cache_*` names. The registry adopts the live handles, so
    /// exports reflect the cache with no copying or polling.
    pub fn register_metrics(&self, registry: &MetricsRegistry) {
        registry.register_counter("docql_plan_cache_hits_total", &self.hits);
        registry.register_counter("docql_plan_cache_misses_total", &self.misses);
        registry.register_gauge("docql_plan_cache_entries", &self.entries);
    }

    /// Look up `src`, or compile it with `compile` and cache the result.
    /// Compilation runs outside the lock, so a slow compile never blocks
    /// concurrent lookups (two threads may race to compile the same text;
    /// both get valid plans and one insertion wins).
    pub fn get_or_compile<F>(&self, src: &str, compile: F) -> Result<Arc<CachedPlan>, O2sqlError>
    where
        F: FnOnce() -> Result<CachedPlan, O2sqlError>,
    {
        if let Some(hit) = self.lookup(src) {
            return Ok(hit);
        }
        let plan = Arc::new(compile()?);
        self.insert(src, Arc::clone(&plan));
        Ok(plan)
    }

    /// Look up `src`, refreshing its recency; counts a hit or a miss.
    pub fn lookup(&self, src: &str) -> Option<Arc<CachedPlan>> {
        let mut inner = self.lock();
        match inner.map.get(src).cloned() {
            Some(plan) => {
                self.hits.inc();
                if let Some(i) = inner.order.iter().position(|k| k == src) {
                    let k = inner.order.remove(i);
                    inner.order.push(k);
                }
                Some(plan)
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Insert a compiled plan, evicting the least recently used entries
    /// past capacity.
    pub fn insert(&self, src: &str, plan: Arc<CachedPlan>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.lock();
        if inner.map.insert(src.to_string(), plan).is_none() {
            inner.order.push(src.to_string());
        } else if let Some(i) = inner.order.iter().position(|k| k == src) {
            let k = inner.order.remove(i);
            inner.order.push(k);
        }
        while inner.map.len() > self.capacity {
            let evicted = inner.order.remove(0);
            inner.map.remove(&evicted);
        }
        self.entries.set(inner.map.len() as i64);
    }

    /// Hit/miss counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        let entries = self.lock().map.len();
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            entries,
            capacity: self.capacity,
        }
    }

    /// Drop all entries (counters are kept).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.map.clear();
        inner.order.clear();
        self.entries.set(0);
    }

    /// Drop all entries *and* zero the hit/miss counters — [`clear`] plus a
    /// fresh statistical slate, for bench phase isolation and tests.
    ///
    /// [`clear`]: PlanCache::clear
    pub fn reset(&self) {
        self.clear();
        self.hits.reset();
        self.misses.reset();
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The guarded state. Poisoning is recovered rather than propagated:
    /// every critical section leaves `map`/`order` consistent before any
    /// call that could panic, so the state a panicking thread abandons is
    /// still valid (worst case: a stale recency order).
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::translate::translate;
    use docql_model::{ClassDef, Type};

    fn schema() -> Schema {
        Schema::builder()
            .class(ClassDef::new("Doc", Type::tuple([("title", Type::String)])))
            .root("Docs", Type::list(Type::class("Doc")))
            .build()
            .unwrap()
    }

    fn compile(src: &str, schema: &Schema) -> CachedPlan {
        CachedPlan::new(translate(&parse(src).unwrap(), schema).unwrap())
    }

    #[test]
    fn hit_and_miss_counters() {
        let schema = schema();
        let cache = PlanCache::with_capacity(8);
        let q = "select d.title from d in Docs";
        for _ in 0..3 {
            cache.get_or_compile(q, || Ok(compile(q, &schema))).unwrap();
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (2, 1, 1));
    }

    #[test]
    fn eviction_is_lru() {
        let schema = schema();
        let cache = PlanCache::with_capacity(2);
        let qs = [
            "select d.title from d in Docs",
            "select d from d in Docs",
            "select x.title from x in Docs",
        ];
        cache
            .get_or_compile(qs[0], || Ok(compile(qs[0], &schema)))
            .unwrap();
        cache
            .get_or_compile(qs[1], || Ok(compile(qs[1], &schema)))
            .unwrap();
        // Touch qs[0] so qs[1] is the LRU entry, then overflow.
        cache
            .get_or_compile(qs[0], || Ok(compile(qs[0], &schema)))
            .unwrap();
        cache
            .get_or_compile(qs[2], || Ok(compile(qs[2], &schema)))
            .unwrap();
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(qs[0]).is_some(), "recently used entry kept");
        assert!(cache.lookup(qs[1]).is_none(), "LRU entry evicted");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let schema = schema();
        let cache = PlanCache::with_capacity(0);
        let q = "select d.title from d in Docs";
        cache.get_or_compile(q, || Ok(compile(q, &schema))).unwrap();
        cache.get_or_compile(q, || Ok(compile(q, &schema))).unwrap();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 2, 0));
    }

    #[test]
    fn reset_zeroes_counters_and_registry_sees_live_values() {
        let schema = schema();
        let cache = PlanCache::with_capacity(4);
        let reg = MetricsRegistry::new();
        cache.register_metrics(&reg);
        let q = "select d.title from d in Docs";
        for _ in 0..2 {
            cache.get_or_compile(q, || Ok(compile(q, &schema))).unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("docql_plan_cache_hits_total"), Some(1));
        assert_eq!(snap.counter("docql_plan_cache_misses_total"), Some(1));
        assert_eq!(snap.gauge("docql_plan_cache_entries"), Some(1));
        cache.reset();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("docql_plan_cache_hits_total"), Some(0));
        assert_eq!(snap.gauge("docql_plan_cache_entries"), Some(0));
    }

    #[test]
    fn compile_errors_are_not_cached() {
        let cache = PlanCache::with_capacity(4);
        let r = cache.get_or_compile("select", || Err(O2sqlError::Eval("boom".into())));
        assert!(r.is_err());
        assert_eq!(cache.len(), 0);
    }
}
