//! A bounded query-plan cache: source text → compiled plan.
//!
//! Repeated queries — the dominant shape of serving traffic — skip lexing,
//! parsing, translation to the calculus, and (in algebraic mode) the §5.4
//! algebraization. The cache is safe to share across reader threads: the
//! map is guarded by a [`Mutex`] held only for lookups/insertions (never
//! during evaluation), hit/miss counters are atomics, and the lazily
//! algebraized plans live in a per-entry slot guarded by its own mutex.
//!
//! *Correctness* depends only on the schema (translation resolves
//! identifiers against roots of persistence; algebraization substitutes
//! schema paths), so a cached plan evaluates correctly against any snapshot
//! the store publishes — ingests never make a plan wrong, and the same
//! plan serves every forked snapshot version. A schema change means a new
//! store, and with it a new cache. The path-extent index is likewise an
//! evaluation-time choice: plans embed `IndexPathScan` *choice points*
//! resolved from the engine's [`docql_algebra::ExecCtx`].
//!
//! *Quality*, however, depends on the statistics the cost-based planner
//! saw: each algebra slot records the stats version it was planned
//! against, and the engine invalidates the slot
//! ([`CachedPlan::invalidate`]) when observed cardinality diverges from
//! the estimate while fresher statistics exist — the next run re-plans.
//! The translation is kept; only the algebraization re-runs.

use crate::translate::Translated;
use crate::O2sqlError;
use docql_algebra::{algebraize_with_stats, AlgebraError, Algebraized, StatsSource};
use docql_model::Schema;
use docql_obs::{Counter, Gauge, MetricsRegistry};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

/// Default number of cached plans ([`PlanCache::with_capacity`] overrides).
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 256;

/// The algebraized set-op chain (pre-order, shared), ready for evaluation.
pub type AlgebraPlans = Arc<Vec<Arc<Algebraized>>>;

/// One memoised algebraization of a plan's set-op chain, stamped with the
/// statistics version it was costed against (0 when planned without
/// statistics — the heuristic planner).
struct AlgebraSlot {
    plans: Result<Arc<Vec<Arc<Algebraized>>>, AlgebraError>,
    stats_version: u64,
}

/// A compiled query, ready for repeated evaluation.
pub struct CachedPlan {
    /// The translated calculus query (with set-op chain).
    pub translated: Translated,
    /// Algebraized plans for the set-op chain in pre-order (left query
    /// first, then each right-hand side), computed on the first algebraic
    /// run. `Err` is cached too: a query that cannot be algebraized fails
    /// identically on every run — until [`CachedPlan::invalidate`] clears
    /// the slot for re-planning against fresh statistics.
    algebra: Mutex<Option<AlgebraSlot>>,
}

impl CachedPlan {
    /// Wrap a translation as a cacheable plan.
    pub fn new(translated: Translated) -> CachedPlan {
        CachedPlan {
            translated,
            algebra: Mutex::new(None),
        }
    }

    /// The algebraized plans for this query's set-op chain (pre-order) and
    /// the stats version they were planned against, computing and memoising
    /// them on first use. Algebraization runs *outside* the slot lock, so a
    /// slow plan never blocks concurrent readers of an already-filled slot;
    /// two threads may race to compute and the first insertion wins (both
    /// get valid plans).
    pub fn algebra_plans(
        &self,
        schema: &Schema,
        stats: Option<&dyn StatsSource>,
    ) -> Result<(AlgebraPlans, u64), O2sqlError> {
        fn collect(
            t: &Translated,
            schema: &Schema,
            stats: Option<&dyn StatsSource>,
            out: &mut Vec<Arc<Algebraized>>,
        ) -> Result<(), AlgebraError> {
            out.push(Arc::new(algebraize_with_stats(&t.query, schema, stats)?));
            if let Some((_, right)) = &t.set_op {
                collect(right, schema, stats, out)?;
            }
            Ok(())
        }
        if let Some(slot) = self.slot_lock().as_ref() {
            return slot_result(slot);
        }
        let version = stats.map_or(0, StatsSource::version);
        let mut out = Vec::new();
        let plans = match collect(&self.translated, schema, stats, &mut out) {
            Ok(()) => Ok(Arc::new(out)),
            Err(e) => Err(e),
        };
        let mut guard = self.slot_lock();
        let slot = guard.get_or_insert(AlgebraSlot {
            plans,
            stats_version: version,
        });
        slot_result(slot)
    }

    /// Has the §5.4 algebraization already run (successfully or not)?
    /// Observability uses this to time algebraization only when it actually
    /// happens — memoised plans would otherwise record meaningless
    /// nanosecond samples on every run.
    pub fn is_algebraized(&self) -> bool {
        self.slot_lock().is_some()
    }

    /// Drop the memoised algebraization so the next algebraic run re-plans
    /// against current statistics. The translation is kept — feedback
    /// re-planning never re-parses. Called by the engine when observed
    /// rows diverge from the plan's estimates and fresher stats exist.
    pub fn invalidate(&self) {
        *self.slot_lock() = None;
    }

    /// The slot guard. Poisoning is recovered: the slot is only ever
    /// replaced whole, so an abandoned guard leaves it consistent.
    fn slot_lock(&self) -> std::sync::MutexGuard<'_, Option<AlgebraSlot>> {
        self.algebra.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

fn slot_result(slot: &AlgebraSlot) -> Result<(AlgebraPlans, u64), O2sqlError> {
    match &slot.plans {
        Ok(plans) => Ok((Arc::clone(plans), slot.stats_version)),
        Err(e) => Err(O2sqlError::Eval(e.to_string())),
    }
}

/// Cache observability for benches and ops counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum entries before eviction.
    pub capacity: usize,
}

struct Inner {
    map: HashMap<String, Arc<CachedPlan>>,
    /// Recency order, least-recently-used first.
    order: Vec<String>,
}

/// A bounded (LRU) map from query source text to compiled plan.
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<Inner>,
    /// Hit/miss counters are [`docql_obs`] handles so a metrics registry
    /// can adopt them (see [`PlanCache::register_metrics`]); free-standing
    /// they behave exactly like plain atomics.
    hits: Counter,
    misses: Counter,
    entries: Gauge,
}

impl Default for PlanCache {
    fn default() -> PlanCache {
        PlanCache::with_capacity(DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

impl PlanCache {
    /// A cache evicting past `capacity` entries (least recently used
    /// first). A capacity of 0 disables caching but keeps the counters.
    pub fn with_capacity(capacity: usize) -> PlanCache {
        PlanCache {
            capacity,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: Vec::new(),
            }),
            hits: Counter::new(),
            misses: Counter::new(),
            entries: Gauge::new(),
        }
    }

    /// Expose this cache's counters through `registry` under the
    /// `docql_plan_cache_*` names. The registry adopts the live handles, so
    /// exports reflect the cache with no copying or polling.
    pub fn register_metrics(&self, registry: &MetricsRegistry) {
        registry.register_counter("docql_plan_cache_hits_total", &self.hits);
        registry.register_counter("docql_plan_cache_misses_total", &self.misses);
        registry.register_gauge("docql_plan_cache_entries", &self.entries);
    }

    /// Look up `src`, or compile it with `compile` and cache the result.
    /// Compilation runs outside the lock, so a slow compile never blocks
    /// concurrent lookups (two threads may race to compile the same text;
    /// both get valid plans and one insertion wins).
    pub fn get_or_compile<F>(&self, src: &str, compile: F) -> Result<Arc<CachedPlan>, O2sqlError>
    where
        F: FnOnce() -> Result<CachedPlan, O2sqlError>,
    {
        if let Some(hit) = self.lookup(src) {
            return Ok(hit);
        }
        let plan = Arc::new(compile()?);
        self.insert(src, Arc::clone(&plan));
        Ok(plan)
    }

    /// Look up `src`, refreshing its recency; counts a hit or a miss.
    pub fn lookup(&self, src: &str) -> Option<Arc<CachedPlan>> {
        let mut inner = self.lock();
        match inner.map.get(src).cloned() {
            Some(plan) => {
                self.hits.inc();
                if let Some(i) = inner.order.iter().position(|k| k == src) {
                    let k = inner.order.remove(i);
                    inner.order.push(k);
                }
                Some(plan)
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Insert a compiled plan, evicting the least recently used entries
    /// past capacity.
    pub fn insert(&self, src: &str, plan: Arc<CachedPlan>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.lock();
        if inner.map.insert(src.to_string(), plan).is_none() {
            inner.order.push(src.to_string());
        } else if let Some(i) = inner.order.iter().position(|k| k == src) {
            let k = inner.order.remove(i);
            inner.order.push(k);
        }
        while inner.map.len() > self.capacity {
            let evicted = inner.order.remove(0);
            inner.map.remove(&evicted);
        }
        self.entries.set(inner.map.len() as i64);
    }

    /// Hit/miss counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        let entries = self.lock().map.len();
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            entries,
            capacity: self.capacity,
        }
    }

    /// Drop all entries (counters are kept).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.map.clear();
        inner.order.clear();
        self.entries.set(0);
    }

    /// Drop all entries *and* zero the hit/miss counters — [`clear`] plus a
    /// fresh statistical slate, for bench phase isolation and tests.
    ///
    /// [`clear`]: PlanCache::clear
    pub fn reset(&self) {
        self.clear();
        self.hits.reset();
        self.misses.reset();
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The guarded state. Poisoning is recovered rather than propagated:
    /// every critical section leaves `map`/`order` consistent before any
    /// call that could panic, so the state a panicking thread abandons is
    /// still valid (worst case: a stale recency order).
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::translate::translate;
    use docql_model::{ClassDef, Type};

    fn schema() -> Schema {
        Schema::builder()
            .class(ClassDef::new("Doc", Type::tuple([("title", Type::String)])))
            .root("Docs", Type::list(Type::class("Doc")))
            .build()
            .unwrap()
    }

    fn compile(src: &str, schema: &Schema) -> CachedPlan {
        CachedPlan::new(translate(&parse(src).unwrap(), schema).unwrap())
    }

    #[test]
    fn hit_and_miss_counters() {
        let schema = schema();
        let cache = PlanCache::with_capacity(8);
        let q = "select d.title from d in Docs";
        for _ in 0..3 {
            cache.get_or_compile(q, || Ok(compile(q, &schema))).unwrap();
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (2, 1, 1));
    }

    #[test]
    fn eviction_is_lru() {
        let schema = schema();
        let cache = PlanCache::with_capacity(2);
        let qs = [
            "select d.title from d in Docs",
            "select d from d in Docs",
            "select x.title from x in Docs",
        ];
        cache
            .get_or_compile(qs[0], || Ok(compile(qs[0], &schema)))
            .unwrap();
        cache
            .get_or_compile(qs[1], || Ok(compile(qs[1], &schema)))
            .unwrap();
        // Touch qs[0] so qs[1] is the LRU entry, then overflow.
        cache
            .get_or_compile(qs[0], || Ok(compile(qs[0], &schema)))
            .unwrap();
        cache
            .get_or_compile(qs[2], || Ok(compile(qs[2], &schema)))
            .unwrap();
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(qs[0]).is_some(), "recently used entry kept");
        assert!(cache.lookup(qs[1]).is_none(), "LRU entry evicted");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let schema = schema();
        let cache = PlanCache::with_capacity(0);
        let q = "select d.title from d in Docs";
        cache.get_or_compile(q, || Ok(compile(q, &schema))).unwrap();
        cache.get_or_compile(q, || Ok(compile(q, &schema))).unwrap();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 2, 0));
    }

    #[test]
    fn reset_zeroes_counters_and_registry_sees_live_values() {
        let schema = schema();
        let cache = PlanCache::with_capacity(4);
        let reg = MetricsRegistry::new();
        cache.register_metrics(&reg);
        let q = "select d.title from d in Docs";
        for _ in 0..2 {
            cache.get_or_compile(q, || Ok(compile(q, &schema))).unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("docql_plan_cache_hits_total"), Some(1));
        assert_eq!(snap.counter("docql_plan_cache_misses_total"), Some(1));
        assert_eq!(snap.gauge("docql_plan_cache_entries"), Some(1));
        cache.reset();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("docql_plan_cache_hits_total"), Some(0));
        assert_eq!(snap.gauge("docql_plan_cache_entries"), Some(0));
    }

    /// A stats source that only carries a version — enough to check the
    /// slot's version stamping and invalidation.
    struct VersionOnly(u64);

    impl StatsSource for VersionOnly {
        fn version(&self) -> u64 {
            self.0
        }
        fn documents(&self) -> u64 {
            1
        }
        fn objects(&self) -> u64 {
            1
        }
        fn extent_targets(&self, _key: &[docql_paths::ExtStep]) -> Option<u64> {
            None
        }
        fn posting_docs(&self, _term: &str) -> u64 {
            0
        }
        fn avg_doc_words(&self) -> u64 {
            0
        }
    }

    #[test]
    fn algebra_slot_stamps_stats_version_and_invalidates() {
        let schema = schema();
        let plan = compile("select d.title from d in Docs", &schema);
        assert!(!plan.is_algebraized());

        // Heuristic planning stamps version 0.
        let (_, v) = plan.algebra_plans(&schema, None).unwrap();
        assert_eq!(v, 0);
        assert!(plan.is_algebraized());

        // The slot is memoised: fresher stats do not re-plan on their own.
        let stats = VersionOnly(7);
        let (_, v) = plan.algebra_plans(&schema, Some(&stats)).unwrap();
        assert_eq!(v, 0, "memoised slot keeps its planned version");

        // Invalidation clears the slot; the next run plans against the
        // attached stats and stamps their version.
        plan.invalidate();
        assert!(!plan.is_algebraized());
        let (plans, v) = plan.algebra_plans(&schema, Some(&stats)).unwrap();
        assert_eq!(v, 7);
        assert!(
            plans.iter().all(|a| a.estimates.is_some()),
            "cost-based planning records estimates"
        );
    }

    #[test]
    fn compile_errors_are_not_cached() {
        let cache = PlanCache::with_capacity(4);
        let r = cache.get_or_compile("select", || Err(O2sqlError::Eval("boom".into())));
        assert!(r.is_err());
        assert_eq!(cache.len(), 0);
    }
}
