//! Lexer for the extended O₂SQL language (§4).

use std::fmt;

/// A token with its source offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Byte offset in the query text.
    pub at: usize,
    /// The token.
    pub kind: Tok,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (keywords are recognised case-insensitively by
    /// the parser; identifiers keep their case).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes stripped, `\"` unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `-`
    Minus,
    /// `->`
    Arrow,
    /// `+`
    Plus,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Float(x) => write!(f, "{x}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::LParen => f.write_str("("),
            Tok::RParen => f.write_str(")"),
            Tok::LBracket => f.write_str("["),
            Tok::RBracket => f.write_str("]"),
            Tok::LBrace => f.write_str("{"),
            Tok::RBrace => f.write_str("}"),
            Tok::Dot => f.write_str("."),
            Tok::DotDot => f.write_str(".."),
            Tok::Comma => f.write_str(","),
            Tok::Colon => f.write_str(":"),
            Tok::Eq => f.write_str("="),
            Tok::Ne => f.write_str("!="),
            Tok::Lt => f.write_str("<"),
            Tok::Le => f.write_str("<="),
            Tok::Gt => f.write_str(">"),
            Tok::Ge => f.write_str(">="),
            Tok::Minus => f.write_str("-"),
            Tok::Arrow => f.write_str("->"),
            Tok::Plus => f.write_str("+"),
        }
    }
}

/// Lexing error.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Byte offset.
    pub at: usize,
    /// Message.
    pub msg: String,
}

/// Tokenise a query.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        let at = i;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'(' => {
                out.push(Token {
                    at,
                    kind: Tok::LParen,
                });
                i += 1;
            }
            b')' => {
                out.push(Token {
                    at,
                    kind: Tok::RParen,
                });
                i += 1;
            }
            b'[' => {
                out.push(Token {
                    at,
                    kind: Tok::LBracket,
                });
                i += 1;
            }
            b']' => {
                out.push(Token {
                    at,
                    kind: Tok::RBracket,
                });
                i += 1;
            }
            b'{' => {
                out.push(Token {
                    at,
                    kind: Tok::LBrace,
                });
                i += 1;
            }
            b'}' => {
                out.push(Token {
                    at,
                    kind: Tok::RBrace,
                });
                i += 1;
            }
            b',' => {
                out.push(Token {
                    at,
                    kind: Tok::Comma,
                });
                i += 1;
            }
            b':' => {
                out.push(Token {
                    at,
                    kind: Tok::Colon,
                });
                i += 1;
            }
            b'+' => {
                out.push(Token {
                    at,
                    kind: Tok::Plus,
                });
                i += 1;
            }
            b'.' => {
                if bytes.get(i + 1) == Some(&b'.') {
                    out.push(Token {
                        at,
                        kind: Tok::DotDot,
                    });
                    i += 2;
                } else {
                    out.push(Token { at, kind: Tok::Dot });
                    i += 1;
                }
            }
            b'=' => {
                out.push(Token { at, kind: Tok::Eq });
                i += 1;
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token { at, kind: Tok::Ne });
                    i += 2;
                } else {
                    return Err(LexError {
                        at,
                        msg: "`!` must be followed by `=`".to_string(),
                    });
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token { at, kind: Tok::Le });
                    i += 2;
                } else {
                    out.push(Token { at, kind: Tok::Lt });
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token { at, kind: Tok::Ge });
                    i += 2;
                } else {
                    out.push(Token { at, kind: Tok::Gt });
                    i += 1;
                }
            }
            b'-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token {
                        at,
                        kind: Tok::Arrow,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        at,
                        kind: Tok::Minus,
                    });
                    i += 1;
                }
            }
            b'"' | b'\'' => {
                let quote = b;
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(LexError {
                                at,
                                msg: "unterminated string literal".to_string(),
                            });
                        }
                        Some(&c) if c == quote => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            if let Some(&esc) = bytes.get(i + 1) {
                                s.push(esc as char);
                                i += 2;
                            } else {
                                return Err(LexError {
                                    at,
                                    msg: "dangling escape".to_string(),
                                });
                            }
                        }
                        Some(&c) => {
                            // Copy raw bytes (UTF-8 continuation safe since
                            // we only break on ASCII quote/backslash).
                            s.push(c as char);
                            i += 1;
                        }
                    }
                }
                out.push(Token {
                    at,
                    kind: Tok::Str(s),
                });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text = &src[start..i];
                    out.push(Token {
                        at,
                        kind: Tok::Float(text.parse().map_err(|e| LexError {
                            at,
                            msg: format!("bad float: {e}"),
                        })?),
                    });
                } else {
                    let text = &src[start..i];
                    out.push(Token {
                        at,
                        kind: Tok::Int(text.parse().map_err(|e| LexError {
                            at,
                            msg: format!("bad integer: {e}"),
                        })?),
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Token {
                    at,
                    kind: Tok::Ident(src[start..i].to_string()),
                });
            }
            other => {
                return Err(LexError {
                    at,
                    msg: format!("unexpected character `{}`", other as char),
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_q1_fragment() {
        let toks = kinds("select tuple (t: a.title) from a in Articles");
        assert_eq!(toks[0], Tok::Ident("select".into()));
        assert!(toks.contains(&Tok::Colon));
        assert!(toks.contains(&Tok::Dot));
        assert!(toks.contains(&Tok::Ident("Articles".into())));
    }

    #[test]
    fn path_variable_tokens() {
        let toks = kinds("my_article PATH_p.title(t)");
        assert_eq!(toks[0], Tok::Ident("my_article".into()));
        assert_eq!(toks[1], Tok::Ident("PATH_p".into()));
        assert_eq!(toks[2], Tok::Dot);
    }

    #[test]
    fn dotdot_and_arrow() {
        assert_eq!(kinds(".."), vec![Tok::DotDot]);
        assert_eq!(kinds("->"), vec![Tok::Arrow]);
        assert_eq!(kinds("- >"), vec![Tok::Minus, Tok::Gt]);
        assert_eq!(kinds(". ."), vec![Tok::Dot, Tok::Dot]);
    }

    #[test]
    fn strings_and_numbers() {
        assert_eq!(
            kinds(r#""SGML" 'x' 42 3.25"#),
            vec![
                Tok::Str("SGML".into()),
                Tok::Str("x".into()),
                Tok::Int(42),
                Tok::Float(3.25)
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("= != < <= > >="),
            vec![Tok::Eq, Tok::Ne, Tok::Lt, Tok::Le, Tok::Gt, Tok::Ge]
        );
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("a ! b").is_err());
        assert!(lex("§").is_err());
    }

    #[test]
    fn escaped_quote_in_string() {
        assert_eq!(kinds(r#""a\"b""#), vec![Tok::Str("a\"b".into())]);
    }
}
