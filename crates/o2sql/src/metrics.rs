//! Query-lifecycle metrics and the `EXPLAIN ANALYZE` profile.
//!
//! [`EngineMetrics`] bundles the registry handles an [`Engine`] records
//! into: per-phase histograms (parse → translate → algebraize → execute), a
//! query counter, and the shared [`AlgebraMetrics`](docql_algebra::AlgebraMetrics). The engine checks
//! [`EngineMetrics::enabled`] **once per query**; disabled, the query path
//! performs one relaxed atomic load and nothing else.
//!
//! [`QueryProfile`] is one profiled execution: the result, per-phase wall
//! times, and a [`PlanProfile`] per algebra plan in the query's set-op
//! chain — rendered by [`QueryProfile::render`] as the `EXPLAIN ANALYZE`
//! report.
//!
//! [`Engine`]: crate::Engine

use crate::engine::QueryResult;
use docql_algebra::{Algebraized, PlanProfile};
use docql_obs::{Counter, Histogram, MetricsRegistry, SharedRegistry};
use std::sync::Arc;
use std::time::Duration;

/// Registry handles for the query lifecycle, resolved once per store (not
/// per query). Shared across engines serving the same registry.
#[derive(Clone, Debug)]
pub struct EngineMetrics {
    /// The owning registry; its enable flag gates all recording.
    pub registry: SharedRegistry,
    /// Queries executed (any mode).
    pub queries: Counter,
    /// Nanoseconds lexing + parsing query text.
    pub parse_ns: Histogram,
    /// Nanoseconds translating the AST to the calculus (includes static
    /// typing work done during translation).
    pub translate_ns: Histogram,
    /// Nanoseconds in the §5.4 algebraization. Recorded only when the
    /// algebraization actually runs — memoised cached plans skip it.
    pub algebraize_ns: Histogram,
    /// Nanoseconds evaluating (interpreter or plan execution).
    pub execute_ns: Histogram,
    /// Plans costed by the statistics-driven planner (algebraizations run
    /// with a stats source attached).
    pub plans_costed: Counter,
    /// Cached plans invalidated by feedback re-planning (observed rows
    /// diverged from estimates while fresher statistics existed).
    pub replans: Counter,
    /// Estimate accuracy per executed cost-based plan: `100 × (observed
    /// rows + 1) / (estimated rows + 1)` — 100 is a perfect estimate,
    /// above is underestimation, below overestimation.
    pub estimate_error_pct: Histogram,
    /// Per-operator registry counters for algebra execution.
    pub algebra: docql_algebra::AlgebraMetrics,
}

impl EngineMetrics {
    /// Resolve (creating if absent) the engine metrics in `registry`.
    pub fn register(registry: SharedRegistry) -> EngineMetrics {
        let algebra = docql_algebra::AlgebraMetrics::register(&registry);
        EngineMetrics {
            queries: registry.counter("docql_queries_total"),
            parse_ns: registry.histogram("docql_query_parse_ns"),
            translate_ns: registry.histogram("docql_query_translate_ns"),
            algebraize_ns: registry.histogram("docql_query_algebraize_ns"),
            execute_ns: registry.histogram("docql_query_execute_ns"),
            plans_costed: registry.counter("docql_planner_plans_costed_total"),
            replans: registry.counter("docql_planner_replans_total"),
            estimate_error_pct: registry.histogram("docql_planner_estimate_error_pct"),
            algebra,
            registry,
        }
    }

    /// Free-standing metrics over a private, **enabled** registry (tests
    /// and embedders without a store).
    pub fn standalone() -> EngineMetrics {
        let registry = Arc::new(MetricsRegistry::new());
        registry.set_enabled(true);
        EngineMetrics::register(registry)
    }

    /// The per-query gate: one relaxed load on the owning registry.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.registry.enabled()
    }
}

/// One profiled query execution (`EXPLAIN ANALYZE`).
pub struct QueryProfile {
    /// The query result — profiling executes the query for real, so the
    /// rows are exactly what the unprofiled run returns.
    pub result: QueryResult,
    /// Wall time per lifecycle phase, in execution order.
    pub phases: Vec<(&'static str, Duration)>,
    /// One algebra plan + recorded per-operator statistics per node of the
    /// query's set-op chain (pre-order). Empty when the query fell back to
    /// the calculus interpreter.
    pub plans: Vec<(Arc<Algebraized>, PlanProfile)>,
    /// Why there are no plans (e.g. the query is not algebraizable), when
    /// applicable.
    pub note: Option<String>,
    /// Total wall time, parse through execute.
    pub total: Duration,
}

impl QueryProfile {
    /// Total index-hits and walk-fallbacks across all plans.
    pub fn scan_totals(&self) -> (u64, u64) {
        let mut hits = 0;
        let mut walks = 0;
        for (_, p) in &self.plans {
            let (h, w) = p.scan_totals();
            hits += h;
            walks += w;
        }
        (hits, walks)
    }

    /// Render the `EXPLAIN ANALYZE` report: phase timings, each plan tree
    /// annotated with per-operator calls/rows/time (and index-hit versus
    /// walk-fallback counts on scans), and result cardinality.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("EXPLAIN ANALYZE\n");
        for (name, d) in &self.phases {
            out.push_str(&format!("  {name:<10} {d:?}\n"));
        }
        out.push_str(&format!("  {:<10} {:?}\n", "total", self.total));
        if let Some(note) = &self.note {
            out.push_str(&format!("note: {note}\n"));
        }
        let n = self.plans.len();
        for (i, (a, p)) in self.plans.iter().enumerate() {
            match &a.estimates {
                Some(est) => {
                    out.push_str(&format!(
                        "plan {}/{n} ({} operators, {} branch(es), costed at stats v{}):\n",
                        i + 1,
                        a.plan.size(),
                        a.branches.len(),
                        est.stats_version
                    ));
                    out.push_str(&p.render_with_estimates(&a.plan, est));
                }
                None => {
                    out.push_str(&format!(
                        "plan {}/{n} ({} operators, {} branch(es)):\n",
                        i + 1,
                        a.plan.size(),
                        a.branches.len()
                    ));
                    out.push_str(&p.render(&a.plan));
                }
            }
        }
        let (hits, walks) = self.scan_totals();
        if hits != 0 || walks != 0 {
            out.push_str(&format!(
                "index scans: {hits} start value(s) answered from the path-extent index, {walks} by walk fallback\n"
            ));
        }
        if let Some(trip) = self.result.partial {
            out.push_str(&format!(
                "governance: partial result — {trip} (degrade mode; rows are a correct prefix)\n"
            ));
        }
        out.push_str(&format!(
            "result: {} row(s), {} column(s)\n",
            self.result.rows.len(),
            self.result.columns.len()
        ));
        out
    }
}
