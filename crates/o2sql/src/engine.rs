//! The query engine façade: parse → translate → (type-check) → evaluate.

use crate::cache::{CachedPlan, PlanCache};
use crate::metrics::{EngineMetrics, QueryProfile};
use crate::parser::parse;
use crate::translate::{translate, Translated};
use crate::O2sqlError;
use docql_algebra::{Algebraized, PlanProfile};
use docql_calculus::{infer_types, CalcValue, Evaluator, Interp, TypeInfo};
use docql_model::Instance;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

use crate::ast::SetOpKind;

/// Per-operator spans a traced query keeps individually; deeper plans
/// collapse the tail into one aggregate span (see
/// [`PlanProfile::op_spans`]). Generalized-path queries can fan out to
/// thousands of union branches, and an unbounded span list would dominate
/// both the tracing overhead and the flight-recorder ring's memory.
pub const MAX_TRACE_OP_SPANS: usize = 64;

/// A query result: labelled columns and deduplicated rows.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Column labels.
    pub columns: Vec<String>,
    /// Rows (sets — duplicates eliminated, order unspecified but stable).
    pub rows: Vec<Vec<CalcValue>>,
    /// `Some(trip)` when the query ran under a resource governor in
    /// **degrade** mode and a limit tripped: `rows` is then a correct but
    /// possibly incomplete prefix of the answer, flagged rather than
    /// silently truncated. `None` for every complete result.
    pub partial: Option<docql_guard::ExecError>,
}

impl QueryResult {
    /// Is this a flagged partial result (degrade mode, limit tripped)?
    pub fn is_partial(&self) -> bool {
        self.partial.is_some()
    }

    /// Single-column results as a vector of values.
    pub fn values(&self) -> Vec<CalcValue> {
        self.rows
            .iter()
            .filter_map(|r| r.first().cloned())
            .collect()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the result empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as simple aligned text (for the repro binary and examples).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.table_header());
        for r in self.rendered_rows() {
            out.push_str(&r);
            out.push('\n');
        }
        out
    }

    /// The two header lines of [`QueryResult::to_table`] (column names and
    /// the dash rule), newline-terminated.
    pub fn table_header(&self) -> String {
        let head = self.columns.join(" | ");
        let rule = "-".repeat(head.len().max(4));
        format!("{head}\n{rule}\n")
    }

    /// The body rows of [`QueryResult::to_table`], rendered and sorted but
    /// not newline-terminated. Shared with the serving tier's chunked
    /// streaming writer, which is what keeps streamed bodies byte-identical
    /// to in-process `to_table()` output.
    pub fn rendered_rows(&self) -> Vec<String> {
        let mut rendered: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                r.iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(" | ")
            })
            .collect();
        rendered.sort();
        rendered
    }
}

/// Evaluation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// The calculus interpreter (run-time path enumeration).
    #[default]
    Interpret,
    /// The §5.4 algebraization (schema-derived unions of path-free plans).
    Algebraic,
}

/// The O₂SQL engine over an instance.
pub struct Engine<'a> {
    instance: &'a Instance,
    interp: &'a Interp,
    /// Evaluation strategy.
    pub mode: Mode,
    /// Path-variable semantics (§5.2): restricted (default) or liberal.
    /// The algebraic mode only supports the restricted semantics — under
    /// the liberal one candidate sets are data-bounded and the paper notes
    /// the algebra "should include some form of transitive closure".
    pub semantics: docql_paths::PathSemantics,
    /// Path-extent index for the algebraic mode. When set, `IndexPathScan`
    /// operators read precomputed extents instead of walking the object
    /// graph; `None` (the default) makes every plan walk. The same compiled
    /// (and cached) plans serve both settings — the choice is resolved at
    /// evaluation time.
    pub extents: Option<&'a docql_paths::PathExtentIndex>,
    /// Query-lifecycle metrics. Like `extents`, instrumentation is attached
    /// per engine: `None` (the default) costs nothing, and an attached
    /// `EngineMetrics` whose registry is disabled costs one relaxed atomic
    /// load per query.
    pub metrics: Option<&'a EngineMetrics>,
    /// Resource governor for query execution: deadline, row budget, path
    /// fuel and cooperative cancellation (see [`docql_guard::Guard`]).
    /// `None` (the default) costs nothing on any execution path. Attach a
    /// fresh guard per query — trips are sticky. After evaluation the
    /// engine reads [`docql_guard::Guard::trip`] back: in strict mode a
    /// trip becomes [`crate::O2sqlError::Interrupted`], in degrade mode a
    /// flagged partial [`QueryResult`].
    pub guard: Option<&'a docql_guard::Guard>,
    /// Live statistics for cost-based planning. When set, algebraization
    /// chooses access paths, orders union branches and selection conjuncts
    /// by estimated cost, and records per-operator estimates in the plan;
    /// cached plans are stamped with the stats version they were planned
    /// against, and the engine invalidates a cached plan when observed
    /// rows diverge from its estimates while fresher statistics exist
    /// (feedback re-planning). `None` (the default) is the heuristic
    /// planner: textual order, no estimates.
    pub stats: Option<&'a dyn docql_algebra::StatsSource>,
    /// Structured trace under construction for this query (the flight
    /// recorder path). When attached, the engine stamps phase timings,
    /// plan-cache and re-plan outcomes, and per-operator spans with
    /// est-vs-actual rows into it. `None` (the default) costs nothing.
    pub trace: Option<&'a docql_obs::TraceBuilder>,
}

impl<'a> Engine<'a> {
    /// Engine with the interpreter strategy.
    pub fn new(instance: &'a Instance, interp: &'a Interp) -> Engine<'a> {
        Engine {
            instance,
            interp,
            mode: Mode::Interpret,
            semantics: docql_paths::PathSemantics::Restricted,
            extents: None,
            metrics: None,
            guard: None,
            stats: None,
            trace: None,
        }
    }

    /// Run a query under per-call limits: builds a fresh
    /// [`docql_guard::Guard`] from `limits` and evaluates with it attached
    /// (plain [`Engine::run`] when `limits` is all-`None`).
    pub fn run_with_limits(
        &self,
        src: &str,
        limits: &docql_guard::QueryLimits,
    ) -> Result<QueryResult, O2sqlError> {
        if limits.is_none() {
            return self.run(src);
        }
        let guard = docql_guard::Guard::new(limits);
        let limited = Engine {
            guard: Some(&guard),
            ..*self
        };
        limited.run(src)
    }

    /// Classify an evaluation outcome against the attached guard: the
    /// sticky trip is the authoritative signal (inner errors are stringly),
    /// so a tripped strict-mode guard yields
    /// [`O2sqlError::Interrupted`] whatever the inner rows said, and a
    /// tripped degrade-mode guard turns an `Ok` into a flagged partial.
    fn classify(
        &self,
        r: Result<Vec<Vec<CalcValue>>, O2sqlError>,
    ) -> Result<(Vec<Vec<CalcValue>>, Option<docql_guard::ExecError>), O2sqlError> {
        let Some(g) = self.guard else {
            return r.map(|rows| (rows, None));
        };
        match (r, g.trip()) {
            (Err(_), Some(e)) => Err(O2sqlError::Interrupted(e)),
            (Err(e), None) => Err(e),
            (Ok(rows), Some(e)) if g.degrades() => Ok((rows, Some(e))),
            (Ok(_), Some(e)) => Err(O2sqlError::Interrupted(e)),
            (Ok(rows), None) => Ok((rows, None)),
        }
    }

    /// The metrics to record into, if any — the per-query enable gate.
    #[inline]
    fn obs(&self) -> Option<&'a EngineMetrics> {
        self.metrics.filter(|m| m.enabled())
    }

    /// Parse, translate, and evaluate a query.
    pub fn run(&self, src: &str) -> Result<QueryResult, O2sqlError> {
        let translated = self.parse_translate(src)?;
        self.eval_translated(&translated)
    }

    /// Parse then translate, recording the two phase timings when metrics
    /// are attached and enabled, and into the trace when one is attached.
    fn parse_translate(&self, src: &str) -> Result<Translated, O2sqlError> {
        let m = self.obs();
        if m.is_none() && self.trace.is_none() {
            let ast = parse(src)?;
            return translate(&ast, self.instance.schema());
        }
        let t0 = Instant::now();
        let ast = parse(src)?;
        let parsed = t0.elapsed();
        let t1 = Instant::now();
        let translated = translate(&ast, self.instance.schema());
        let translated_d = t1.elapsed();
        if let Some(m) = m {
            m.parse_ns.record_duration(parsed);
            m.translate_ns.record_duration(translated_d);
        }
        if let Some(tb) = self.trace {
            tb.phase("parse", parsed);
            tb.phase("translate", translated_d);
        }
        translated
    }

    /// Run `f` as the execute phase: counts the query and records the
    /// execute histogram when metrics are attached and enabled, and stamps
    /// the execute phase into the trace when one is attached.
    fn timed_execute<T>(&self, f: impl FnOnce() -> Result<T, O2sqlError>) -> Result<T, O2sqlError> {
        let m = self.obs();
        if let Some(m) = m {
            m.queries.inc();
        }
        if m.is_none() && self.trace.is_none() {
            return f();
        }
        let t0 = Instant::now();
        let result = f();
        let elapsed = t0.elapsed();
        if let Some(m) = m {
            m.execute_ns.record_duration(elapsed);
        }
        if let Some(tb) = self.trace {
            tb.phase("execute", elapsed);
        }
        result
    }

    /// Evaluate a query through a plan cache: on a hit the lex → parse →
    /// translate (and, in algebraic mode, algebraization) work is skipped
    /// and only evaluation runs. Results are identical to [`Engine::run`].
    pub fn run_cached(&self, src: &str, cache: &PlanCache) -> Result<QueryResult, O2sqlError> {
        let plan = match self.trace {
            None => cache.get_or_compile(src, || self.compile_plan(src))?,
            // Traced path: the same lookup → compile → insert sequence
            // `get_or_compile` performs (hit/miss counters included), with
            // the outcome stamped into the trace.
            Some(tb) => match cache.lookup(src) {
                Some(plan) => {
                    tb.set_cache(true);
                    plan
                }
                None => {
                    tb.set_cache(false);
                    let plan = Arc::new(self.compile_plan(src)?);
                    cache.insert(src, Arc::clone(&plan));
                    plan
                }
            },
        };
        self.eval_plan(&plan)
    }

    /// Compile a query into a cacheable plan (parse + translate; algebraic
    /// plans are added lazily on the first algebraic run).
    pub fn compile_plan(&self, src: &str) -> Result<CachedPlan, O2sqlError> {
        Ok(CachedPlan::new(self.parse_translate(src)?))
    }

    /// Evaluate an already-compiled plan (see [`Engine::compile_plan`]).
    pub fn eval_plan(&self, plan: &CachedPlan) -> Result<QueryResult, O2sqlError> {
        match self.mode {
            Mode::Interpret => self.eval_translated(&plan.translated),
            Mode::Algebraic => {
                // Time the algebraization only when it actually runs; a
                // memoised plan would otherwise record a no-op sample on
                // every cached execution.
                let fresh = !plan.is_algebraized();
                let timed = fresh && (self.obs().is_some() || self.trace.is_some());
                let (plans, planned_version) = if timed {
                    let t0 = Instant::now();
                    let plans = plan.algebra_plans(self.instance.schema(), self.stats);
                    let elapsed = t0.elapsed();
                    if let Some(m) = self.obs() {
                        m.algebraize_ns.record_duration(elapsed);
                        if self.stats.is_some() && plans.is_ok() {
                            m.plans_costed.inc();
                        }
                    }
                    if let Some(tb) = self.trace {
                        tb.phase("algebraize", elapsed);
                    }
                    plans?
                } else {
                    plan.algebra_plans(self.instance.schema(), self.stats)?
                };
                // A traced run carries per-operator profiles (the same
                // shape `profile()` builds) so the trace gets operator
                // spans with est-vs-actual rows. Untimed: per-op clock
                // reads would blow the tracing overhead budget; op wall
                // times stay at zero unless metrics are also recording.
                // The profile numbering and span labels come from the
                // plan's cached trace shape, so a traced cached run adds
                // one zeroed allocation per plan, not a tree walk.
                let profiles: Option<Vec<PlanProfile>> = self.trace.map(|_| {
                    plans
                        .iter()
                        .map(|a| {
                            let ts = a.trace_shape(MAX_TRACE_OP_SPANS);
                            PlanProfile::from_shape(
                                Arc::clone(&ts.shape),
                                false,
                                MAX_TRACE_OP_SPANS,
                            )
                        })
                        .collect()
                });
                let (rows, partial) = self.classify(self.timed_execute(|| {
                    self.eval_rows_with(
                        &plan.translated,
                        Some(plans.as_slice()),
                        &mut 0,
                        profiles.as_deref(),
                    )
                }))?;
                if let (Some(tb), Some(profiles)) = (self.trace, &profiles) {
                    let mut spans = Vec::new();
                    for (a, p) in plans.iter().zip(profiles) {
                        let ts = a.trace_shape(MAX_TRACE_OP_SPANS);
                        spans.extend(p.op_spans_with_labels(&ts.labels, a.estimates.as_ref()));
                    }
                    tb.set_operators(spans);
                    if self.stats.is_some() {
                        tb.set_stats_version(planned_version);
                    }
                }
                self.check_replan(plan, &plans, planned_version, rows.len());
                Ok(QueryResult {
                    columns: plan.translated.columns.clone(),
                    rows,
                    partial,
                })
            }
        }
    }

    /// Feedback re-planning: compare the rows a cached plan actually
    /// produced against its planner estimates, and when they diverge by
    /// more than [`docql_algebra::REPLAN_DIVERGENCE`] *and* the store's
    /// statistics have moved since the plan was costed, invalidate the
    /// plan's algebra slot so the next run re-plans against fresh stats.
    /// Divergence alone (stats unchanged) never invalidates — re-planning
    /// on the same statistics would rebuild the same plan.
    fn check_replan(
        &self,
        plan: &CachedPlan,
        plans: &[Arc<Algebraized>],
        planned_version: u64,
        observed: usize,
    ) {
        let Some(stats) = self.stats else { return };
        let mut estimated = 0.0;
        let mut any = false;
        for a in plans {
            if let Some(e) = &a.estimates {
                estimated += e.root_rows();
                any = true;
            }
        }
        if !any {
            return;
        }
        // +1 on both sides: estimates and results of 0 are common and must
        // not divide by zero or declare infinite divergence against 1 row.
        let ratio = (observed as f64 + 1.0) / (estimated + 1.0);
        if let Some(m) = self.obs() {
            m.estimate_error_pct.record((ratio * 100.0) as u64);
        }
        let diverged = !(docql_algebra::REPLAN_DIVERGENCE.recip()
            ..=docql_algebra::REPLAN_DIVERGENCE)
            .contains(&ratio);
        if diverged && stats.version() != planned_version {
            plan.invalidate();
            if let Some(m) = self.obs() {
                m.replans.inc();
            }
            if let Some(tb) = self.trace {
                tb.set_replanned();
                tb.event(
                    "replan",
                    format!(
                        "estimated={estimated:.0} observed={observed} planned_version={planned_version} stats_version={}",
                        stats.version()
                    ),
                );
            }
        }
    }

    /// Parse and translate only — exposes the calculus query (for EXPLAIN,
    /// tests, and the bench harness).
    pub fn compile(&self, src: &str) -> Result<Translated, O2sqlError> {
        let ast = parse(src)?;
        translate(&ast, self.instance.schema())
    }

    /// EXPLAIN: the calculus translation and, when algebraizable, the
    /// compiled §5.4 plan tree.
    pub fn explain(&self, src: &str) -> Result<String, O2sqlError> {
        let ast = parse(src)?;
        let translated = translate(&ast, self.instance.schema())?;
        let mut out = String::new();
        out.push_str("calculus: ");
        out.push_str(&translated.query.to_string());
        out.push('\n');
        out.push_str(if self.extents.is_some() {
            "path-extent index: attached (IndexPathScan reads extents, walk on fallback)\n"
        } else {
            "path-extent index: not attached (every IndexPathScan walks)\n"
        });
        match self.stats {
            Some(s) => out.push_str(&format!(
                "planner: cost-based (stats version {})\n",
                s.version()
            )),
            None => out.push_str("planner: heuristic (no statistics attached)\n"),
        }
        match docql_algebra::algebraize_with_stats(
            &translated.query,
            self.instance.schema(),
            self.stats,
        ) {
            Ok(a) => {
                out.push_str(&format!(
                    "algebra plan ({} operators, {} branch(es)):
",
                    a.plan.size(),
                    a.branches.len()
                ));
                match &a.estimates {
                    Some(est) => out.push_str(&est.render(&a.plan)),
                    None => out.push_str(&a.plan.explain()),
                }
            }
            Err(e) => {
                out.push_str(&format!(
                    "not algebraizable: {e}
"
                ));
            }
        }
        Ok(out)
    }

    /// Static type-check (§4.2/§5.3): runs inference and reports errors —
    /// path patterns no schema path can satisfy, and collection
    /// constructors whose elements have no common supertype ("sets
    /// containing integers and characters are forbidden").
    pub fn check(&self, src: &str) -> Result<TypeInfo, O2sqlError> {
        let ast = parse(src)?;
        let translated = translate(&ast, self.instance.schema())?;
        let mut info = infer_types(&translated.query, self.instance.schema());
        check_constructors(
            &translated.query.body,
            &info.var_types.clone(),
            self.instance.schema(),
            &mut info.errors,
        );
        Ok(info)
    }

    fn eval_translated(&self, t: &Translated) -> Result<QueryResult, O2sqlError> {
        let (rows, partial) = self.classify(self.timed_execute(|| self.eval_rows(t)))?;
        Ok(QueryResult {
            columns: t.columns.clone(),
            rows,
            partial,
        })
    }

    fn eval_rows(&self, t: &Translated) -> Result<Vec<Vec<CalcValue>>, O2sqlError> {
        self.eval_rows_with(t, None, &mut 0, None)
    }

    /// Evaluate a translated query's set-op chain. When `plans` is given
    /// (the cached-plan path), the algebraic mode consumes one
    /// pre-algebraized plan per chain node in pre-order via `pos` instead
    /// of re-running the §5.4 algebraization. `profiles`, when given, is
    /// aligned with `plans` and attaches a per-operator profile to each
    /// plan execution (the `EXPLAIN ANALYZE` path).
    fn eval_rows_with(
        &self,
        t: &Translated,
        plans: Option<&[Arc<Algebraized>]>,
        pos: &mut usize,
        profiles: Option<&[PlanProfile]>,
    ) -> Result<Vec<Vec<CalcValue>>, O2sqlError> {
        let left = match self.mode {
            Mode::Interpret => {
                let mut ev = Evaluator::new(self.instance, self.interp);
                ev.semantics = self.semantics;
                ev.guard = self.guard;
                ev.eval_query(&t.query)
                    .map_err(|e| O2sqlError::Eval(e.to_string()))?
            }
            Mode::Algebraic => {
                if self.semantics == docql_paths::PathSemantics::Liberal {
                    return Err(O2sqlError::Eval(
                        "the algebraic mode requires the restricted path                          semantics (liberal candidate sets are data-bounded;                          §5.4)"
                            .to_string(),
                    ));
                }
                let ctx = docql_algebra::ExecCtx {
                    extents: self.extents,
                    profile: profiles.and_then(|ps| ps.get(*pos)),
                    metrics: self.obs().map(|m| &m.algebra),
                    guard: self.guard,
                };
                match plans.and_then(|ps| ps.get(*pos)) {
                    Some(plan) => {
                        *pos += 1;
                        docql_algebra::eval_plan_with(
                            plan,
                            &t.query,
                            self.instance,
                            self.interp,
                            ctx,
                        )
                        .map_err(|e| O2sqlError::Eval(e.to_string()))?
                    }
                    None => {
                        // Uncached run: algebraize now, with the same
                        // statistics a cached run would plan against.
                        let a = docql_algebra::algebraize_with_stats(
                            &t.query,
                            self.instance.schema(),
                            self.stats,
                        )
                        .map_err(|e| O2sqlError::Eval(e.to_string()))?;
                        docql_algebra::eval_plan_with(&a, &t.query, self.instance, self.interp, ctx)
                            .map_err(|e| O2sqlError::Eval(e.to_string()))?
                    }
                }
            }
        };
        match &t.set_op {
            None => Ok(left),
            Some((op, right)) => {
                let right_rows: BTreeSet<Vec<CalcValue>> = self
                    .eval_rows_with(right, plans, pos, profiles)?
                    .into_iter()
                    .collect();
                Ok(combine_set_op(*op, left, right_rows))
            }
        }
    }

    /// Profile one query end to end: parse, translate, algebraize, and
    /// execute it **algebraically** with a per-operator [`PlanProfile`]
    /// attached to every plan in the set-op chain, timing each phase. The
    /// result rows are the real query answer. Queries that cannot be
    /// algebraized fall back to the calculus interpreter and say so in
    /// [`QueryProfile::note`] (no per-operator statistics then — the
    /// interpreter has no plan).
    ///
    /// Profiling ignores `self.mode` (it exists to show plan behaviour) but
    /// honours `self.extents`, so the report reflects the index-versus-walk
    /// choices the store would actually make.
    pub fn profile(&self, src: &str) -> Result<QueryProfile, O2sqlError> {
        let t_total = Instant::now();
        let mut phases = Vec::new();
        let t0 = Instant::now();
        let ast = parse(src)?;
        phases.push(("parse", t0.elapsed()));
        let t0 = Instant::now();
        let translated = translate(&ast, self.instance.schema())?;
        phases.push(("translate", t0.elapsed()));

        // Algebraize the whole set-op chain up front (pre-order, the same
        // order eval_rows_with consumes).
        let t0 = Instant::now();
        let mut chain = Vec::new();
        let mut node = Some(&translated);
        let mut algebra_err = None;
        while let Some(t) = node {
            match docql_algebra::algebraize_with_stats(&t.query, self.instance.schema(), self.stats)
            {
                Ok(a) => chain.push(Arc::new(a)),
                Err(e) => {
                    algebra_err = Some(e);
                    break;
                }
            }
            node = t.set_op.as_ref().map(|(_, right)| &**right);
        }
        phases.push(("algebraize", t0.elapsed()));

        // Execution runs on a shadow engine so profiling works regardless
        // of the engine's configured mode.
        let mut shadow = Engine {
            instance: self.instance,
            interp: self.interp,
            mode: Mode::Algebraic,
            semantics: self.semantics,
            extents: self.extents,
            metrics: self.metrics,
            guard: self.guard,
            stats: self.stats,
            trace: self.trace,
        };
        let (rows, partial, plans, note) = match algebra_err {
            None => {
                let profiles: Vec<PlanProfile> =
                    chain.iter().map(|a| PlanProfile::new(&a.plan)).collect();
                let t0 = Instant::now();
                let (rows, partial) = shadow.classify(shadow.timed_execute(|| {
                    shadow.eval_rows_with(&translated, Some(&chain), &mut 0, Some(&profiles))
                }))?;
                phases.push(("execute", t0.elapsed()));
                let plans = chain.into_iter().zip(profiles).collect();
                (rows, partial, plans, None)
            }
            Some(e) => {
                shadow.mode = Mode::Interpret;
                let t0 = Instant::now();
                let (rows, partial) =
                    shadow.classify(shadow.timed_execute(|| shadow.eval_rows(&translated)))?;
                phases.push(("execute", t0.elapsed()));
                let note = format!(
                    "not algebraizable ({e}); executed by the calculus interpreter                      — no per-operator statistics"
                );
                (rows, partial, Vec::new(), Some(note))
            }
        };
        Ok(QueryProfile {
            result: QueryResult {
                columns: translated.columns.clone(),
                rows,
                partial,
            },
            phases,
            plans,
            note,
            total: t_total.elapsed(),
        })
    }

    /// `EXPLAIN ANALYZE`: profile the query (see [`Engine::profile`]) and
    /// render the report.
    pub fn explain_analyze(&self, src: &str) -> Result<String, O2sqlError> {
        Ok(self.profile(src)?.render())
    }
}

/// Combine a set-op chain node: `left` from the current query, `right_rows`
/// from the rest of the chain. Order of `left` is preserved; union appends
/// unseen right rows.
fn combine_set_op(
    op: SetOpKind,
    left: Vec<Vec<CalcValue>>,
    right_rows: BTreeSet<Vec<CalcValue>>,
) -> Vec<Vec<CalcValue>> {
    match op {
        SetOpKind::Difference => left
            .into_iter()
            .filter(|r| !right_rows.contains(r))
            .collect(),
        SetOpKind::Intersect => left
            .into_iter()
            .filter(|r| right_rows.contains(r))
            .collect(),
        SetOpKind::Union => {
            let mut seen: BTreeSet<Vec<CalcValue>> = left.iter().cloned().collect();
            let mut out = left;
            for r in right_rows {
                if seen.insert(r.clone()) {
                    out.push(r);
                }
            }
            out
        }
    }
}

/// §4.2 collection-construction rule: elements of a constructed list/set
/// must share a common supertype — in particular, unions never mix with
/// non-unions (rule 1), and unions join only without marker conflicts
/// (rule 2).
fn check_constructors(
    f: &docql_calculus::Formula,
    var_types: &std::collections::BTreeMap<docql_calculus::Var, docql_model::Type>,
    schema: &docql_model::Schema,
    errors: &mut Vec<String>,
) {
    use docql_calculus::{Atom, DataTerm, Formula};
    fn term_type(
        t: &DataTerm,
        var_types: &std::collections::BTreeMap<docql_calculus::Var, docql_model::Type>,
    ) -> Option<docql_model::Type> {
        use docql_model::{Type, Value};
        match t {
            DataTerm::Const(Value::Int(_)) => Some(Type::Integer),
            DataTerm::Const(Value::Float(_)) => Some(Type::Float),
            DataTerm::Const(Value::Bool(_)) => Some(Type::Boolean),
            DataTerm::Const(Value::Str(_)) => Some(Type::String),
            DataTerm::Var(v) => var_types.get(v).cloned(),
            _ => None,
        }
    }
    fn walk_term(
        t: &DataTerm,
        var_types: &std::collections::BTreeMap<docql_calculus::Var, docql_model::Type>,
        schema: &docql_model::Schema,
        errors: &mut Vec<String>,
    ) {
        match t {
            DataTerm::List(items) | DataTerm::Set(items) => {
                let ops = schema.type_ops();
                let mut joined: Option<docql_model::Type> = None;
                for item in items {
                    walk_term(item, var_types, schema, errors);
                    let Some(ty) = term_type(item, var_types) else {
                        continue;
                    };
                    joined = Some(match joined {
                        None => ty,
                        Some(prev) => match ops.common_supertype(&prev, &ty) {
                            Some(j) => j,
                            None => {
                                errors.push(format!(
                                    "collection constructor mixes {prev} and {ty},                                      which have no common supertype (§4.2)"
                                ));
                                return;
                            }
                        },
                    });
                }
            }
            DataTerm::Tuple(fields) => {
                for (_, x) in fields {
                    walk_term(x, var_types, schema, errors);
                }
            }
            DataTerm::Apply(_, args) => {
                for x in args {
                    walk_term(x, var_types, schema, errors);
                }
            }
            DataTerm::PathApp(base, _) => walk_term(base, var_types, schema, errors),
            _ => {}
        }
    }
    match f {
        Formula::Atom(a) => {
            let terms: Vec<&DataTerm> = match a {
                Atom::Eq(x, y) | Atom::In(x, y) | Atom::Subset(x, y) => vec![x, y],
                Atom::PathPred(t, _) => vec![t],
                Atom::Pred(_, args) => args.iter().collect(),
            };
            for t in terms {
                walk_term(t, var_types, schema, errors);
            }
        }
        Formula::And(fs) | Formula::Or(fs) => {
            for g in fs {
                check_constructors(g, var_types, schema, errors);
            }
        }
        Formula::Not(g) | Formula::Exists(_, g) | Formula::Forall(_, g) => {
            check_constructors(g, var_types, schema, errors);
        }
    }
}
