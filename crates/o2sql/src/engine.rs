//! The query engine façade: parse → translate → (type-check) → evaluate.

use crate::cache::{CachedPlan, PlanCache};
use crate::parser::parse;
use crate::translate::{translate, Translated};
use crate::O2sqlError;
use docql_algebra::Algebraized;
use docql_calculus::{infer_types, CalcValue, Evaluator, Interp, TypeInfo};
use docql_model::Instance;
use std::collections::BTreeSet;
use std::sync::Arc;

use crate::ast::SetOpKind;

/// A query result: labelled columns and deduplicated rows.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Column labels.
    pub columns: Vec<String>,
    /// Rows (sets — duplicates eliminated, order unspecified but stable).
    pub rows: Vec<Vec<CalcValue>>,
}

impl QueryResult {
    /// Single-column results as a vector of values.
    pub fn values(&self) -> Vec<CalcValue> {
        self.rows
            .iter()
            .filter_map(|r| r.first().cloned())
            .collect()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the result empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as simple aligned text (for the repro binary and examples).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(" | "));
        out.push('\n');
        out.push_str(&"-".repeat(self.columns.join(" | ").len().max(4)));
        out.push('\n');
        let mut rendered: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                r.iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(" | ")
            })
            .collect();
        rendered.sort();
        for r in rendered {
            out.push_str(&r);
            out.push('\n');
        }
        out
    }
}

/// Evaluation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// The calculus interpreter (run-time path enumeration).
    #[default]
    Interpret,
    /// The §5.4 algebraization (schema-derived unions of path-free plans).
    Algebraic,
}

/// The O₂SQL engine over an instance.
pub struct Engine<'a> {
    instance: &'a Instance,
    interp: &'a Interp,
    /// Evaluation strategy.
    pub mode: Mode,
    /// Path-variable semantics (§5.2): restricted (default) or liberal.
    /// The algebraic mode only supports the restricted semantics — under
    /// the liberal one candidate sets are data-bounded and the paper notes
    /// the algebra "should include some form of transitive closure".
    pub semantics: docql_paths::PathSemantics,
    /// Path-extent index for the algebraic mode. When set, `IndexPathScan`
    /// operators read precomputed extents instead of walking the object
    /// graph; `None` (the default) makes every plan walk. The same compiled
    /// (and cached) plans serve both settings — the choice is resolved at
    /// evaluation time.
    pub extents: Option<&'a docql_paths::PathExtentIndex>,
}

impl<'a> Engine<'a> {
    /// Engine with the interpreter strategy.
    pub fn new(instance: &'a Instance, interp: &'a Interp) -> Engine<'a> {
        Engine {
            instance,
            interp,
            mode: Mode::Interpret,
            semantics: docql_paths::PathSemantics::Restricted,
            extents: None,
        }
    }

    /// Parse, translate, and evaluate a query.
    pub fn run(&self, src: &str) -> Result<QueryResult, O2sqlError> {
        let ast = parse(src)?;
        let translated = translate(&ast, self.instance.schema())?;
        self.eval_translated(&translated)
    }

    /// Evaluate a query through a plan cache: on a hit the lex → parse →
    /// translate (and, in algebraic mode, algebraization) work is skipped
    /// and only evaluation runs. Results are identical to [`Engine::run`].
    pub fn run_cached(&self, src: &str, cache: &PlanCache) -> Result<QueryResult, O2sqlError> {
        let plan = cache.get_or_compile(src, || self.compile_plan(src))?;
        self.eval_plan(&plan)
    }

    /// Compile a query into a cacheable plan (parse + translate; algebraic
    /// plans are added lazily on the first algebraic run).
    pub fn compile_plan(&self, src: &str) -> Result<CachedPlan, O2sqlError> {
        let ast = parse(src)?;
        Ok(CachedPlan::new(translate(&ast, self.instance.schema())?))
    }

    /// Evaluate an already-compiled plan (see [`Engine::compile_plan`]).
    pub fn eval_plan(&self, plan: &CachedPlan) -> Result<QueryResult, O2sqlError> {
        match self.mode {
            Mode::Interpret => self.eval_translated(&plan.translated),
            Mode::Algebraic => {
                let plans = plan.algebra_plans(self.instance.schema())?;
                let mut pos = 0;
                let rows = self.eval_rows_with(&plan.translated, Some(plans), &mut pos)?;
                Ok(QueryResult {
                    columns: plan.translated.columns.clone(),
                    rows,
                })
            }
        }
    }

    /// Parse and translate only — exposes the calculus query (for EXPLAIN,
    /// tests, and the bench harness).
    pub fn compile(&self, src: &str) -> Result<Translated, O2sqlError> {
        let ast = parse(src)?;
        translate(&ast, self.instance.schema())
    }

    /// EXPLAIN: the calculus translation and, when algebraizable, the
    /// compiled §5.4 plan tree.
    pub fn explain(&self, src: &str) -> Result<String, O2sqlError> {
        let ast = parse(src)?;
        let translated = translate(&ast, self.instance.schema())?;
        let mut out = String::new();
        out.push_str("calculus: ");
        out.push_str(&translated.query.to_string());
        out.push('\n');
        match docql_algebra::algebraize(&translated.query, self.instance.schema()) {
            Ok(a) => {
                out.push_str(&format!(
                    "algebra plan ({} operators, {} branch(es)):
",
                    a.plan.size(),
                    a.branches.len()
                ));
                out.push_str(&a.plan.explain());
            }
            Err(e) => {
                out.push_str(&format!(
                    "not algebraizable: {e}
"
                ));
            }
        }
        Ok(out)
    }

    /// Static type-check (§4.2/§5.3): runs inference and reports errors —
    /// path patterns no schema path can satisfy, and collection
    /// constructors whose elements have no common supertype ("sets
    /// containing integers and characters are forbidden").
    pub fn check(&self, src: &str) -> Result<TypeInfo, O2sqlError> {
        let ast = parse(src)?;
        let translated = translate(&ast, self.instance.schema())?;
        let mut info = infer_types(&translated.query, self.instance.schema());
        check_constructors(
            &translated.query.body,
            &info.var_types.clone(),
            self.instance.schema(),
            &mut info.errors,
        );
        Ok(info)
    }

    fn eval_translated(&self, t: &Translated) -> Result<QueryResult, O2sqlError> {
        let rows = self.eval_rows(t)?;
        Ok(QueryResult {
            columns: t.columns.clone(),
            rows,
        })
    }

    fn eval_rows(&self, t: &Translated) -> Result<Vec<Vec<CalcValue>>, O2sqlError> {
        self.eval_rows_with(t, None, &mut 0)
    }

    /// Evaluate a translated query's set-op chain. When `plans` is given
    /// (the cached-plan path), the algebraic mode consumes one
    /// pre-algebraized plan per chain node in pre-order via `pos` instead
    /// of re-running the §5.4 algebraization.
    fn eval_rows_with(
        &self,
        t: &Translated,
        plans: Option<&[Arc<Algebraized>]>,
        pos: &mut usize,
    ) -> Result<Vec<Vec<CalcValue>>, O2sqlError> {
        let left = match self.mode {
            Mode::Interpret => {
                let mut ev = Evaluator::new(self.instance, self.interp);
                ev.semantics = self.semantics;
                ev.eval_query(&t.query)
                    .map_err(|e| O2sqlError::Eval(e.to_string()))?
            }
            Mode::Algebraic => {
                if self.semantics == docql_paths::PathSemantics::Liberal {
                    return Err(O2sqlError::Eval(
                        "the algebraic mode requires the restricted path                          semantics (liberal candidate sets are data-bounded;                          §5.4)"
                            .to_string(),
                    ));
                }
                let ctx = docql_algebra::ExecCtx {
                    extents: self.extents,
                };
                match plans.and_then(|ps| ps.get(*pos)) {
                    Some(plan) => {
                        *pos += 1;
                        docql_algebra::eval_plan_with(
                            plan,
                            &t.query,
                            self.instance,
                            self.interp,
                            ctx,
                        )
                        .map_err(|e| O2sqlError::Eval(e.to_string()))?
                    }
                    None => docql_algebra_eval(&t.query, self.instance, self.interp, ctx)?,
                }
            }
        };
        match &t.set_op {
            None => Ok(left),
            Some((op, right)) => {
                let right_rows: BTreeSet<Vec<CalcValue>> = self
                    .eval_rows_with(right, plans, pos)?
                    .into_iter()
                    .collect();
                Ok(match op {
                    SetOpKind::Difference => left
                        .into_iter()
                        .filter(|r| !right_rows.contains(r))
                        .collect(),
                    SetOpKind::Intersect => left
                        .into_iter()
                        .filter(|r| right_rows.contains(r))
                        .collect(),
                    SetOpKind::Union => {
                        let mut seen: BTreeSet<Vec<CalcValue>> = left.iter().cloned().collect();
                        let mut out = left;
                        for r in right_rows {
                            if seen.insert(r.clone()) {
                                out.push(r);
                            }
                        }
                        out
                    }
                })
            }
        }
    }
}

/// §4.2 collection-construction rule: elements of a constructed list/set
/// must share a common supertype — in particular, unions never mix with
/// non-unions (rule 1), and unions join only without marker conflicts
/// (rule 2).
fn check_constructors(
    f: &docql_calculus::Formula,
    var_types: &std::collections::BTreeMap<docql_calculus::Var, docql_model::Type>,
    schema: &docql_model::Schema,
    errors: &mut Vec<String>,
) {
    use docql_calculus::{Atom, DataTerm, Formula};
    fn term_type(
        t: &DataTerm,
        var_types: &std::collections::BTreeMap<docql_calculus::Var, docql_model::Type>,
    ) -> Option<docql_model::Type> {
        use docql_model::{Type, Value};
        match t {
            DataTerm::Const(Value::Int(_)) => Some(Type::Integer),
            DataTerm::Const(Value::Float(_)) => Some(Type::Float),
            DataTerm::Const(Value::Bool(_)) => Some(Type::Boolean),
            DataTerm::Const(Value::Str(_)) => Some(Type::String),
            DataTerm::Var(v) => var_types.get(v).cloned(),
            _ => None,
        }
    }
    fn walk_term(
        t: &DataTerm,
        var_types: &std::collections::BTreeMap<docql_calculus::Var, docql_model::Type>,
        schema: &docql_model::Schema,
        errors: &mut Vec<String>,
    ) {
        match t {
            DataTerm::List(items) | DataTerm::Set(items) => {
                let ops = schema.type_ops();
                let mut joined: Option<docql_model::Type> = None;
                for item in items {
                    walk_term(item, var_types, schema, errors);
                    let Some(ty) = term_type(item, var_types) else {
                        continue;
                    };
                    joined = Some(match joined {
                        None => ty,
                        Some(prev) => match ops.common_supertype(&prev, &ty) {
                            Some(j) => j,
                            None => {
                                errors.push(format!(
                                    "collection constructor mixes {prev} and {ty},                                      which have no common supertype (§4.2)"
                                ));
                                return;
                            }
                        },
                    });
                }
            }
            DataTerm::Tuple(fields) => {
                for (_, x) in fields {
                    walk_term(x, var_types, schema, errors);
                }
            }
            DataTerm::Apply(_, args) => {
                for x in args {
                    walk_term(x, var_types, schema, errors);
                }
            }
            DataTerm::PathApp(base, _) => walk_term(base, var_types, schema, errors),
            _ => {}
        }
    }
    match f {
        Formula::Atom(a) => {
            let terms: Vec<&DataTerm> = match a {
                Atom::Eq(x, y) | Atom::In(x, y) | Atom::Subset(x, y) => vec![x, y],
                Atom::PathPred(t, _) => vec![t],
                Atom::Pred(_, args) => args.iter().collect(),
            };
            for t in terms {
                walk_term(t, var_types, schema, errors);
            }
        }
        Formula::And(fs) | Formula::Or(fs) => {
            for g in fs {
                check_constructors(g, var_types, schema, errors);
            }
        }
        Formula::Not(g) | Formula::Exists(_, g) | Formula::Forall(_, g) => {
            check_constructors(g, var_types, schema, errors);
        }
    }
}

fn docql_algebra_eval(
    q: &docql_calculus::Query,
    instance: &Instance,
    interp: &Interp,
    ctx: docql_algebra::ExecCtx<'_>,
) -> Result<Vec<Vec<CalcValue>>, O2sqlError> {
    docql_algebra::eval_algebraic_with(q, instance, interp, ctx)
        .map_err(|e| O2sqlError::Eval(e.to_string()))
}
