//! Surface-language tests: translation shapes, evaluation over a small
//! hand-built instance, the liberal-semantics switch (hypertext navigation,
//! §5.2), and error reporting.

use docql_calculus::{CalcValue, Interp};
use docql_model::{ClassDef, Instance, Schema, Type, Value};
use docql_o2sql::{Engine, Mode, O2sqlError};
use docql_paths::PathSemantics;
use std::collections::BTreeSet;
use std::sync::Arc;

/// People with spouses: a two-object cycle (the paper's Alice example).
fn spouses() -> Instance {
    let schema = Arc::new(
        Schema::builder()
            .class(ClassDef::new(
                "Person",
                Type::tuple([("name", Type::String), ("spouse", Type::class("Person"))]),
            ))
            .root("Alice", Type::class("Person"))
            .build()
            .unwrap(),
    );
    let mut inst = Instance::new(schema);
    let alice = inst.new_object("Person", Value::Nil).unwrap();
    let bob = inst.new_object("Person", Value::Nil).unwrap();
    inst.set_value(
        alice,
        Value::tuple([("name", Value::str("Alice")), ("spouse", Value::Oid(bob))]),
    )
    .unwrap();
    inst.set_value(
        bob,
        Value::tuple([("name", Value::str("Bob")), ("spouse", Value::Oid(alice))]),
    )
    .unwrap();
    inst.set_root("Alice", Value::Oid(alice)).unwrap();
    inst
}

fn names(rows: &[Vec<CalcValue>]) -> BTreeSet<String> {
    rows.iter()
        .filter_map(|r| match &r[0] {
            CalcValue::Data(Value::Str(s)) => Some(s.clone()),
            _ => None,
        })
        .collect()
}

#[test]
fn restricted_semantics_stops_at_class_repeat() {
    // The paper's example: under the restricted semantics, `Alice P.name`
    // reaches Alice's name but NOT Alice's spouse's name (that would
    // dereference Person twice).
    let inst = spouses();
    let interp = Interp::with_builtins();
    let engine = Engine::new(&inst, &interp);
    let r = engine.run("select n from Alice PATH_p.name(n)").unwrap();
    assert_eq!(names(&r.rows), BTreeSet::from(["Alice".to_string()]));
}

#[test]
fn liberal_semantics_follows_objects_once() {
    let inst = spouses();
    let interp = Interp::with_builtins();
    let mut engine = Engine::new(&inst, &interp);
    engine.semantics = PathSemantics::Liberal;
    let r = engine.run("select n from Alice PATH_p.name(n)").unwrap();
    assert_eq!(
        names(&r.rows),
        BTreeSet::from(["Alice".to_string(), "Bob".to_string()]),
        "liberal navigation reaches the spouse but not the cycle"
    );
}

#[test]
fn explicit_deref_chains_extend_restricted_reach() {
    // "Queries going more in depth can still be specified using paths of
    // the form P → P'": two path variables, each restricted independently.
    let inst = spouses();
    let interp = Interp::with_builtins();
    let engine = Engine::new(&inst, &interp);
    let r = engine
        .run("select n from Alice PATH_p.spouse PATH_q.name(n)")
        .unwrap();
    assert!(names(&r.rows).contains("Bob"), "{:?}", r.rows);
}

#[test]
fn algebraic_mode_rejects_liberal_semantics() {
    let inst = spouses();
    let interp = Interp::with_builtins();
    let mut engine = Engine::new(&inst, &interp);
    engine.mode = Mode::Algebraic;
    engine.semantics = PathSemantics::Liberal;
    let err = engine
        .run("select n from Alice PATH_p.name(n)")
        .unwrap_err();
    assert!(matches!(err, O2sqlError::Eval(_)));
}

#[test]
fn translation_produces_single_head_for_select() {
    let inst = spouses();
    let interp = Interp::with_builtins();
    let engine = Engine::new(&inst, &interp);
    let t = engine
        .compile("select n from Alice PATH_p.name(n)")
        .unwrap();
    assert_eq!(t.query.head.len(), 1);
    assert_eq!(t.columns, vec!["result".to_string()]);
    assert!(t.set_op.is_none());
}

#[test]
fn bare_path_query_heads_are_pattern_variables() {
    let inst = spouses();
    let interp = Interp::with_builtins();
    let engine = Engine::new(&inst, &interp);
    let t = engine.compile("Alice PATH_p.name(n)").unwrap();
    assert_eq!(t.query.head.len(), 2, "PATH_p and n");
    assert_eq!(t.columns, vec!["PATH_p".to_string(), "n".to_string()]);
    let r = engine.run("Alice PATH_p.name(n)").unwrap();
    assert_eq!(r.rows.len(), 1);
    assert!(r.rows[0][0].as_path().is_some());
}

#[test]
fn set_operations_on_path_queries() {
    let inst = spouses();
    let interp = Interp::with_builtins();
    let engine = Engine::new(&inst, &interp);
    // Self-difference is empty; self-union/intersection are identity.
    let base = engine.run("Alice PATH_p").unwrap().rows.len();
    assert!(base > 0);
    assert_eq!(engine.run("Alice PATH_p - Alice PATH_p").unwrap().len(), 0);
    assert_eq!(
        engine.run("Alice PATH_p union Alice PATH_p").unwrap().len(),
        base
    );
    assert_eq!(
        engine
            .run("Alice PATH_p intersect Alice PATH_p")
            .unwrap()
            .len(),
        base
    );
}

#[test]
fn arity_mismatch_in_set_ops_is_a_type_error() {
    let inst = spouses();
    let interp = Interp::with_builtins();
    let engine = Engine::new(&inst, &interp);
    let err = engine
        .run("Alice PATH_p - Alice PATH_p.name(n)")
        .unwrap_err();
    assert!(matches!(err, O2sqlError::Type(_)), "{err}");
}

#[test]
fn where_clause_boolean_structure() {
    let inst = spouses();
    let interp = Interp::with_builtins();
    let engine = Engine::new(&inst, &interp);
    let r = engine
        .run(
            "select n from Alice PATH_p.name(n) \
             where n contains (\"Ali\" or \"Zzz\") and not n contains (\"Bob\")",
        )
        .unwrap();
    assert_eq!(names(&r.rows), BTreeSet::from(["Alice".to_string()]));
}

#[test]
fn comparisons_and_literals() {
    let inst = spouses();
    let interp = Interp::with_builtins();
    let engine = Engine::new(&inst, &interp);
    let r = engine
        .run("select n from Alice PATH_p.name(n) where n != \"Bob\"")
        .unwrap();
    assert_eq!(r.len(), 1);
    let r2 = engine
        .run("select n from Alice PATH_p.name(n) where n = \"Nobody\"")
        .unwrap();
    assert!(r2.is_empty());
}

#[test]
fn parse_error_positions_are_byte_offsets() {
    let inst = spouses();
    let interp = Interp::with_builtins();
    let engine = Engine::new(&inst, &interp);
    match engine.run("select § from x in Y") {
        Err(O2sqlError::Parse { at, .. }) => assert_eq!(at, 7),
        other => panic!("{other:?}"),
    }
}

#[test]
fn unknown_root_is_reported_by_name() {
    let inst = spouses();
    let interp = Interp::with_builtins();
    let engine = Engine::new(&inst, &interp);
    match engine.run("select x from x in Ghosts") {
        Err(O2sqlError::UnknownIdent(n)) => assert_eq!(n, "Ghosts"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn exists_iterator() {
    // exists(v in e : φ): does Alice have a spouse named Bob?
    let inst = spouses();
    let interp = Interp::with_builtins();
    let engine = Engine::new(&inst, &interp);
    let r = engine.run(
        "select n from Alice PATH_p.name(n) \
             where exists(s in Alice.spouse.name : s contains (\"Bob\"))",
    );
    // Alice.spouse.name is a string, not a collection — exists over it is
    // simply empty; use a collection form instead:
    assert!(r.is_ok());
    let schema = inst.schema();
    let _ = schema;
}

#[test]
fn exists_over_collections() {
    // A store-level test: articles with at least one section whose title
    // mentions SGML.
    use docql_model::{ClassDef, Schema, Type, Value};
    let schema = Arc::new(
        Schema::builder()
            .class(ClassDef::new("C", Type::Any))
            .root(
                "Docs",
                Type::list(Type::tuple([
                    ("name", Type::String),
                    ("tags", Type::list(Type::String)),
                ])),
            )
            .build()
            .unwrap(),
    );
    let mut inst = Instance::new(schema);
    inst.set_root(
        "Docs",
        Value::list([
            Value::tuple([
                ("name", Value::str("d1")),
                ("tags", Value::list([Value::str("sgml"), Value::str("db")])),
            ]),
            Value::tuple([
                ("name", Value::str("d2")),
                ("tags", Value::list([Value::str("xml")])),
            ]),
        ]),
    )
    .unwrap();
    let interp = Interp::with_builtins();
    let engine = Engine::new(&inst, &interp);
    let r = engine
        .run(
            "select d.name from d in Docs \
             where exists(t in d.tags : t = \"sgml\")",
        )
        .unwrap();
    assert_eq!(names(&r.rows), BTreeSet::from(["d1".to_string()]));
    // Negated exists.
    let r2 = engine
        .run(
            "select d.name from d in Docs \
             where not exists(t in d.tags : t = \"sgml\")",
        )
        .unwrap();
    assert_eq!(names(&r2.rows), BTreeSet::from(["d2".to_string()]));
    // The bound variable does not leak into the outer scope.
    let err = engine.run("select t from d in Docs where exists(t in d.tags : t = \"sgml\")");
    assert!(err.is_err(), "{err:?}");
}

#[test]
fn collection_constructor_type_check() {
    // §4.2: "sets containing integers and characters are forbidden".
    let inst = spouses();
    let interp = Interp::with_builtins();
    let engine = Engine::new(&inst, &interp);
    let bad = engine
        .check("select list(1, \"x\") from p in set(1)")
        .unwrap();
    assert!(
        bad.errors.iter().any(|e| e.contains("common supertype")),
        "{:?}",
        bad.errors
    );
    let good = engine
        .check("select list(1, 2.5) from p in set(1)")
        .unwrap();
    assert!(
        !good.errors.iter().any(|e| e.contains("common supertype")),
        "{:?}",
        good.errors
    );
}

#[test]
fn explain_shows_calculus_and_plan() {
    let inst = spouses();
    let interp = Interp::with_builtins();
    let engine = Engine::new(&inst, &interp);
    let text = engine
        .explain("select n from Alice PATH_p.name(n)")
        .unwrap();
    assert!(text.contains("calculus: {"), "{text}");
    assert!(text.contains("algebra plan"), "{text}");
    assert!(text.contains("Union"), "{text}");
}
