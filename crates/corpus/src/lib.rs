//! # docql-corpus — deterministic synthetic document corpora
//!
//! The paper publishes no corpus; these generators produce documents valid
//! against its DTDs at parameterised scale, with seeded randomness so every
//! run (tests, benches, EXPERIMENTS.md) sees the same data.
//!
//! * [`articles`] — documents valid against the Fig. 1 `article` DTD, with
//!   controllable section/subsection structure and planted phrases (so Q1/Q2
//!   style queries have known answers);
//! * [`letters`] — documents for the §4.4/Q6 letters DTD, with the
//!   `&`-connector preamble in both orders;
//! * [`mutate()`](mutate::mutate) — version-mutation operators (add a section, retitle,
//!   append a paragraph) for the Q4 structural-diff experiments;
//! * [`adversarial`] — corpora with skewed posting lengths, hot/cold path
//!   extents and deep nesting, where the heuristic planner provably picks
//!   the wrong conjunct order (the cost-based planner's stress tests).

pub mod adversarial;
pub mod articles;
pub mod knuth;
pub mod letters;
pub mod mutate;
pub mod rng;

pub use adversarial::{
    adversarial_corpus, adversarial_sgml, generate_adversarial, AdversarialParams, COMMON_TERMS,
    RARE_TERM,
};
pub use articles::{generate_article, ArticleParams};
pub use knuth::{knuth_instance, knuth_schema, KnuthParams};
pub use letters::{generate_letter, LetterParams};
pub use mutate::{mutate, Mutation};
pub use rng::SeededRng;
