//! Synthetic letters for the §4.4/Q6 ordered-tuple experiments.

use crate::rng::SeededRng;
use docql_sgml::{Document, Element, Node};

const PEOPLE: &[&str] = &[
    "alice", "bob", "carol", "dan", "erin", "frank", "grace", "heidi",
];

/// Parameters for one letter.
#[derive(Debug, Clone)]
pub struct LetterParams {
    /// Random seed.
    pub seed: u64,
    /// Force the preamble order: `Some(true)` = sender (`from`) first,
    /// `Some(false)` = recipient (`to`) first, `None` = random.
    pub sender_first: Option<bool>,
    /// Number of paragraphs.
    pub paras: usize,
}

impl Default for LetterParams {
    fn default() -> LetterParams {
        LetterParams {
            seed: 7,
            sender_first: None,
            paras: 2,
        }
    }
}

fn text_elem(name: &str, text: String) -> Element {
    Element {
        name: name.to_string(),
        attrs: Vec::new(),
        children: vec![Node::Text(text)],
    }
}

/// Generate one letter (valid against [`docql_sgml::fixtures::LETTER_DTD`]).
pub fn generate_letter(params: &LetterParams) -> Document {
    let mut rng = SeededRng::seed_from_u64(params.seed);
    let from = PEOPLE[rng.gen_range(0..PEOPLE.len())];
    let mut to = PEOPLE[rng.gen_range(0..PEOPLE.len())];
    while to == from {
        to = PEOPLE[rng.gen_range(0..PEOPLE.len())];
    }
    let sender_first = params.sender_first.unwrap_or_else(|| rng.gen_bool(0.5));
    let mut preamble = Element::new("preamble");
    let from_elem = text_elem("from", from.to_string());
    let to_elem = text_elem("to", to.to_string());
    if sender_first {
        preamble.children.push(Node::Element(from_elem));
        preamble.children.push(Node::Element(to_elem));
    } else {
        preamble.children.push(Node::Element(to_elem));
        preamble.children.push(Node::Element(from_elem));
    }
    let mut root = Element::new("letter");
    root.children.push(Node::Element(preamble));
    root.children.push(Node::Element(text_elem(
        "subject",
        format!("Letter {} from {from} to {to}", params.seed),
    )));
    for p in 0..params.paras.max(1) {
        root.children.push(Node::Element(text_elem(
            "para",
            format!("Paragraph {p} of letter {}.", params.seed),
        )));
    }
    Document { root }
}

#[cfg(test)]
mod tests {
    use super::*;
    use docql_sgml::{validate, Dtd};

    #[test]
    fn letters_are_valid() {
        let dtd = Dtd::parse(docql_sgml::fixtures::LETTER_DTD).unwrap();
        for seed in 0..10 {
            let doc = generate_letter(&LetterParams {
                seed,
                ..LetterParams::default()
            });
            let errs = validate(&doc, &dtd);
            assert!(errs.is_empty(), "seed {seed}: {errs:?}");
        }
    }

    #[test]
    fn order_is_controllable() {
        let f = generate_letter(&LetterParams {
            sender_first: Some(true),
            ..LetterParams::default()
        });
        let kids: Vec<&str> = f
            .root
            .find("preamble")
            .unwrap()
            .child_elements()
            .map(|e| e.name.as_str())
            .collect();
        assert_eq!(kids, vec!["from", "to"]);
        let t = generate_letter(&LetterParams {
            sender_first: Some(false),
            ..LetterParams::default()
        });
        let kids: Vec<&str> = t
            .root
            .find("preamble")
            .unwrap()
            .child_elements()
            .map(|e| e.name.as_str())
            .collect();
        assert_eq!(kids, vec!["to", "from"]);
    }

    #[test]
    fn sender_and_recipient_differ() {
        for seed in 0..20 {
            let doc = generate_letter(&LetterParams {
                seed,
                ..LetterParams::default()
            });
            let from = doc.root.find("from").unwrap().text_content();
            let to = doc.root.find("to").unwrap().text_content();
            assert_ne!(from, to);
        }
    }
}
