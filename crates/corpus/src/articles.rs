//! Synthetic articles valid against the paper's Fig. 1 DTD.

use crate::rng::SeededRng;
use docql_sgml::{Document, Element, Node};

/// Vocabulary for generated prose (database-paper flavoured, so textual
/// queries like `contains "SGML"` have non-trivial selectivity).
const WORDS: &[&str] = &[
    "structured",
    "documents",
    "can",
    "benefit",
    "from",
    "database",
    "support",
    "object",
    "oriented",
    "management",
    "systems",
    "query",
    "languages",
    "provide",
    "pattern",
    "matching",
    "facilities",
    "logical",
    "structure",
    "hierarchical",
    "elements",
    "attributes",
    "schema",
    "instances",
    "paths",
    "navigation",
    "retrieval",
    "indexing",
    "textual",
    "data",
    "model",
    "types",
    "union",
    "tuples",
    "lists",
    "ordered",
    "markup",
    "standard",
    "exchange",
];

/// Phrases planted with known probability so tests can predict answers.
const PLANTS: &[&str] = &["SGML", "OODBMS", "complex object", "HyTime"];

/// Generation parameters for one article.
#[derive(Debug, Clone)]
pub struct ArticleParams {
    /// Random seed (same seed → same document).
    pub seed: u64,
    /// Number of sections.
    pub sections: usize,
    /// Number of subsections per section that has them (every third section
    /// takes the subsection branch of the content model).
    pub subsections: usize,
    /// Number of authors.
    pub authors: usize,
    /// Words per paragraph.
    pub paragraph_words: usize,
    /// Plant the phrase pair "SGML"+"OODBMS" into section titles with
    /// period `n` (every n-th section; 0 = never).
    pub plant_every: usize,
}

impl Default for ArticleParams {
    fn default() -> ArticleParams {
        ArticleParams {
            seed: 42,
            sections: 5,
            subsections: 2,
            authors: 3,
            paragraph_words: 30,
            plant_every: 3,
        }
    }
}

fn words(rng: &mut SeededRng, n: usize) -> String {
    let mut out = String::new();
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        if rng.gen_range(0..12) == 0 {
            out.push_str(PLANTS[rng.gen_range(0..PLANTS.len())]);
        } else {
            out.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
        }
    }
    out
}

fn text_elem(name: &str, text: String) -> Element {
    Element {
        name: name.to_string(),
        attrs: Vec::new(),
        children: vec![Node::Text(text)],
    }
}

/// Generate one article as a document tree (already valid: no parsing
/// needed; `docql_sgml::validate` agrees by construction).
pub fn generate_article(params: &ArticleParams) -> Document {
    let mut rng = SeededRng::seed_from_u64(params.seed);
    let mut root = Element::new("article");
    root.attrs.push((
        "status".to_string(),
        if rng.gen_range(0..4) == 0 {
            "final"
        } else {
            "draft"
        }
        .to_string(),
    ));
    root.children.push(Node::Element(text_elem(
        "title",
        format!("Article {} on {}", params.seed, words(&mut rng, 4)),
    )));
    for a in 0..params.authors.max(1) {
        root.children.push(Node::Element(text_elem(
            "author",
            format!("Author {}.{}", params.seed, a),
        )));
    }
    root.children
        .push(Node::Element(text_elem("affil", "I.N.R.I.A.".to_string())));
    // A rare marker every tenth seed, giving text benches a selective term.
    let mut abstract_text = words(&mut rng, params.paragraph_words);
    if params.seed.is_multiple_of(10) {
        abstract_text.push_str(" zanzibar");
    }
    root.children
        .push(Node::Element(text_elem("abstract", abstract_text)));

    let mut label_counter = 0usize;
    for s in 0..params.sections.max(1) {
        let mut section = Element::new("section");
        let title = if params.plant_every != 0 && s % params.plant_every == 0 {
            format!("Section {s}: from SGML documents to an OODBMS")
        } else {
            format!("Section {s}: {}", words(&mut rng, 3))
        };
        section
            .children
            .push(Node::Element(text_elem("title", title)));
        let with_subsections = params.subsections > 0 && s % 3 == 2;
        // One figure (with an ID) per section so IDREFs resolve locally.
        label_counter += 1;
        let label = format!("fig{}-{}", params.seed, label_counter);
        let mut figure = Element::new("figure");
        figure.attrs.push(("label".to_string(), label.clone()));
        figure.children.push(Node::Element(Element::new("picture")));
        figure
            .children
            .push(Node::Element(text_elem("caption", words(&mut rng, 5))));
        let mut fig_body = Element::new("body");
        fig_body.children.push(Node::Element(figure));
        section.children.push(Node::Element(fig_body));
        let mk_para_body = |rng: &mut SeededRng, label: &str| {
            let mut p = text_elem("paragr", words(rng, params.paragraph_words));
            p.attrs.push(("reflabel".to_string(), label.to_string()));
            let mut b = Element::new("body");
            b.children.push(Node::Element(p));
            b
        };
        if with_subsections {
            // Branch a2: title, body*, subsectn+.
            for ss in 0..params.subsections {
                let mut sub = Element::new("subsectn");
                sub.children.push(Node::Element(text_elem(
                    "title",
                    format!("Subsection {s}.{ss}: {}", words(&mut rng, 2)),
                )));
                sub.children
                    .push(Node::Element(mk_para_body(&mut rng, &label)));
                section.children.push(Node::Element(sub));
            }
        } else {
            // Branch a1: title, body+.
            section
                .children
                .push(Node::Element(mk_para_body(&mut rng, &label)));
        }
        root.children.push(Node::Element(section));
    }
    root.children.push(Node::Element(text_elem(
        "acknowl",
        "Generated corpus document.".to_string(),
    )));
    Document { root }
}

#[cfg(test)]
mod tests {
    use super::*;
    use docql_sgml::{validate, Dtd};

    #[test]
    fn generated_articles_are_valid() {
        let dtd = Dtd::parse(docql_sgml::fixtures::ARTICLE_DTD).unwrap();
        for seed in 0..10 {
            let doc = generate_article(&ArticleParams {
                seed,
                sections: 7,
                ..ArticleParams::default()
            });
            let errs = validate(&doc, &dtd);
            assert!(errs.is_empty(), "seed {seed}: {errs:?}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = ArticleParams::default();
        assert_eq!(generate_article(&p), generate_article(&p));
        let p2 = ArticleParams { seed: 43, ..p };
        assert_ne!(
            generate_article(&ArticleParams::default()),
            generate_article(&p2)
        );
    }

    #[test]
    fn planting_controls_section_titles() {
        let doc = generate_article(&ArticleParams {
            sections: 6,
            plant_every: 2,
            ..ArticleParams::default()
        });
        let mut sections = Vec::new();
        doc.root.find_all("section", &mut sections);
        let planted = sections
            .iter()
            .filter(|s| {
                let t = s.find("title").unwrap().text_content();
                t.contains("SGML") && t.contains("OODBMS")
            })
            .count();
        assert_eq!(planted, 3, "sections 0, 2, 4");
    }

    #[test]
    fn subsection_sections_take_branch_a2() {
        let doc = generate_article(&ArticleParams {
            sections: 6,
            subsections: 2,
            ..ArticleParams::default()
        });
        let mut subs = Vec::new();
        doc.root.find_all("subsectn", &mut subs);
        assert_eq!(subs.len(), 4, "sections 2 and 5 carry 2 subsections each");
    }

    #[test]
    fn scales_with_parameters() {
        let small = generate_article(&ArticleParams {
            sections: 2,
            ..ArticleParams::default()
        });
        let large = generate_article(&ArticleParams {
            sections: 40,
            ..ArticleParams::default()
        });
        assert!(large.root.subtree_size() > small.root.subtree_size() * 5);
    }
}
