//! Adversarial corpora for the cost-based planner: documents engineered so
//! the *heuristic* planner (textual conjunct order, fan-out-blind) provably
//! picks a bad plan while live statistics reveal the cheap one.
//!
//! Three skews, all deterministic in the seed:
//!
//! * **Skewed posting lengths** — every document repeats the common terms
//!   ([`COMMON_TERMS`]) in every paragraph, while [`RARE_TERM`] appears in
//!   only one in [`AdversarialParams::rare_period`] documents. A query
//!   whose `contains` conjuncts are written common-first costs the
//!   heuristic a near-full scan per conjunct; posting lengths order the
//!   rare predicate first.
//! * **Hot/cold path extents** — each document fans out through
//!   `sections × subsections × paragraphs` (the hot path, a huge extent)
//!   while `affil`/`acknowl` stay single-valued (cold). A query that walks
//!   the hot path before applying a selective document filter multiplies
//!   the filter by the fan-out; extent cardinalities tell the planner to
//!   filter first.
//! * **Deep-nesting classes** — every section takes the `subsectn+` branch
//!   of the Fig. 1 content model, so the hot path is also the deep one:
//!   each wasted document costs a whole subtree walk, not one step.

use crate::rng::SeededRng;
use docql_sgml::{Document, Element, Node};

/// The selective term: planted in one in `rare_period` documents, once.
pub const RARE_TERM: &str = "quagga";

/// Terms present in (essentially) every document, many times — the long
/// postings the skew is measured against. They sit at the *end* of every
/// prose run (and nowhere in the filler vocabulary), so a common-term scan walks the
/// whole text just like a failing rare-term scan: the heuristic gets no
/// early-exit discount for evaluating the common predicates first.
pub const COMMON_TERMS: [&str; 3] = ["database", "structured", "documents"];

/// Filler vocabulary (no overlap with [`RARE_TERM`] or [`COMMON_TERMS`]).
const FILLER: &[&str] = &[
    "object",
    "query",
    "schema",
    "paths",
    "model",
    "markup",
    "elements",
    "nested",
    "systems",
    "algebra",
    "index",
    "retrieval",
];

/// Parameters for one adversarial corpus.
#[derive(Debug, Clone)]
pub struct AdversarialParams {
    /// Random seed (same seed → same corpus).
    pub seed: u64,
    /// Number of documents.
    pub docs: usize,
    /// One in this many documents carries [`RARE_TERM`] (0 = never).
    pub rare_period: usize,
    /// Sections per document (hot-path fan-out, first level).
    pub sections: usize,
    /// Subsections per section (second level; every section takes the
    /// deep `subsectn+` branch).
    pub subsections: usize,
    /// Paragraph bodies per subsection (third level).
    pub paragraphs: usize,
    /// Words per paragraph.
    pub paragraph_words: usize,
}

impl Default for AdversarialParams {
    fn default() -> AdversarialParams {
        AdversarialParams {
            seed: 1994,
            docs: 32,
            rare_period: 16,
            sections: 4,
            subsections: 3,
            paragraphs: 2,
            paragraph_words: 12,
        }
    }
}

impl AdversarialParams {
    /// Documents that carry [`RARE_TERM`] under these parameters.
    pub fn rare_doc_count(&self) -> usize {
        if self.rare_period == 0 {
            0
        } else {
            self.docs.div_ceil(self.rare_period)
        }
    }
}

fn text_elem(name: &str, text: String) -> Element {
    Element {
        name: name.to_string(),
        attrs: Vec::new(),
        children: vec![Node::Text(text)],
    }
}

/// A paragraph of filler prose ending with all of [`COMMON_TERMS`].
fn prose(rng: &mut SeededRng, words: usize) -> String {
    let mut out = String::new();
    for _ in 0..words {
        out.push_str(FILLER[rng.gen_range(0..FILLER.len())]);
        out.push(' ');
    }
    out.push_str(&COMMON_TERMS.join(" "));
    out
}

/// Generate document `i` of the corpus described by `params`.
pub fn generate_adversarial(params: &AdversarialParams, i: usize) -> Document {
    let mut rng = SeededRng::seed_from_u64(params.seed.wrapping_add(i as u64));
    let rare = params.rare_period != 0 && i.is_multiple_of(params.rare_period);
    let mut root = Element::new("article");
    root.attrs.push(("status".to_string(), "draft".to_string()));
    root.children.push(Node::Element(text_elem(
        "title",
        format!("Adversarial {i}: {}", prose(&mut rng, 3)),
    )));
    root.children
        .push(Node::Element(text_elem("author", format!("Author {i}"))));
    root.children
        .push(Node::Element(text_elem("affil", "I.N.R.I.A.".to_string())));
    // The rare term lives in the abstract — one short, document-level
    // field — so the selective predicate never needs the deep subtree.
    let mut abstract_text = prose(&mut rng, params.paragraph_words);
    if rare {
        abstract_text.push(' ');
        abstract_text.push_str(RARE_TERM);
    }
    root.children
        .push(Node::Element(text_elem("abstract", abstract_text)));

    for s in 0..params.sections.max(1) {
        let mut section = Element::new("section");
        section.children.push(Node::Element(text_elem(
            "title",
            format!("Section {s}: {}", prose(&mut rng, 2)),
        )));
        // One labelled figure per section, referenced by its paragraphs.
        let label = format!("adv{i}-{s}");
        let mut figure = Element::new("figure");
        figure.attrs.push(("label".to_string(), label.clone()));
        figure.children.push(Node::Element(Element::new("picture")));
        let mut fig_body = Element::new("body");
        fig_body.children.push(Node::Element(figure));
        section.children.push(Node::Element(fig_body));
        // Deep branch always: title, body*, subsectn+.
        for ss in 0..params.subsections.max(1) {
            let mut sub = Element::new("subsectn");
            sub.children.push(Node::Element(text_elem(
                "title",
                format!("Subsection {s}.{ss}"),
            )));
            for _ in 0..params.paragraphs.max(1) {
                let mut p = text_elem("paragr", prose(&mut rng, params.paragraph_words));
                p.attrs.push(("reflabel".to_string(), label.clone()));
                let mut b = Element::new("body");
                b.children.push(Node::Element(p));
                sub.children.push(Node::Element(b));
            }
            section.children.push(Node::Element(sub));
        }
        root.children.push(Node::Element(section));
    }
    root.children.push(Node::Element(text_elem(
        "acknowl",
        "Adversarial corpus document.".to_string(),
    )));
    Document { root }
}

/// The whole corpus as document trees, in index order.
pub fn adversarial_corpus(params: &AdversarialParams) -> Vec<Document> {
    (0..params.docs)
        .map(|i| generate_adversarial(params, i))
        .collect()
}

/// The whole corpus as SGML texts (for batch ingest).
pub fn adversarial_sgml(params: &AdversarialParams) -> Vec<String> {
    (0..params.docs)
        .map(|i| generate_adversarial(params, i).to_sgml())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use docql_sgml::{validate, Dtd};

    #[test]
    fn adversarial_docs_are_valid_and_deterministic() {
        let dtd = Dtd::parse(docql_sgml::fixtures::ARTICLE_DTD).unwrap();
        let params = AdversarialParams {
            docs: 8,
            ..AdversarialParams::default()
        };
        for (i, doc) in adversarial_corpus(&params).iter().enumerate() {
            let errs = validate(doc, &dtd);
            assert!(errs.is_empty(), "doc {i}: {errs:?}");
            assert_eq!(doc, &generate_adversarial(&params, i), "doc {i} replays");
        }
    }

    #[test]
    fn rare_term_is_skewed_and_common_terms_are_not() {
        let params = AdversarialParams {
            docs: 32,
            rare_period: 16,
            ..AdversarialParams::default()
        };
        let corpus = adversarial_corpus(&params);
        let with_rare = corpus
            .iter()
            .filter(|d| d.root.text_content().contains(RARE_TERM))
            .count();
        assert_eq!(with_rare, params.rare_doc_count());
        assert_eq!(with_rare, 2, "docs 0 and 16");
        for term in COMMON_TERMS {
            let with_common = corpus
                .iter()
                .filter(|d| d.root.text_content().contains(term))
                .count();
            assert_eq!(with_common, params.docs, "{term} is in every document");
        }
    }

    #[test]
    fn hot_path_fans_out_and_nests_deep() {
        let params = AdversarialParams::default();
        let doc = generate_adversarial(&params, 1);
        let mut subs = Vec::new();
        doc.root.find_all("subsectn", &mut subs);
        assert_eq!(subs.len(), params.sections * params.subsections);
        let mut paras = Vec::new();
        doc.root.find_all("paragr", &mut paras);
        assert_eq!(
            paras.len(),
            params.sections * params.subsections * params.paragraphs
        );
    }
}
