//! The §5.2 "Knuth books" object graph: a root of persistence holding
//! volumes that contain chapters (with reviews) that contain sections —
//! the structure behind the paper's navigation and typing examples.

use docql_model::{ClassDef, Instance, Schema, Type, Value};
use std::sync::Arc;

/// Shape parameters for the generated library.
#[derive(Debug, Clone, Copy)]
pub struct KnuthParams {
    /// Number of volumes.
    pub volumes: usize,
    /// Chapters per volume.
    pub chapters: usize,
    /// Sections per chapter.
    pub sections: usize,
}

impl Default for KnuthParams {
    fn default() -> KnuthParams {
        KnuthParams {
            volumes: 3,
            chapters: 3,
            sections: 2,
        }
    }
}

/// The schema: `Knuth_Books : list(Volume)`, volumes → chapters → sections;
/// only chapters carry `review` sets (the §5.3 typing example depends on
/// this asymmetry).
pub fn knuth_schema() -> Arc<Schema> {
    Arc::new(
        Schema::builder()
            .class(ClassDef::new(
                "Section",
                Type::tuple([("title", Type::String), ("author", Type::String)]),
            ))
            .class(ClassDef::new(
                "Chapter",
                Type::tuple([
                    ("title", Type::String),
                    ("review", Type::set(Type::String)),
                    ("sections", Type::list(Type::class("Section"))),
                ]),
            ))
            .class(ClassDef::new(
                "Volume",
                Type::tuple([
                    ("title", Type::String),
                    ("chapters", Type::list(Type::class("Chapter"))),
                ]),
            ))
            .root("Knuth_Books", Type::list(Type::class("Volume")))
            .build()
            .expect("knuth schema is well-formed"),
    )
}

/// Build the instance. Deterministic: titles carry their coordinates;
/// the first section of every chapter is authored by "Jo" (the paper's
/// example value), the first chapter of each volume reviewed by "D. Scott".
pub fn knuth_instance(params: &KnuthParams) -> Instance {
    let mut inst = Instance::new(knuth_schema());
    let mut volumes = Vec::new();
    for v in 0..params.volumes {
        let mut chapters = Vec::new();
        for c in 0..params.chapters {
            let mut sections = Vec::new();
            for s in 0..params.sections {
                let so = inst
                    .new_object(
                        "Section",
                        Value::tuple([
                            ("title", Value::str(format!("Section {v}.{c}.{s}"))),
                            ("author", Value::str(if s == 0 { "Jo" } else { "Don" })),
                        ]),
                    )
                    .expect("section");
                sections.push(Value::Oid(so));
            }
            let co = inst
                .new_object(
                    "Chapter",
                    Value::tuple([
                        ("title", Value::str(format!("Chapter {v}.{c}"))),
                        (
                            "review",
                            Value::set([Value::str(if c == 0 { "D. Scott" } else { "A. Turing" })]),
                        ),
                        ("sections", Value::List(sections)),
                    ]),
                )
                .expect("chapter");
            chapters.push(Value::Oid(co));
        }
        let vo = inst
            .new_object(
                "Volume",
                Value::tuple([
                    ("title", Value::str(format!("Volume {v}"))),
                    ("chapters", Value::List(chapters)),
                ]),
            )
            .expect("volume");
        volumes.push(Value::Oid(vo));
    }
    inst.set_root("Knuth_Books", Value::List(volumes))
        .expect("root");
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use docql_model::sym;

    #[test]
    fn builds_the_requested_shape() {
        let inst = knuth_instance(&KnuthParams {
            volumes: 2,
            chapters: 3,
            sections: 4,
        });
        // 2 volumes + 6 chapters + 24 sections.
        assert_eq!(inst.object_count(), 2 + 6 + 24);
        let Value::List(vols) = inst.root(sym("Knuth_Books")).unwrap() else {
            panic!()
        };
        assert_eq!(vols.len(), 2);
    }

    #[test]
    fn schema_asymmetry_only_chapters_review() {
        let schema = knuth_schema();
        let chapter = schema.class_type(sym("Chapter")).unwrap();
        let volume = schema.class_type(sym("Volume")).unwrap();
        assert!(chapter.field(sym("review")).is_some());
        assert!(volume.field(sym("review")).is_none());
    }

    #[test]
    fn deterministic() {
        let p = KnuthParams::default();
        let a = knuth_instance(&p);
        let b = knuth_instance(&p);
        assert_eq!(a.object_count(), b.object_count());
        for ((_, _, va), (_, _, vb)) in a.objects().zip(b.objects()) {
            assert_eq!(va, vb);
        }
    }
}
