//! Version-mutation operators for the Q4 structural-diff experiments:
//! "the difference operation will return the paths that are in the new
//! version … Supplementary conditions on data would allow the detection of
//! possible updates or moves."

use docql_sgml::{Document, Element, Node};

/// A structural edit producing a new document version.
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation {
    /// Append a new section with the given title (one paragraph inside).
    AddSection(String),
    /// Change the title of section `i` (0-based).
    RetitleSection(usize, String),
    /// Append a paragraph to section `i`.
    AppendParagraph(usize, String),
    /// Remove section `i`.
    RemoveSection(usize),
}

/// Apply a mutation, returning the new version (the input is unchanged).
pub fn mutate(doc: &Document, m: &Mutation) -> Document {
    let mut new = doc.clone();
    let root = &mut new.root;
    match m {
        Mutation::AddSection(title) => {
            let mut section = Element::new("section");
            section
                .children
                .push(Node::Element(text_elem("title", title.clone())));
            let mut body = Element::new("body");
            let mut para = text_elem("paragr", format!("Contents of {title}."));
            para.attrs.push((
                "reflabel".to_string(),
                first_label(root).unwrap_or_default(),
            ));
            body.children.push(Node::Element(para));
            section.children.push(Node::Element(body));
            // Insert before the trailing acknowl.
            let at = root
                .children
                .iter()
                .position(|c| matches!(c, Node::Element(e) if e.name == "acknowl"))
                .unwrap_or(root.children.len());
            root.children.insert(at, Node::Element(section));
        }
        Mutation::RetitleSection(i, title) => {
            if let Some(section) = nth_section_mut(root, *i) {
                for c in &mut section.children {
                    if let Node::Element(e) = c {
                        if e.name == "title" {
                            e.children = vec![Node::Text(title.clone())];
                            break;
                        }
                    }
                }
            }
        }
        Mutation::AppendParagraph(i, text) => {
            let label = first_label(root).unwrap_or_default();
            if let Some(section) = nth_section_mut(root, *i) {
                let mut body = Element::new("body");
                let mut para = text_elem("paragr", text.clone());
                para.attrs.push(("reflabel".to_string(), label));
                body.children.push(Node::Element(para));
                // Keep the content model happy: bodies precede subsections.
                let at = section
                    .children
                    .iter()
                    .position(|c| matches!(c, Node::Element(e) if e.name == "subsectn"))
                    .unwrap_or(section.children.len());
                section.children.insert(at, Node::Element(body));
            }
        }
        Mutation::RemoveSection(i) => {
            let mut seen = 0usize;
            root.children.retain(|c| {
                if let Node::Element(e) = c {
                    if e.name == "section" {
                        let keep = seen != *i;
                        seen += 1;
                        return keep;
                    }
                }
                true
            });
        }
    }
    new
}

fn text_elem(name: &str, text: String) -> Element {
    Element {
        name: name.to_string(),
        attrs: Vec::new(),
        children: vec![Node::Text(text)],
    }
}

fn nth_section_mut(root: &mut Element, i: usize) -> Option<&mut Element> {
    root.children
        .iter_mut()
        .filter_map(|c| match c {
            Node::Element(e) if e.name == "section" => Some(e),
            _ => None,
        })
        .nth(i)
}

fn first_label(root: &Element) -> Option<String> {
    let mut figs = Vec::new();
    root.find_all("figure", &mut figs);
    figs.iter().find_map(|f| f.attr("label").map(str::to_owned))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::articles::{generate_article, ArticleParams};
    use docql_sgml::{validate, Dtd};

    fn base() -> Document {
        generate_article(&ArticleParams::default())
    }

    fn dtd() -> Dtd {
        Dtd::parse(docql_sgml::fixtures::ARTICLE_DTD).unwrap()
    }

    #[test]
    fn mutations_preserve_validity() {
        let doc = base();
        for m in [
            Mutation::AddSection("A brand new section".to_string()),
            Mutation::RetitleSection(1, "Renamed".to_string()),
            Mutation::AppendParagraph(0, "Extra prose.".to_string()),
            Mutation::RemoveSection(1),
        ] {
            let new = mutate(&doc, &m);
            let errs = validate(&new, &dtd());
            assert!(errs.is_empty(), "{m:?}: {errs:?}");
            assert_ne!(new, doc, "{m:?} must change the document");
        }
    }

    #[test]
    fn add_section_grows_count() {
        let doc = base();
        let new = mutate(&doc, &Mutation::AddSection("New".to_string()));
        let count = |d: &Document| {
            let mut v = Vec::new();
            d.root.find_all("section", &mut v);
            v.len()
        };
        assert_eq!(count(&new), count(&doc) + 1);
    }

    #[test]
    fn retitle_changes_only_that_title() {
        let doc = base();
        let new = mutate(&doc, &Mutation::RetitleSection(2, "Changed".to_string()));
        let titles = |d: &Document| {
            let mut v = Vec::new();
            d.root.find_all("section", &mut v);
            v.iter()
                .map(|s| s.find("title").unwrap().text_content())
                .collect::<Vec<_>>()
        };
        let old_t = titles(&doc);
        let new_t = titles(&new);
        assert_eq!(new_t[2], "Changed");
        assert_eq!(old_t[0], new_t[0]);
        assert_eq!(old_t.len(), new_t.len());
    }

    #[test]
    fn remove_section_shrinks() {
        let doc = base();
        let new = mutate(&doc, &Mutation::RemoveSection(0));
        let mut v = Vec::new();
        new.root.find_all("section", &mut v);
        assert_eq!(v.len(), 4);
    }
}
