//! Execution governance for docql queries: deadlines, budgets, cooperative
//! cancellation, admission control, and deterministic fault injection.
//!
//! The query pipeline (algebra operators, the calculus interpreter, path
//! enumeration, text scans) is cooperative: long loops periodically consult a
//! [`Guard`] built from [`QueryLimits`]. A guard lives and dies with one
//! query on one thread, so its counters are plain [`Cell`]s — a check is a
//! non-atomic bump, with the expensive `Instant::now()` deadline read
//! amortized over [`TICK_MASK`]` + 1` ticks — and an unguarded query (no
//! limits set) pays one `Option` test per row. The only cross-thread piece
//! is the [`CancelToken`], which is atomic and clonable.
//!
//! A guard trips **sticky**: the first exceeded limit is recorded in the
//! guard and every later check short-circuits, so deep recursion unwinds
//! quickly once any loop notices. Consumers read the authoritative trip via
//! [`Guard::trip`] after evaluation; inner error channels only need to carry
//! an opaque marker. In degrade mode ([`QueryLimits::degrade`]) a tripped
//! check yields [`Flow::Stop`] instead of [`Flow::Abort`]: loops break and
//! keep the rows produced so far, and the engine flags the result partial.
//!
//! The crate is dependency-free (std only) so the leaf crates — `paths`,
//! `text`, `calculus` — can depend on it without cycles.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Which budget ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// The row/tuple budget ([`QueryLimits::row_budget`]).
    Rows,
    /// The path-step fuel ([`QueryLimits::path_fuel`]).
    PathFuel,
}

/// Structured outcome taxonomy for governed execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecError {
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// A work budget ran out before the query finished.
    BudgetExhausted(Resource),
    /// The query's [`CancelToken`] was cancelled.
    Cancelled,
    /// The admission gate refused the query (too many concurrent queries,
    /// and the bounded wait timed out).
    AdmissionRejected,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ExecError::BudgetExhausted(Resource::Rows) => write!(f, "row budget exhausted"),
            ExecError::BudgetExhausted(Resource::PathFuel) => {
                write!(f, "path-step fuel exhausted")
            }
            ExecError::Cancelled => write!(f, "query cancelled"),
            ExecError::AdmissionRejected => {
                write!(f, "admission rejected: too many concurrent queries")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// What a governed loop should do after charging work to the guard.
#[must_use]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Budget remains — keep going.
    Continue,
    /// A limit tripped and the guard is in degrade mode: break out of the
    /// loop keeping the rows produced so far (the result will be flagged
    /// partial via [`Guard::trip`]).
    Stop,
    /// A limit tripped in strict mode: abort evaluation with this error.
    Abort(ExecError),
}

impl Flow {
    /// True unless the flow is [`Flow::Continue`].
    #[inline]
    pub fn interrupted(self) -> bool {
        !matches!(self, Flow::Continue)
    }
}

/// Clonable cooperative cancellation handle. Cancelling is a single store;
/// guarded loops observe it within one amortization window.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation of every query carrying a clone of this token.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Has [`CancelToken::cancel`] been called?
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// An external cancellation probe, consulted by the [`Guard`] at amortized
/// check boundaries (every [`TICK_MASK`]` + 1` charged units — the probe
/// may cost a syscall, unlike the [`CancelToken`]'s single atomic load).
/// Returning `true` cancels the query exactly as the token does.
///
/// The serving tier uses this to detect client disconnects mid-query: the
/// probe peeks the connection socket, and an abandoned query stops burning
/// its budget within one amortization window instead of running to
/// completion for a peer that already hung up.
#[derive(Clone)]
pub struct CancelProbe(Arc<dyn Fn() -> bool + Send + Sync>);

impl CancelProbe {
    /// Wrap a probe callback. `f` must be cheap-ish (it runs about once per
    /// 256 charged work units) and must never panic or block.
    pub fn new(f: impl Fn() -> bool + Send + Sync + 'static) -> CancelProbe {
        CancelProbe(Arc::new(f))
    }

    /// Consult the probe: `true` means "cancel now".
    #[inline]
    pub fn should_cancel(&self) -> bool {
        (self.0)()
    }
}

impl std::fmt::Debug for CancelProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CancelProbe(..)")
    }
}

/// Per-call (or per-store default) resource limits. All fields optional;
/// `QueryLimits::default()` governs nothing.
#[derive(Debug, Clone, Default)]
pub struct QueryLimits {
    /// Wall-clock budget, measured from [`Guard::new`].
    pub deadline: Option<Duration>,
    /// Maximum rows/tuples materialized across all operator loops.
    pub row_budget: Option<u64>,
    /// Maximum path steps (graph-walk visits + enumeration steps).
    pub path_fuel: Option<u64>,
    /// On trip, return a flagged partial result instead of an error.
    pub degrade: bool,
    /// Cooperative cancellation handle shared with the caller.
    pub cancel: Option<CancelToken>,
    /// External cancellation probe (e.g. a socket-disconnect peek),
    /// consulted at amortized check boundaries. See [`CancelProbe`].
    pub probe: Option<CancelProbe>,
    /// Deterministic fault-injection seed (tests/CI only): operator
    /// boundaries consult a SplitMix64 stream to inject panics and forced
    /// budget trips.
    pub fault_seed: Option<u64>,
}

impl QueryLimits {
    /// No limits at all.
    pub fn none() -> QueryLimits {
        QueryLimits::default()
    }

    /// True when no field governs anything (a guard would be inert).
    pub fn is_none(&self) -> bool {
        self.deadline.is_none()
            && self.row_budget.is_none()
            && self.path_fuel.is_none()
            && self.cancel.is_none()
            && self.probe.is_none()
            && self.fault_seed.is_none()
    }

    /// Set the wall-clock deadline.
    pub fn with_deadline(mut self, d: Duration) -> QueryLimits {
        self.deadline = Some(d);
        self
    }

    /// Set the row/tuple budget.
    pub fn with_row_budget(mut self, n: u64) -> QueryLimits {
        self.row_budget = Some(n);
        self
    }

    /// Set the path-step fuel.
    pub fn with_path_fuel(mut self, n: u64) -> QueryLimits {
        self.path_fuel = Some(n);
        self
    }

    /// Return flagged partial results on trip instead of erroring.
    pub fn with_degrade(mut self) -> QueryLimits {
        self.degrade = true;
        self
    }

    /// Attach a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> QueryLimits {
        self.cancel = Some(token);
        self
    }

    /// Attach an external cancellation probe (see [`CancelProbe`]).
    pub fn with_probe(mut self, probe: CancelProbe) -> QueryLimits {
        self.probe = Some(probe);
        self
    }

    /// Attach a deterministic fault-injection seed.
    pub fn with_fault_seed(mut self, seed: u64) -> QueryLimits {
        self.fault_seed = Some(seed);
        self
    }

    /// Per-call limits override per-store defaults field-wise: any field the
    /// call leaves unset falls back to the default's value.
    pub fn or(mut self, defaults: &QueryLimits) -> QueryLimits {
        if self.deadline.is_none() {
            self.deadline = defaults.deadline;
        }
        if self.row_budget.is_none() {
            self.row_budget = defaults.row_budget;
        }
        if self.path_fuel.is_none() {
            self.path_fuel = defaults.path_fuel;
        }
        if self.cancel.is_none() {
            self.cancel = defaults.cancel.clone();
        }
        if self.probe.is_none() {
            self.probe = defaults.probe.clone();
        }
        if self.fault_seed.is_none() {
            self.fault_seed = defaults.fault_seed;
        }
        self.degrade |= defaults.degrade;
        self
    }
}

/// Deadline/cancel checks run every `TICK_MASK + 1` charged units.
pub const TICK_MASK: u64 = 0xFF;

const TRIP_NONE: u8 = 0;
const TRIP_DEADLINE: u8 = 1;
const TRIP_ROWS: u8 = 2;
const TRIP_FUEL: u8 = 3;
const TRIP_CANCELLED: u8 = 4;

fn trip_code(e: ExecError) -> u8 {
    match e {
        ExecError::DeadlineExceeded => TRIP_DEADLINE,
        ExecError::BudgetExhausted(Resource::Rows) => TRIP_ROWS,
        ExecError::BudgetExhausted(Resource::PathFuel) => TRIP_FUEL,
        ExecError::Cancelled => TRIP_CANCELLED,
        // The gate rejects before a guard exists; never recorded as a trip.
        ExecError::AdmissionRejected => TRIP_CANCELLED,
    }
}

fn trip_error(code: u8) -> Option<ExecError> {
    match code {
        TRIP_DEADLINE => Some(ExecError::DeadlineExceeded),
        TRIP_ROWS => Some(ExecError::BudgetExhausted(Resource::Rows)),
        TRIP_FUEL => Some(ExecError::BudgetExhausted(Resource::PathFuel)),
        TRIP_CANCELLED => Some(ExecError::Cancelled),
        _ => None,
    }
}

/// One query's live governance state, built from [`QueryLimits`] at query
/// start and threaded by reference through evaluation.
#[derive(Debug)]
pub struct Guard {
    deadline: Option<Instant>,
    row_budget: Option<u64>,
    path_fuel: Option<u64>,
    cancel: Option<CancelToken>,
    probe: Option<CancelProbe>,
    degrade: bool,
    /// Rows charged so far.
    rows: Cell<u64>,
    /// Path steps charged so far.
    fuel: Cell<u64>,
    /// Charge events since the last deadline/cancel check.
    ticks: Cell<u64>,
    /// First trip, sticky (`TRIP_*` code).
    trip: Cell<u8>,
    fault: Option<FaultStream>,
}

impl Guard {
    /// Start governing: the deadline clock begins now.
    pub fn new(limits: &QueryLimits) -> Guard {
        Guard {
            deadline: limits.deadline.map(|d| Instant::now() + d),
            row_budget: limits.row_budget,
            path_fuel: limits.path_fuel,
            cancel: limits.cancel.clone(),
            probe: limits.probe.clone(),
            degrade: limits.degrade,
            rows: Cell::new(0),
            fuel: Cell::new(0),
            ticks: Cell::new(0),
            trip: Cell::new(TRIP_NONE),
            fault: limits.fault_seed.map(FaultStream::new),
        }
    }

    /// The first limit that tripped, if any. Authoritative: engines read
    /// this after evaluation to build typed errors / partial flags instead
    /// of parsing stringly inner errors.
    pub fn trip(&self) -> Option<ExecError> {
        trip_error(self.trip.get())
    }

    /// One load; true once any limit tripped. Recursive walkers use this to
    /// unwind fast without threading [`Flow`] everywhere.
    #[inline]
    pub fn tripped(&self) -> bool {
        self.trip.get() != TRIP_NONE
    }

    /// Degrade mode: trips stop loops (partial results) rather than abort.
    #[inline]
    pub fn degrades(&self) -> bool {
        self.degrade
    }

    /// (rows charged, path steps charged) so far.
    pub fn consumed(&self) -> (u64, u64) {
        (self.rows.get(), self.fuel.get())
    }

    fn record(&self, e: ExecError) -> Flow {
        // First writer wins; later trips keep the original cause.
        if self.trip.get() == TRIP_NONE {
            self.trip.set(trip_code(e));
        }
        self.resolved()
    }

    /// The sticky trip as a Flow (Continue when untripped).
    #[inline]
    fn resolved(&self) -> Flow {
        match self.trip() {
            None => Flow::Continue,
            Some(_) if self.degrade => Flow::Stop,
            Some(e) => Flow::Abort(e),
        }
    }

    /// Deadline amortized, cancellation immediate: the [`CancelToken`] is
    /// one relaxed atomic load, so it is consulted on **every** check — a
    /// cancelled query stops within one charged unit, not one amortization
    /// window. The expensive reads (`Instant::now()`, the external
    /// [`CancelProbe`]) still run only every [`TICK_MASK`]` + 1` calls.
    #[inline]
    pub fn check(&self) -> Flow {
        if self.tripped() {
            return self.resolved();
        }
        if let Some(tok) = &self.cancel {
            if tok.is_cancelled() {
                return self.record(ExecError::Cancelled);
            }
        }
        let t = self.ticks.get();
        self.ticks.set(t.wrapping_add(1));
        if t & TICK_MASK == 0 {
            return self.check_now();
        }
        Flow::Continue
    }

    /// Deadline + cancellation + probe, unamortized (query boundaries,
    /// expensive operator starts, every `TICK_MASK + 1`-th charged unit).
    pub fn check_now(&self) -> Flow {
        if self.tripped() {
            return self.resolved();
        }
        if let Some(tok) = &self.cancel {
            if tok.is_cancelled() {
                return self.record(ExecError::Cancelled);
            }
        }
        if let Some(probe) = &self.probe {
            if probe.should_cancel() {
                // Mirror the external decision onto the token so every
                // clone of it (other observers of this query) sees it too.
                if let Some(tok) = &self.cancel {
                    tok.cancel();
                }
                return self.record(ExecError::Cancelled);
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return self.record(ExecError::DeadlineExceeded);
            }
        }
        Flow::Continue
    }

    /// Charge one materialized row/tuple, plus the amortized deadline tick.
    #[inline]
    pub fn row(&self) -> Flow {
        if self.tripped() {
            return self.resolved();
        }
        if let Some(budget) = self.row_budget {
            let used = self.rows.get();
            self.rows.set(used + 1);
            if used >= budget {
                return self.record(ExecError::BudgetExhausted(Resource::Rows));
            }
        }
        self.check()
    }

    /// Charge `n` path steps, plus the amortized deadline tick.
    #[inline]
    pub fn fuel(&self, n: u64) -> Flow {
        if self.tripped() {
            return self.resolved();
        }
        if let Some(budget) = self.path_fuel {
            let used = self.fuel.get().saturating_add(n);
            self.fuel.set(used);
            if used > budget {
                return self.record(ExecError::BudgetExhausted(Resource::PathFuel));
            }
        }
        self.check()
    }

    /// Fault-injection hook for operator boundaries. With no fault seed this
    /// is one `Option` test. With a seed, the deterministic stream may
    /// `panic!` (exercising `catch_unwind` isolation) or force a budget trip
    /// (returned as the usual [`Flow`]).
    #[inline]
    pub fn fault_point(&self, site: &'static str) -> Flow {
        let Some(fault) = &self.fault else {
            return Flow::Continue;
        };
        match fault.draw() {
            Fault::None => Flow::Continue,
            Fault::Panic => panic!("injected fault (docql-guard, site {site})"),
            Fault::Exhaust => {
                if self.tripped() {
                    self.resolved()
                } else {
                    self.record(ExecError::BudgetExhausted(Resource::Rows))
                }
            }
        }
    }
}

/// SplitMix64 — mirrored from `docql-prop` (which mirrors `docql-corpus`) so
/// this crate stays dependency-free. Same constants, same stream.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

enum Fault {
    None,
    Panic,
    Exhaust,
}

/// Deterministic per-guard fault stream: the n-th `draw` across all sites is
/// a pure function of (seed, n), so a failing seed replays exactly.
#[derive(Debug)]
struct FaultStream {
    seed: u64,
    calls: Cell<u64>,
}

impl FaultStream {
    fn new(seed: u64) -> FaultStream {
        FaultStream {
            seed,
            calls: Cell::new(0),
        }
    }

    fn draw(&self) -> Fault {
        let n = self.calls.get();
        self.calls.set(n + 1);
        let mut state = self.seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let x = splitmix64(&mut state);
        // ~1.5% panics, ~3% forced exhaustion per boundary crossing.
        match x % 64 {
            0 => Fault::Panic,
            1 | 2 => Fault::Exhaust,
            _ => Fault::None,
        }
    }
}

/// An injectable storage-I/O fault, drawn at write-ahead-log record
/// boundaries by the durable storage layer (`docql-durable`): the three
/// corruption shapes a real crash leaves behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// The record's frame was only partially written (crash mid-`write`).
    ShortWrite,
    /// A partial frame followed by stale garbage bytes (crash across a
    /// sector boundary over previously used space).
    TornTail,
    /// One byte of the frame flipped (media corruption; the checksum must
    /// catch it).
    FlipByte,
}

impl std::fmt::Display for IoFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoFault::ShortWrite => f.write_str("short write"),
            IoFault::TornTail => f.write_str("torn tail"),
            IoFault::FlipByte => f.write_str("flipped byte"),
        }
    }
}

/// Deterministic seed-driven stream of [`IoFault`]s, mirroring the query
/// fault stream above: the n-th `draw` is a pure function of `(seed, n)`,
/// so a failing seed replays exactly. Roughly one boundary in eight faults
/// (the three shapes equally likely), dense enough that a 64-seed sweep
/// exercises every shape.
#[derive(Debug)]
pub struct IoFaultStream {
    seed: u64,
    calls: Cell<u64>,
}

impl IoFaultStream {
    /// A stream over `seed`.
    pub fn new(seed: u64) -> IoFaultStream {
        IoFaultStream {
            seed,
            calls: Cell::new(0),
        }
    }

    /// The seed this stream draws from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Draw the fault decision for the next record boundary.
    pub fn draw(&self) -> Option<IoFault> {
        let x = self.next();
        match x % 24 {
            0 => Some(IoFault::ShortWrite),
            1 => Some(IoFault::TornTail),
            2 => Some(IoFault::FlipByte),
            _ => None,
        }
    }

    /// Deterministic auxiliary randomness (cut positions, garbage bytes),
    /// advancing the same stream as [`IoFaultStream::draw`].
    pub fn entropy(&self) -> u64 {
        self.next()
    }

    fn next(&self) -> u64 {
        let n = self.calls.get();
        self.calls.set(n + 1);
        let mut state = self.seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        splitmix64(&mut state)
    }
}

/// Admission control: a bounded-concurrency gate with a bounded wait.
/// Queries `admit()` before touching the store; over-limit arrivals block up
/// to `max_wait` for a permit, then fail with
/// [`ExecError::AdmissionRejected`]. Dropping the [`Permit`] releases the
/// slot. Writers are unaffected — the gate applies only where callers choose
/// to consult it (read-side serving paths).
#[derive(Debug)]
pub struct AdmissionGate {
    max: usize,
    max_wait: Duration,
    active: Mutex<usize>,
    freed: Condvar,
}

impl AdmissionGate {
    /// A gate admitting at most `max` concurrent holders; arrivals beyond
    /// that wait up to `max_wait` for a slot.
    pub fn new(max: usize, max_wait: Duration) -> AdmissionGate {
        AdmissionGate {
            max: max.max(1),
            max_wait,
            active: Mutex::new(0),
            freed: Condvar::new(),
        }
    }

    /// Acquire a slot or fail after the bounded wait.
    pub fn admit(&self) -> Result<Permit<'_>, ExecError> {
        let deadline = Instant::now() + self.max_wait;
        let mut active = self
            .active
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while *active >= self.max {
            let now = Instant::now();
            if now >= deadline {
                return Err(ExecError::AdmissionRejected);
            }
            let (guard, timeout) = self
                .freed
                .wait_timeout(active, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            active = guard;
            if timeout.timed_out() && *active >= self.max {
                return Err(ExecError::AdmissionRejected);
            }
        }
        *active += 1;
        Ok(Permit { gate: self })
    }

    /// Holders right now (diagnostics).
    pub fn active(&self) -> usize {
        *self
            .active
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// An admitted slot; dropping releases it and wakes one waiter.
#[derive(Debug)]
pub struct Permit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut active = self
            .gate
            .active
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *active = active.saturating_sub(1);
        drop(active);
        self.gate.freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unlimited_guard_never_trips() {
        let g = Guard::new(&QueryLimits::none());
        for _ in 0..10_000 {
            assert_eq!(g.row(), Flow::Continue);
            assert_eq!(g.fuel(3), Flow::Continue);
        }
        assert_eq!(g.trip(), None);
        assert!(!g.tripped());
    }

    #[test]
    fn row_budget_trips_sticky_and_strict() {
        let g = Guard::new(&QueryLimits::none().with_row_budget(5));
        for _ in 0..5 {
            assert_eq!(g.row(), Flow::Continue);
        }
        assert_eq!(
            g.row(),
            Flow::Abort(ExecError::BudgetExhausted(Resource::Rows))
        );
        // Sticky: every later check short-circuits to the same abort.
        assert_eq!(
            g.check(),
            Flow::Abort(ExecError::BudgetExhausted(Resource::Rows))
        );
        assert_eq!(g.trip(), Some(ExecError::BudgetExhausted(Resource::Rows)));
    }

    #[test]
    fn fuel_budget_counts_batches() {
        let g = Guard::new(&QueryLimits::none().with_path_fuel(10));
        assert_eq!(g.fuel(4), Flow::Continue);
        assert_eq!(g.fuel(6), Flow::Continue);
        assert_eq!(
            g.fuel(1),
            Flow::Abort(ExecError::BudgetExhausted(Resource::PathFuel))
        );
    }

    #[test]
    fn degrade_mode_stops_instead_of_aborting() {
        let g = Guard::new(&QueryLimits::none().with_row_budget(2).with_degrade());
        assert_eq!(g.row(), Flow::Continue);
        assert_eq!(g.row(), Flow::Continue);
        assert_eq!(g.row(), Flow::Stop);
        assert_eq!(g.trip(), Some(ExecError::BudgetExhausted(Resource::Rows)));
    }

    #[test]
    fn deadline_trips_within_one_window() {
        let g = Guard::new(&QueryLimits::none().with_deadline(Duration::from_millis(5)));
        let start = Instant::now();
        loop {
            match g.check() {
                Flow::Continue => {}
                Flow::Abort(e) => {
                    assert_eq!(e, ExecError::DeadlineExceeded);
                    break;
                }
                Flow::Stop => unreachable!(),
            }
            assert!(start.elapsed() < Duration::from_secs(5), "never tripped");
        }
    }

    #[test]
    fn cancellation_is_observed_on_the_very_next_check() {
        // Regression: the token used to be consulted only every
        // `TICK_MASK + 1` ticks, so a cancelled streaming query could run
        // up to 256 more charged units before noticing. The token is one
        // relaxed load — it must be seen by the next check, whatever the
        // tick phase.
        let token = CancelToken::new();
        let g = Guard::new(&QueryLimits::none().with_cancel(token.clone()));
        // Put the tick counter mid-window (worst case for the old code).
        for _ in 0..=(TICK_MASK / 2) {
            assert_eq!(g.check(), Flow::Continue);
        }
        token.cancel();
        assert_eq!(
            g.check(),
            Flow::Abort(ExecError::Cancelled),
            "cancellation must land on the next check, not the next window"
        );
    }

    #[test]
    fn cancellation_latency_is_bounded_by_one_row() {
        let token = CancelToken::new();
        let g = Guard::new(&QueryLimits::none().with_cancel(token.clone()));
        let mut rows_after_cancel = 0u64;
        for i in 0..100_000u64 {
            if i == 1_000 {
                token.cancel();
            }
            match g.row() {
                Flow::Continue => {
                    if i >= 1_000 {
                        rows_after_cancel += 1;
                    }
                }
                Flow::Abort(ExecError::Cancelled) => break,
                other => panic!("unexpected flow {other:?}"),
            }
        }
        assert_eq!(
            rows_after_cancel, 0,
            "no extra row may be produced after cancellation"
        );
    }

    #[test]
    fn probe_cancels_at_the_amortized_boundary_and_fires_the_token() {
        use std::sync::atomic::{AtomicBool, AtomicU64};
        let hung_up = Arc::new(AtomicBool::new(false));
        let polls = Arc::new(AtomicU64::new(0));
        let token = CancelToken::new();
        let probe = {
            let hung_up = Arc::clone(&hung_up);
            let polls = Arc::clone(&polls);
            CancelProbe::new(move || {
                polls.fetch_add(1, Ordering::Relaxed);
                hung_up.load(Ordering::Relaxed)
            })
        };
        let g = Guard::new(
            &QueryLimits::none()
                .with_cancel(token.clone())
                .with_probe(probe),
        );
        for _ in 0..(TICK_MASK + 1) * 4 {
            assert_eq!(g.check(), Flow::Continue);
        }
        let polled_before = polls.load(Ordering::Relaxed);
        assert!(
            polled_before <= 8,
            "probe is amortized, not per-tick: {polled_before} polls"
        );
        hung_up.store(true, Ordering::Relaxed);
        let mut extra = 0u64;
        loop {
            match g.check() {
                Flow::Continue => extra += 1,
                Flow::Abort(ExecError::Cancelled) => break,
                other => panic!("unexpected flow {other:?}"),
            }
            assert!(extra <= TICK_MASK + 1, "probe not consulted in a window");
        }
        // The probe decision is mirrored onto the token, so every other
        // clone of it observes the disconnect too.
        assert!(token.is_cancelled());
    }

    #[test]
    fn cancellation_observed_from_another_thread() {
        let token = CancelToken::new();
        let g = Guard::new(&QueryLimits::none().with_cancel(token.clone()));
        assert_eq!(g.check_now(), Flow::Continue);
        thread::spawn(move || token.cancel()).join().unwrap();
        assert_eq!(g.check_now(), Flow::Abort(ExecError::Cancelled));
    }

    #[test]
    fn limits_merge_prefers_call_over_defaults() {
        let defaults = QueryLimits::none()
            .with_row_budget(100)
            .with_deadline(Duration::from_secs(1));
        let call = QueryLimits::none().with_row_budget(5).or(&defaults);
        assert_eq!(call.row_budget, Some(5));
        assert_eq!(call.deadline, Some(Duration::from_secs(1)));
    }

    #[test]
    fn fault_stream_is_deterministic() {
        let draws = |seed: u64| -> Vec<u8> {
            let s = FaultStream::new(seed);
            (0..256)
                .map(|_| match s.draw() {
                    Fault::None => 0,
                    Fault::Panic => 1,
                    Fault::Exhaust => 2,
                })
                .collect()
        };
        assert_eq!(draws(42), draws(42));
        assert_ne!(draws(42), draws(43));
        // The stream actually injects something at these rates.
        assert!(draws(7).iter().any(|&d| d != 0));
    }

    #[test]
    fn fault_point_panics_are_deterministic() {
        // Find a seed/point that panics, and check it panics again.
        let seed = (0..200u64)
            .find(|&s| {
                let g = Guard::new(&QueryLimits::none().with_fault_seed(s));
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    for _ in 0..64 {
                        let _ = g.fault_point("test");
                    }
                }))
                .is_err()
            })
            .expect("some seed panics within 64 draws");
        let again = Guard::new(&QueryLimits::none().with_fault_seed(seed));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for _ in 0..64 {
                let _ = again.fault_point("test");
            }
        }));
        assert!(r.is_err(), "seed {seed} must panic deterministically");
    }

    #[test]
    fn admission_gate_bounds_concurrency_and_times_out() {
        let gate = AdmissionGate::new(2, Duration::from_millis(20));
        let p1 = gate.admit().unwrap();
        let p2 = gate.admit().unwrap();
        assert_eq!(gate.active(), 2);
        assert_eq!(gate.admit().err(), Some(ExecError::AdmissionRejected));
        drop(p1);
        let p3 = gate.admit().unwrap();
        drop(p2);
        drop(p3);
        assert_eq!(gate.active(), 0);
    }

    #[test]
    fn admission_gate_waiter_wakes_on_release() {
        let gate = Arc::new(AdmissionGate::new(1, Duration::from_secs(5)));
        let p = gate.admit().unwrap();
        let g2 = Arc::clone(&gate);
        let waiter = thread::spawn(move || g2.admit().map(|_| ()).is_ok());
        thread::sleep(Duration::from_millis(10));
        drop(p);
        assert!(waiter.join().unwrap(), "waiter admitted after release");
    }
}
