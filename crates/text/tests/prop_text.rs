//! Property tests for the pattern engine: the NFA agrees with a naive
//! reference matcher on arbitrary patterns and inputs, and the index agrees
//! with direct evaluation.
//!
//! Originally written against an external property-testing library and
//! gated off; now running on the in-repo `docql-prop` harness.

use docql_prop::{
    check, element, just, one_of, prop_assert, prop_assert_eq, recursive, string_of, vec_of, zip,
    zip3, Gen,
};
use docql_text::{ContainsExpr, InvertedIndex, Nfa, Pattern};

const CASES: usize = 256;

/// Reference semantics: language membership by recursive interpretation
/// (exponential, fine for tiny inputs). Returns all possible match end
/// positions for a match starting at `start`.
fn ends(p: &Pattern, s: &[char], start: usize) -> Vec<usize> {
    match p {
        Pattern::Empty => vec![start],
        Pattern::Char(c) => {
            if s.get(start) == Some(c) {
                vec![start + 1]
            } else {
                vec![]
            }
        }
        Pattern::Any => {
            if start < s.len() {
                vec![start + 1]
            } else {
                vec![]
            }
        }
        Pattern::Class { negated, ranges } => match s.get(start) {
            Some(&c) => {
                let inside = ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi);
                if inside != *negated {
                    vec![start + 1]
                } else {
                    vec![]
                }
            }
            None => vec![],
        },
        Pattern::Concat(items) => {
            let mut positions = vec![start];
            for item in items {
                let mut next = Vec::new();
                for &pos in &positions {
                    for e in ends(item, s, pos) {
                        if !next.contains(&e) {
                            next.push(e);
                        }
                    }
                }
                positions = next;
                if positions.is_empty() {
                    break;
                }
            }
            positions
        }
        Pattern::Alt(items) => {
            let mut out = Vec::new();
            for item in items {
                for e in ends(item, s, start) {
                    if !out.contains(&e) {
                        out.push(e);
                    }
                }
            }
            out
        }
        Pattern::Star(inner) => {
            let mut out = vec![start];
            let mut frontier = vec![start];
            while let Some(pos) = frontier.pop() {
                for e in ends(inner, s, pos) {
                    if e > pos && !out.contains(&e) {
                        out.push(e);
                        frontier.push(e);
                    }
                }
            }
            out
        }
        Pattern::Plus(inner) => ends(
            &Pattern::Concat(vec![(**inner).clone(), Pattern::Star(inner.clone())]),
            s,
            start,
        ),
        Pattern::Opt(inner) => {
            let mut out = vec![start];
            for e in ends(inner, s, start) {
                if !out.contains(&e) {
                    out.push(e);
                }
            }
            out
        }
    }
}

fn reference_contains(p: &Pattern, text: &str) -> bool {
    let chars: Vec<char> = text.chars().collect();
    (0..=chars.len()).any(|i| !ends(p, &chars, i).is_empty())
}

fn arb_pattern() -> Gen<Pattern> {
    let leaf = one_of(vec![
        element(vec!['a', 'b', 'c']).map(|c| Pattern::Char(*c)),
        just(Pattern::Any),
        just(Pattern::Empty),
    ]);
    recursive(leaf, 3, |inner| {
        one_of(vec![
            vec_of(inner.clone(), 1..3).map(|ps| Pattern::Concat(ps.clone())),
            vec_of(inner.clone(), 1..3).map(|ps| Pattern::Alt(ps.clone())),
            inner.clone().map(|p| Pattern::Star(Box::new(p.clone()))),
            inner.clone().map(|p| Pattern::Plus(Box::new(p.clone()))),
            inner.clone().map(|p| Pattern::Opt(Box::new(p.clone()))),
        ])
    })
}

#[test]
fn nfa_agrees_with_reference() {
    check(
        "nfa_agrees_with_reference",
        CASES,
        &zip(arb_pattern(), string_of("abc", 0, 8)),
        |(p, text)| {
            let nfa = Nfa::compile(p);
            prop_assert_eq!(
                nfa.is_match(text),
                reference_contains(p, text),
                "pattern {p:?} on {text:?}"
            );
            Ok(())
        },
    );
}

#[test]
fn parse_display_round_trip() {
    check("parse_display_round_trip", CASES, &arb_pattern(), |p| {
        let printed = p.to_string();
        if let Ok(re) = Pattern::parse(&printed) {
            // Semantically equal: agree on a basket of inputs.
            let nfa1 = Nfa::compile(p);
            let nfa2 = Nfa::compile(&re);
            for text in ["", "a", "ab", "abc", "ccba", "aabbcc"] {
                prop_assert_eq!(
                    nfa1.is_match(text),
                    nfa2.is_match(text),
                    "{printed} vs reparsed on {text:?}"
                );
            }
        }
        Ok(())
    });
}

#[test]
fn find_span_is_a_real_match() {
    check(
        "find_span_is_a_real_match",
        CASES,
        &zip(arb_pattern(), string_of("abc", 0, 8)),
        |(p, text)| {
            let nfa = Nfa::compile(p);
            if let Some((s, e)) = nfa.find(text) {
                prop_assert!(s <= e && e <= text.len());
                prop_assert!(text.is_char_boundary(s) && text.is_char_boundary(e));
                // The reported span itself matches the pattern (anchored both
                // ends): check via reference ends() from s reaching e.
                let chars: Vec<char> = text.chars().collect();
                // Byte offsets equal char offsets for [abc] alphabets.
                prop_assert!(
                    ends(p, &chars, s).contains(&e),
                    "span {s}..{e} of {text:?} for {p:?}"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn index_docs_agree_with_direct_eval_for_words() {
    check(
        "index_docs_agree_with_direct_eval_for_words",
        CASES,
        &zip(
            vec_of(string_of("abc ", 0, 20), 1..6),
            string_of("abc", 1, 3),
        ),
        |(texts, word)| {
            let mut ix = InvertedIndex::new();
            for (i, t) in texts.iter().enumerate() {
                ix.add(i as u64, t);
            }
            let from_index = ix.docs_with_word(word);
            for (i, t) in texts.iter().enumerate() {
                let direct = docql_text::tokenize(t)
                    .iter()
                    .any(|tok| docql_text::normalize(tok.word) == *word);
                prop_assert_eq!(
                    from_index.contains(&(i as u64)),
                    direct,
                    "doc {i} = {t:?}, word {word:?}"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn contains_boolean_laws() {
    check(
        "contains_boolean_laws",
        CASES,
        &zip3(
            string_of("abc", 1, 3),
            string_of("abc", 1, 3),
            string_of("abc ", 0, 12),
        ),
        |(a, b, text)| {
            let pa = ContainsExpr::pattern(a).unwrap();
            let pb = ContainsExpr::pattern(b).unwrap();
            let and = ContainsExpr::And(vec![pa.clone(), pb.clone()]);
            let or = ContainsExpr::Or(vec![pa.clone(), pb.clone()]);
            let na = ContainsExpr::Not(Box::new(pa.clone()));
            prop_assert_eq!(and.eval(text), pa.eval(text) && pb.eval(text));
            prop_assert_eq!(or.eval(text), pa.eval(text) || pb.eval(text));
            prop_assert_eq!(na.eval(text), !pa.eval(text));
            Ok(())
        },
    );
}

#[test]
fn candidates_is_a_superset_of_substring_matches() {
    // Patterns: a plain word, a two-word phrase, and an alternation.
    let arb_query = one_of(vec![
        string_of("abc", 1, 4),
        zip(string_of("abc", 1, 2), string_of("abc", 1, 2)).map(|(x, y)| format!("{x} {y}")),
        zip(element(vec!['a', 'b', 'c']), element(vec!['a', 'b', 'c']))
            .map(|(x, y)| format!("{x}|{y}")),
    ]);
    check(
        "candidates_is_a_superset_of_substring_matches",
        CASES,
        &zip(vec_of(string_of("abc ", 0, 24), 1..8), arb_query),
        |(texts, pattern)| {
            let Ok(expr) = ContainsExpr::pattern(pattern) else {
                return Ok(());
            };
            let mut ix = InvertedIndex::new();
            for (i, t) in texts.iter().enumerate() {
                ix.add(i as u64, t);
            }
            let candidates = ix.candidates(&expr);
            let matcher = expr.compile();
            for (i, t) in texts.iter().enumerate() {
                if matcher.eval(t) {
                    prop_assert!(
                        candidates.contains(&(i as u64)),
                        "doc {i} ({t:?}) matches {pattern:?} but was pruned"
                    );
                }
            }
            Ok(())
        },
    );
}
