// Property-based suite, disabled while the build is offline: `proptest`
// cannot be fetched in this container, so the whole file is compiled out
// (`cfg(any())` is never true). Re-enable by removing this gate and
// restoring the `proptest` dev-dependency.
#![cfg(any())]

//! Property tests for the pattern engine: the NFA agrees with a naive
//! reference matcher on arbitrary patterns and inputs, and the index agrees
//! with direct evaluation.

use docql_text::{ContainsExpr, InvertedIndex, Nfa, Pattern};
use proptest::prelude::*;

/// Reference semantics: language membership by recursive interpretation
/// (exponential, fine for tiny inputs). Returns all possible match end
/// positions for a match starting at `start`.
fn ends(p: &Pattern, s: &[char], start: usize) -> Vec<usize> {
    match p {
        Pattern::Empty => vec![start],
        Pattern::Char(c) => {
            if s.get(start) == Some(c) {
                vec![start + 1]
            } else {
                vec![]
            }
        }
        Pattern::Any => {
            if start < s.len() {
                vec![start + 1]
            } else {
                vec![]
            }
        }
        Pattern::Class { negated, ranges } => match s.get(start) {
            Some(&c) => {
                let inside = ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi);
                if inside != *negated {
                    vec![start + 1]
                } else {
                    vec![]
                }
            }
            None => vec![],
        },
        Pattern::Concat(items) => {
            let mut positions = vec![start];
            for item in items {
                let mut next = Vec::new();
                for &pos in &positions {
                    for e in ends(item, s, pos) {
                        if !next.contains(&e) {
                            next.push(e);
                        }
                    }
                }
                positions = next;
                if positions.is_empty() {
                    break;
                }
            }
            positions
        }
        Pattern::Alt(items) => {
            let mut out = Vec::new();
            for item in items {
                for e in ends(item, s, start) {
                    if !out.contains(&e) {
                        out.push(e);
                    }
                }
            }
            out
        }
        Pattern::Star(inner) => {
            let mut out = vec![start];
            let mut frontier = vec![start];
            while let Some(pos) = frontier.pop() {
                for e in ends(inner, s, pos) {
                    if e > pos && !out.contains(&e) {
                        out.push(e);
                        frontier.push(e);
                    }
                }
            }
            out
        }
        Pattern::Plus(inner) => ends(
            &Pattern::Concat(vec![(**inner).clone(), Pattern::Star(inner.clone())]),
            s,
            start,
        ),
        Pattern::Opt(inner) => {
            let mut out = vec![start];
            for e in ends(inner, s, start) {
                if !out.contains(&e) {
                    out.push(e);
                }
            }
            out
        }
    }
}

fn reference_contains(p: &Pattern, text: &str) -> bool {
    let chars: Vec<char> = text.chars().collect();
    (0..=chars.len()).any(|i| !ends(p, &chars, i).is_empty())
}

fn arb_pattern() -> impl Strategy<Value = Pattern> {
    let leaf = prop_oneof![
        prop_oneof![Just('a'), Just('b'), Just('c')].prop_map(Pattern::Char),
        Just(Pattern::Any),
        Just(Pattern::Empty),
    ];
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(Pattern::Concat),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Pattern::Alt),
            inner.clone().prop_map(|p| Pattern::Star(Box::new(p))),
            inner.clone().prop_map(|p| Pattern::Plus(Box::new(p))),
            inner.prop_map(|p| Pattern::Opt(Box::new(p))),
        ]
    })
}

proptest! {
    #[test]
    fn nfa_agrees_with_reference(p in arb_pattern(), text in "[abc]{0,8}") {
        let nfa = Nfa::compile(&p);
        prop_assert_eq!(nfa.is_match(&text), reference_contains(&p, &text),
            "pattern {:?} on {:?}", p, text);
    }

    #[test]
    fn parse_display_round_trip(p in arb_pattern()) {
        let printed = p.to_string();
        if let Ok(re) = Pattern::parse(&printed) {
            // Semantically equal: agree on a basket of inputs.
            let nfa1 = Nfa::compile(&p);
            let nfa2 = Nfa::compile(&re);
            for text in ["", "a", "ab", "abc", "ccba", "aabbcc"] {
                prop_assert_eq!(nfa1.is_match(text), nfa2.is_match(text),
                    "{} vs reparsed on {:?}", printed, text);
            }
        }
    }

    #[test]
    fn find_span_is_a_real_match(p in arb_pattern(), text in "[abc]{0,8}") {
        let nfa = Nfa::compile(&p);
        if let Some((s, e)) = nfa.find(&text) {
            prop_assert!(s <= e && e <= text.len());
            prop_assert!(text.is_char_boundary(s) && text.is_char_boundary(e));
            // The reported span itself matches the pattern (anchored both
            // ends): check via reference ends() from s reaching e.
            let chars: Vec<char> = text.chars().collect();
            // Byte offsets equal char offsets for [abc] alphabets.
            prop_assert!(ends(&p, &chars, s).contains(&e),
                "span {}..{} of {:?} for {:?}", s, e, text, p);
        }
    }

    #[test]
    fn index_docs_agree_with_direct_eval_for_words(
        texts in prop::collection::vec("[a-c ]{0,20}", 1..6),
        word in "[a-c]{1,3}",
    ) {
        let mut ix = InvertedIndex::new();
        for (i, t) in texts.iter().enumerate() {
            ix.add(i as u64, t);
        }
        let from_index = ix.docs_with_word(&word);
        for (i, t) in texts.iter().enumerate() {
            let direct = docql_text::tokenize(t)
                .iter()
                .any(|tok| docql_text::normalize(tok.word) == word);
            prop_assert_eq!(from_index.contains(&(i as u64)), direct,
                "doc {} = {:?}, word {:?}", i, t, word);
        }
    }

    #[test]
    fn contains_boolean_laws(a in "[abc]{1,3}", b in "[abc]{1,3}", text in "[abc ]{0,12}") {
        let pa = ContainsExpr::pattern(&a).unwrap();
        let pb = ContainsExpr::pattern(&b).unwrap();
        let and = ContainsExpr::And(vec![pa.clone(), pb.clone()]);
        let or = ContainsExpr::Or(vec![pa.clone(), pb.clone()]);
        let na = ContainsExpr::Not(Box::new(pa.clone()));
        prop_assert_eq!(and.eval(&text), pa.eval(&text) && pb.eval(&text));
        prop_assert_eq!(or.eval(&text), pa.eval(&text) || pb.eval(&text));
        prop_assert_eq!(na.eval(&text), !pa.eval(&text));
    }
}

proptest! {
    #[test]
    fn candidates_is_a_superset_of_substring_matches(
        texts in prop::collection::vec("[a-c ]{0,24}", 1..8),
        pattern in prop_oneof!["[a-c]{1,4}", "[a-c]{1,2} [a-c]{1,2}", "[a-c]\\|[a-c]"],
    ) {
        let Ok(expr) = ContainsExpr::pattern(&pattern) else {
            return Ok(());
        };
        let mut ix = InvertedIndex::new();
        for (i, t) in texts.iter().enumerate() {
            ix.add(i as u64, t);
        }
        let candidates = ix.candidates(&expr);
        let matcher = expr.compile();
        for (i, t) in texts.iter().enumerate() {
            if matcher.eval(t) {
                prop_assert!(candidates.contains(&(i as u64)),
                    "doc {} ({:?}) matches {:?} but was pruned", i, t, pattern);
            }
        }
    }
}
