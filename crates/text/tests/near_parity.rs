//! Regression + property tests pinning the agreed `near` semantics across
//! the two implementations:
//!
//! * `docql_text::near` (direct, on one text) with `NearUnit::Words`
//! * `InvertedIndex::near_docs` (index-backed, across documents)
//!
//! Agreed semantics, pinned here:
//! * distance counts *intervening* words — adjacent words are at distance
//!   0, and `near_docs` accepts a position difference of `≤ k + 1`;
//! * the two occurrences must be distinct tokens (a single occurrence is
//!   never "near itself"), but two occurrences of the *same* word count;
//! * comparison is case-insensitive via `normalize`;
//! * the predicate is symmetric in its two word arguments.

use docql_prop::{check, prop_assert_eq, string_of, usize_in, vec_of, zip, zip3};
use docql_text::{near, InvertedIndex, NearUnit};

const CASES: usize = 256;

#[test]
fn index_membership_matches_direct_near_on_random_texts() {
    // Words over a tiny alphabet so collisions (and repeats) are common.
    let arb_text = vec_of(string_of("abc", 1, 3), 0..10).map(|ws| ws.join(" "));
    check(
        "index_membership_matches_direct_near_on_random_texts",
        CASES,
        &zip(
            arb_text,
            zip3(
                string_of("abc", 1, 2),
                string_of("abc", 1, 2),
                usize_in(0..4),
            ),
        ),
        |(text, (w1, w2, k))| {
            let mut ix = InvertedIndex::new();
            ix.add(1, text);
            let direct = near(text, w1, w2, *k, NearUnit::Words);
            let indexed = ix.near_docs(w1, w2, *k as u32).contains(&1);
            prop_assert_eq!(
                direct,
                indexed,
                "near vs near_docs disagree on {text:?} ({w1:?}, {w2:?}, k={k})"
            );
            Ok(())
        },
    );
}

#[test]
fn both_implementations_are_symmetric() {
    let arb_text = vec_of(string_of("abc", 1, 3), 0..10).map(|ws| ws.join(" "));
    check(
        "both_implementations_are_symmetric",
        CASES,
        &zip3(arb_text, string_of("abc", 1, 2), string_of("abc", 1, 2)),
        |(text, w1, w2)| {
            for k in 0..3 {
                prop_assert_eq!(
                    near(text, w1, w2, k, NearUnit::Words),
                    near(text, w2, w1, k, NearUnit::Words),
                    "near not symmetric on {text:?} k={k}"
                );
            }
            let mut ix = InvertedIndex::new();
            ix.add(1, text);
            for k in 0..3u32 {
                prop_assert_eq!(
                    ix.near_docs(w1, w2, k),
                    ix.near_docs(w2, w1, k),
                    "near_docs not symmetric on {text:?} k={k}"
                );
            }
            Ok(())
        },
    );
}

#[test]
fn adjacency_is_distance_zero_in_both() {
    let text = "structured documents benefit from databases";
    // Adjacent words: 0 intervening.
    assert!(near(text, "structured", "documents", 0, NearUnit::Words));
    // One intervening word: not near at k=0, near at k=1.
    assert!(!near(text, "structured", "benefit", 0, NearUnit::Words));
    assert!(near(text, "structured", "benefit", 1, NearUnit::Words));

    let mut ix = InvertedIndex::new();
    ix.add(1, text);
    assert!(ix.near_docs("structured", "documents", 0).contains(&1));
    assert!(!ix.near_docs("structured", "benefit", 0).contains(&1));
    assert!(ix.near_docs("structured", "benefit", 1).contains(&1));
}

#[test]
fn a_word_is_not_near_itself_but_repeats_are() {
    let once = "alpha beta gamma";
    assert!(!near(once, "alpha", "alpha", 5, NearUnit::Words));
    let twice = "alpha beta alpha";
    assert!(near(twice, "alpha", "alpha", 1, NearUnit::Words));
    assert!(!near(twice, "alpha", "alpha", 0, NearUnit::Words));

    let mut ix = InvertedIndex::new();
    ix.add(1, once);
    ix.add(2, twice);
    assert!(!ix.near_docs("alpha", "alpha", 5).contains(&1));
    assert!(ix.near_docs("alpha", "alpha", 1).contains(&2));
    assert!(!ix.near_docs("alpha", "alpha", 0).contains(&2));
}

#[test]
fn comparison_is_case_insensitive_in_both() {
    let text = "SGML documents meet OODBMS storage";
    assert!(near(text, "sgml", "Documents", 0, NearUnit::Words));
    let mut ix = InvertedIndex::new();
    ix.add(1, text);
    assert!(ix.near_docs("sgml", "Documents", 0).contains(&1));
}

#[test]
fn char_unit_counts_characters_between_tokens() {
    // "ab, cd" — gap between `ab` and `cd` is ", " = 2 characters.
    let text = "ab, cd";
    assert!(!near(text, "ab", "cd", 1, NearUnit::Chars));
    assert!(near(text, "ab", "cd", 2, NearUnit::Chars));
    // Multi-byte characters count once, not per byte.
    let text2 = "ab é cd";
    assert!(near(text2, "ab", "cd", 3, NearUnit::Chars));
    assert!(!near(text2, "ab", "cd", 2, NearUnit::Chars));
}
