//! Thompson NFA construction and simulation for [`Pattern`]s.
//!
//! The matcher runs the classic lock-step simulation (a set of active states
//! advanced per input character) which is linear in `text × states` with no
//! backtracking blow-up — fitting for the IRS-style workloads the paper
//! targets. Search is unanchored: `is_match` asks whether the pattern occurs
//! *anywhere* in the text (the semantics of `contains`).

use crate::pattern::Pattern;

/// State transitions.
#[derive(Debug, Clone)]
enum Trans {
    /// Consume one character if it satisfies the test, go to `to`.
    Char { test: CharTest, to: usize },
    /// ε-transitions.
    Eps(Vec<usize>),
    /// Accepting state.
    Accept,
}

#[derive(Debug, Clone)]
enum CharTest {
    Exact(char),
    Any,
    Class {
        negated: bool,
        ranges: Vec<(char, char)>,
    },
}

impl CharTest {
    fn matches(&self, c: char) -> bool {
        match self {
            CharTest::Exact(e) => *e == c,
            CharTest::Any => true,
            CharTest::Class { negated, ranges } => {
                let inside = ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi);
                inside != *negated
            }
        }
    }
}

/// A compiled pattern.
#[derive(Debug, Clone)]
pub struct Nfa {
    states: Vec<Trans>,
    start: usize,
}

impl Nfa {
    /// Compile a pattern.
    pub fn compile(pattern: &Pattern) -> Nfa {
        let mut b = Builder { states: Vec::new() };
        let accept = b.push(Trans::Accept);
        let start = b.compile(pattern, accept);
        Nfa {
            states: b.states,
            start,
        }
    }

    /// Does the pattern occur anywhere in `text`?
    pub fn is_match(&self, text: &str) -> bool {
        self.find(text).is_some()
    }

    /// Leftmost match: `(start_byte, end_byte)` of the first occurrence
    /// (shortest end for that start).
    pub fn find(&self, text: &str) -> Option<(usize, usize)> {
        // Lock-step simulation from every start offset, all at once: each
        // active thread remembers the byte offset where it started.
        let mut current: Vec<(usize, usize)> = Vec::new(); // (state, started_at)
        let mut seen = vec![usize::MAX; self.states.len()];
        let mut best: Option<(usize, usize)> = None;

        let add = |threads: &mut Vec<(usize, usize)>,
                   seen: &mut Vec<usize>,
                   stamp: usize,
                   state: usize,
                   started: usize,
                   states: &[Trans],
                   best: &mut Option<(usize, usize)>,
                   here: usize| {
            // DFS through ε-closure.
            let mut stack = vec![(state, started)];
            while let Some((s, st)) = stack.pop() {
                if seen[s] == stamp {
                    continue;
                }
                seen[s] = stamp;
                match &states[s] {
                    Trans::Eps(targets) => {
                        for &t in targets {
                            stack.push((t, st));
                        }
                    }
                    Trans::Accept => {
                        let cand = (st, here);
                        if best.is_none_or(|(bs, be)| cand.0 < bs || (cand.0 == bs && cand.1 < be))
                        {
                            *best = Some(cand);
                        }
                    }
                    Trans::Char { .. } => threads.push((s, st)),
                }
            }
        };

        let mut stamp = 0usize;
        // Seed at offset 0.
        add(
            &mut current,
            &mut seen,
            stamp,
            self.start,
            0,
            &self.states,
            &mut best,
            0,
        );
        let mut offsets = text.char_indices().peekable();
        while let Some((_at, c)) = offsets.next() {
            let next_at = offsets.peek().map(|&(i, _)| i).unwrap_or(text.len());
            stamp += 1;
            let mut next: Vec<(usize, usize)> = Vec::new();
            for &(s, st) in &current {
                if let Trans::Char { test, to } = &self.states[s] {
                    if test.matches(c) {
                        add(
                            &mut next,
                            &mut seen,
                            stamp,
                            *to,
                            st,
                            &self.states,
                            &mut best,
                            next_at,
                        );
                    }
                }
            }
            // New thread starting at the next character boundary.
            add(
                &mut next,
                &mut seen,
                stamp,
                self.start,
                next_at,
                &self.states,
                &mut best,
                next_at,
            );
            current = next;
            // Leftmost match already found and no thread can start earlier.
            if let Some((bs, _)) = best {
                if current.iter().all(|&(_, st)| st > bs) {
                    break;
                }
            }
        }
        best
    }

    /// Number of NFA states (diagnostics / benches).
    pub fn state_count(&self) -> usize {
        self.states.len()
    }
}

struct Builder {
    states: Vec<Trans>,
}

impl Builder {
    fn push(&mut self, t: Trans) -> usize {
        self.states.push(t);
        self.states.len() - 1
    }

    /// Compile `pattern` so that matching it ends in `next`; returns the
    /// entry state.
    fn compile(&mut self, pattern: &Pattern, next: usize) -> usize {
        match pattern {
            Pattern::Empty => next,
            Pattern::Char(c) => self.push(Trans::Char {
                test: CharTest::Exact(*c),
                to: next,
            }),
            Pattern::Any => self.push(Trans::Char {
                test: CharTest::Any,
                to: next,
            }),
            Pattern::Class { negated, ranges } => self.push(Trans::Char {
                test: CharTest::Class {
                    negated: *negated,
                    ranges: ranges.clone(),
                },
                to: next,
            }),
            Pattern::Concat(items) => {
                let mut target = next;
                for item in items.iter().rev() {
                    target = self.compile(item, target);
                }
                target
            }
            Pattern::Alt(items) => {
                let entries: Vec<usize> = items.iter().map(|i| self.compile(i, next)).collect();
                self.push(Trans::Eps(entries))
            }
            Pattern::Star(inner) => {
                // fork -> inner -> fork ; fork -> next
                let fork = self.push(Trans::Eps(vec![next]));
                let entry = self.compile(inner, fork);
                if let Trans::Eps(targets) = &mut self.states[fork] {
                    targets.push(entry);
                }
                fork
            }
            Pattern::Plus(inner) => {
                let fork = self.push(Trans::Eps(vec![next]));
                let entry = self.compile(inner, fork);
                if let Trans::Eps(targets) = &mut self.states[fork] {
                    targets.push(entry);
                }
                entry
            }
            Pattern::Opt(inner) => {
                let entry = self.compile(inner, next);
                self.push(Trans::Eps(vec![entry, next]))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, text: &str) -> bool {
        Nfa::compile(&Pattern::parse(pat).unwrap()).is_match(text)
    }

    #[test]
    fn literal_substring_search() {
        assert!(m("SGML", "an SGML document"));
        assert!(!m("SGML", "an XML document"));
        assert!(m("SGML", "SGML"));
    }

    #[test]
    fn paper_title_pattern() {
        assert!(m("(t|T)itle", "the Title field"));
        assert!(m("(t|T)itle", "subtitle"));
        assert!(!m("(t|T)itle", "TITLES"));
    }

    #[test]
    fn closures() {
        assert!(m("ab*c", "ac"));
        assert!(m("ab*c", "abbbc"));
        assert!(!m("ab+c", "ac"));
        assert!(m("ab?c", "abc"));
        assert!(m("(ab)+", "xxabababyy"));
    }

    #[test]
    fn alternation_and_classes() {
        assert!(m("cat|dog", "hotdog stand"));
        assert!(m("[0-9]+cm", "width 16cm"));
        assert!(!m("[0-9]+cm", "width cm"));
        assert!(m("[^ ]+@[^ ]+", "mail me at a@b please"));
    }

    #[test]
    fn empty_pattern_matches_everything() {
        assert!(m("", ""));
        assert!(m("", "anything"));
        assert!(m("a*", "zzz"), "a* matches the empty string in zzz");
    }

    #[test]
    fn find_reports_leftmost_position() {
        let nfa = Nfa::compile(&Pattern::parse("b+").unwrap());
        assert_eq!(nfa.find("aabbbaab"), Some((2, 3)));
        assert_eq!(nfa.find("zzz"), None);
    }

    #[test]
    fn find_handles_multibyte_text() {
        let nfa = Nfa::compile(&Pattern::parse("é+").unwrap());
        let text = "caféé!";
        let (s, e) = nfa.find(text).unwrap();
        assert_eq!(&text[s..s + 2], "é");
        assert!(e > s);
    }

    #[test]
    fn pathological_pattern_is_linear_ish() {
        // (a?)ⁿaⁿ against aⁿ — catastrophic for backtrackers.
        let n = 20;
        let pat = format!("{}{}", "a?".repeat(n), "a".repeat(n));
        let text = "a".repeat(n);
        assert!(m(&pat, &text));
    }

    #[test]
    fn anchoredless_match_mid_text() {
        assert!(m("complex object", "queries over complex objects"));
    }
}
