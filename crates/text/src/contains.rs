//! The `contains` predicate: a pattern or a boolean combination of patterns
//! (§4.1, query Q1: `s.title contains ("SGML" and "OODBMS")`).

use crate::nfa::Nfa;
use crate::pattern::{Pattern, PatternError};

/// A `contains` operand: boolean combination of patterns.
#[derive(Debug, Clone, PartialEq)]
pub enum ContainsExpr {
    /// A single pattern.
    Pattern(Pattern),
    /// All must occur.
    And(Vec<ContainsExpr>),
    /// At least one must occur.
    Or(Vec<ContainsExpr>),
    /// Must not occur.
    Not(Box<ContainsExpr>),
}

impl ContainsExpr {
    /// A single-pattern expression parsed from pattern syntax.
    pub fn pattern(src: &str) -> Result<ContainsExpr, PatternError> {
        Ok(ContainsExpr::Pattern(Pattern::parse(src)?))
    }

    /// All the words (patterns), conjoined.
    pub fn all_of<I: IntoIterator<Item = S>, S: AsRef<str>>(
        pats: I,
    ) -> Result<ContainsExpr, PatternError> {
        let items = pats
            .into_iter()
            .map(|p| ContainsExpr::pattern(p.as_ref()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ContainsExpr::And(items))
    }

    /// Compile to a [`ContainsMatcher`] for repeated evaluation.
    pub fn compile(&self) -> ContainsMatcher {
        ContainsMatcher {
            node: compile_node(self),
        }
    }

    /// One-shot evaluation.
    pub fn eval(&self, text: &str) -> bool {
        self.compile().eval(text)
    }

    /// Is every pattern leaf a plain literal (words/phrases, no regex
    /// operators)? For such expressions the positional inverted index
    /// answers *exactly* — no re-check against stored text is needed.
    pub fn is_word_exact(&self) -> bool {
        fn literal(p: &Pattern) -> bool {
            match p {
                Pattern::Empty | Pattern::Char(_) => true,
                Pattern::Concat(items) => items.iter().all(literal),
                _ => false,
            }
        }
        match self {
            ContainsExpr::Pattern(p) => literal(p),
            ContainsExpr::And(items) | ContainsExpr::Or(items) => {
                items.iter().all(ContainsExpr::is_word_exact)
            }
            ContainsExpr::Not(inner) => inner.is_word_exact(),
        }
    }

    /// The positive patterns mentioned (used by index-accelerated search to
    /// prefilter candidate documents).
    pub fn positive_patterns(&self, out: &mut Vec<Pattern>) {
        match self {
            ContainsExpr::Pattern(p) => out.push(p.clone()),
            ContainsExpr::And(items) | ContainsExpr::Or(items) => {
                for i in items {
                    i.positive_patterns(out);
                }
            }
            ContainsExpr::Not(_) => {}
        }
    }
}

enum Node {
    Matcher(Nfa),
    And(Vec<Node>),
    Or(Vec<Node>),
    Not(Box<Node>),
}

fn compile_node(e: &ContainsExpr) -> Node {
    match e {
        ContainsExpr::Pattern(p) => Node::Matcher(Nfa::compile(p)),
        ContainsExpr::And(items) => Node::And(items.iter().map(compile_node).collect()),
        ContainsExpr::Or(items) => Node::Or(items.iter().map(compile_node).collect()),
        ContainsExpr::Not(inner) => Node::Not(Box::new(compile_node(inner))),
    }
}

/// A compiled `contains` expression.
pub struct ContainsMatcher {
    node: Node,
}

impl ContainsMatcher {
    /// Evaluate against a text.
    pub fn eval(&self, text: &str) -> bool {
        eval_node(&self.node, text)
    }

    /// Evaluate under execution governance: charges [`scan_fuel`] for the
    /// text up front and returns `None` — without scanning — when the guard
    /// trips, so callers can distinguish "over budget" from a match verdict.
    pub fn eval_guarded(&self, text: &str, guard: Option<&docql_guard::Guard>) -> Option<bool> {
        if let Some(g) = guard {
            if g.fuel(scan_fuel(text)).interrupted() {
                return None;
            }
        }
        Some(eval_node(&self.node, text))
    }
}

/// Fuel cost of one pattern scan over `text`: a unit per 64 bytes, minimum
/// one. Scans charge *before* matching, so a tripped guard skips the work.
pub fn scan_fuel(text: &str) -> u64 {
    (text.len() as u64 / 64).max(1)
}

fn eval_node(n: &Node, text: &str) -> bool {
    match n {
        Node::Matcher(nfa) => nfa.is_match(text),
        Node::And(items) => items.iter().all(|i| eval_node(i, text)),
        Node::Or(items) => items.iter().any(|i| eval_node(i, text)),
        Node::Not(inner) => !eval_node(inner, text),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q1_style_conjunction() {
        let e = ContainsExpr::all_of(["SGML", "OODBMS"]).unwrap();
        assert!(e.eval("mapping SGML documents into an OODBMS"));
        assert!(!e.eval("mapping SGML documents into files"));
        assert!(!e.eval("an OODBMS alone"));
    }

    #[test]
    fn disjunction_and_negation() {
        let e = ContainsExpr::Or(vec![
            ContainsExpr::pattern("cat").unwrap(),
            ContainsExpr::pattern("dog").unwrap(),
        ]);
        assert!(e.eval("raining cats"));
        assert!(e.eval("a dog"));
        assert!(!e.eval("a bird"));
        let n = ContainsExpr::Not(Box::new(e));
        assert!(n.eval("a bird"));
        assert!(!n.eval("a dog"));
    }

    #[test]
    fn patterns_not_just_words() {
        let e = ContainsExpr::pattern("(t|T)itle").unwrap();
        assert!(e.eval("the Title"));
        assert!(e.eval("subtitle"));
        assert!(!e.eval("TITLE"));
    }

    #[test]
    fn positive_patterns_skip_negations() {
        let e = ContainsExpr::And(vec![
            ContainsExpr::pattern("a").unwrap(),
            ContainsExpr::Not(Box::new(ContainsExpr::pattern("b").unwrap())),
        ]);
        let mut pats = Vec::new();
        e.positive_patterns(&mut pats);
        assert_eq!(pats.len(), 1);
    }

    #[test]
    fn compiled_matcher_reusable() {
        let m = ContainsExpr::all_of(["complex object"]).unwrap().compile();
        assert!(m.eval("queries over complex objects"));
        assert!(!m.eval("simple values"));
    }
}
