//! Counters for the text-search paths: index-answered lookups versus
//! vocabulary greps.
//!
//! A [`TextMetrics`] bundle is attached to an
//! [`InvertedIndex`](crate::InvertedIndex) by the owning store; the index
//! then counts its public query entry points. Recording is gated by the
//! owning registry's enable flag (one relaxed load per text operation), so
//! an attached-but-disabled bundle keeps the index's hot paths unchanged.

use docql_obs::{Counter, MetricsRegistry, SharedRegistry};

/// Registry handles for text-search counters.
#[derive(Clone, Debug)]
pub struct TextMetrics {
    registry: SharedRegistry,
    /// Entries into the index's boolean/candidate/proximity query paths
    /// (`docs_matching`, `candidates`, `near_docs`) — work answered from
    /// postings.
    pub index_queries: Counter,
    /// Vocabulary greps: pattern queries that scanned the term dictionary
    /// (regex-operator patterns, substring candidate bounds).
    pub vocab_scans: Counter,
}

impl TextMetrics {
    /// Resolve (creating if absent) the text counters in `registry`.
    pub fn register(registry: SharedRegistry) -> TextMetrics {
        TextMetrics {
            index_queries: registry.counter("docql_text_index_queries_total"),
            vocab_scans: registry.counter("docql_text_vocab_scans_total"),
            registry,
        }
    }

    /// Free-standing counters over a private, **enabled** registry.
    pub fn standalone() -> TextMetrics {
        let registry = std::sync::Arc::new(MetricsRegistry::new());
        registry.set_enabled(true);
        TextMetrics::register(registry)
    }

    /// Is recording on (the owning registry's enable flag)?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.registry.enabled()
    }
}
