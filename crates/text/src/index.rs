//! A positional inverted index — the "full text indexing mechanism" the
//! paper's IRS discussion assumes (§4.1) and lists as the optimisation its
//! prototype was studying (§6).
//!
//! Terms are lower-cased words; postings carry word positions so `near` and
//! phrase queries evaluate from the index alone. Pattern queries (`contains`
//! with regex operators) are answered by grepping the *vocabulary* with the
//! NFA and unioning the matching terms' postings — the classic IRS trick for
//! wildcard queries.

use crate::contains::ContainsExpr;
use crate::metrics::TextMetrics;
use crate::nfa::Nfa;
use crate::pattern::Pattern;
use crate::tokenize::{normalize, tokenize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A document identifier in the index.
pub type DocId = u64;

/// Positional inverted index over added documents.
///
/// Position lists sit behind `Arc`, so cloning the index — the store's
/// snapshot-fork path — shares the bulk of the data (per-term, per-doc
/// position vectors) and copies only the b-tree spines; a post-clone `add`
/// copy-on-writes just the touched lists.
#[derive(Debug, Default, Clone)]
pub struct InvertedIndex {
    /// term → (doc → word positions, ascending).
    postings: BTreeMap<String, BTreeMap<DocId, Arc<Vec<u32>>>>,
    /// Documents added (with their word counts), for statistics and NOT.
    docs: BTreeMap<DocId, u32>,
    /// Counters for the query entry points, attached by the owning store.
    metrics: Option<TextMetrics>,
}

impl InvertedIndex {
    /// Empty index.
    pub fn new() -> InvertedIndex {
        InvertedIndex::default()
    }

    /// Attach counters (see [`TextMetrics`]); queries then count index
    /// lookups and vocabulary scans when the owning registry is enabled.
    pub fn set_metrics(&mut self, metrics: TextMetrics) {
        self.metrics = Some(metrics);
    }

    /// The attached counters, when recording is on.
    #[inline]
    fn obs(&self) -> Option<&TextMetrics> {
        self.metrics.as_ref().filter(|m| m.enabled())
    }

    /// Index a document's text. Adding the same `doc` twice appends (useful
    /// when a document's text is assembled from several logical components).
    pub fn add(&mut self, doc: DocId, text: &str) {
        let base = *self.docs.get(&doc).unwrap_or(&0);
        let toks = tokenize(text);
        for t in &toks {
            let term = normalize(t.word);
            let slot = self
                .postings
                .entry(term)
                .or_default()
                .entry(doc)
                .or_default();
            Arc::make_mut(slot).push(base + t.index as u32);
        }
        self.docs.insert(doc, base + toks.len() as u32);
    }

    /// Merge another index into this one — the reduce step of sharded
    /// (parallel) index construction: workers each build an
    /// [`InvertedIndex`] over a disjoint slice of documents and the shards
    /// are merged into the store's index.
    ///
    /// Shares [`InvertedIndex::add`]'s append semantics for documents
    /// present on both sides: `other`'s positions for such a document are
    /// shifted past this index's recorded word count, as if `other`'s text
    /// had been `add`ed after this one's.
    pub fn merge(&mut self, other: InvertedIndex) {
        // Word-count base per incoming document (0 for new documents).
        let bases: BTreeMap<DocId, u32> = other
            .docs
            .keys()
            .map(|d| (*d, *self.docs.get(d).unwrap_or(&0)))
            .collect();
        for (term, postings) in other.postings {
            let slot = self.postings.entry(term).or_default();
            for (doc, positions) in postings {
                let base = *bases.get(&doc).unwrap_or(&0);
                match slot.entry(doc) {
                    std::collections::btree_map::Entry::Vacant(e) if base == 0 => {
                        // New document: adopt the shard's list wholesale (and
                        // keep sharing it if the shard was itself a clone).
                        e.insert(positions);
                    }
                    e => {
                        let dst = Arc::make_mut(e.or_default());
                        dst.extend(positions.iter().map(|p| p + base));
                    }
                }
            }
        }
        for (doc, count) in other.docs {
            *self.docs.entry(doc).or_insert(0) += count;
        }
    }

    /// Number of indexed documents.
    pub fn doc_count(&self) -> usize {
        self.docs.len()
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.postings.len()
    }

    /// Posting length of `word` (case-insensitive exact term match): how
    /// many documents contain it. One b-tree lookup — the cost model reads
    /// this per `contains` conjunct, without materialising the doc set.
    pub fn posting_doc_count(&self, word: &str) -> usize {
        self.postings.get(&normalize(word)).map_or(0, |m| m.len())
    }

    /// Total indexed words across all documents (the corpus token count;
    /// `total_words / doc_count` is the average document length the cost
    /// model charges for a text re-check).
    pub fn total_words(&self) -> u64 {
        self.docs.values().map(|c| u64::from(*c)).sum()
    }

    /// All indexed document ids.
    pub fn all_docs(&self) -> BTreeSet<DocId> {
        self.docs.keys().copied().collect()
    }

    /// Every posting list, in term order: `(term, doc, positions)` — the
    /// snapshot path serializes the index through this (the maps stay
    /// private so all mutation goes through [`InvertedIndex::add`]).
    pub fn iter_postings(&self) -> impl Iterator<Item = (&str, DocId, &[u32])> {
        self.postings.iter().flat_map(|(term, by_doc)| {
            by_doc
                .iter()
                .map(move |(doc, positions)| (term.as_str(), *doc, positions.as_slice()))
        })
    }

    /// Per-document word counts, in doc order (the companion of
    /// [`InvertedIndex::iter_postings`] for serialization).
    pub fn doc_words(&self) -> impl Iterator<Item = (DocId, u32)> + '_ {
        self.docs.iter().map(|(d, c)| (*d, *c))
    }

    /// Restore one posting list verbatim (deserialization path — positions
    /// must already be normalized/ascending, as produced by
    /// [`InvertedIndex::iter_postings`]). Replaces any existing list for
    /// `(term, doc)`.
    pub fn restore_posting(&mut self, term: &str, doc: DocId, positions: Vec<u32>) {
        self.postings
            .entry(term.to_string())
            .or_default()
            .insert(doc, Arc::new(positions));
    }

    /// Restore one document's word count verbatim (deserialization path).
    pub fn restore_doc_words(&mut self, doc: DocId, words: u32) {
        self.docs.insert(doc, words);
    }

    /// Documents containing `word` (case-insensitive exact term match).
    pub fn docs_with_word(&self, word: &str) -> BTreeSet<DocId> {
        self.postings
            .get(&normalize(word))
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Positions of `word` within `doc`.
    pub fn positions(&self, doc: DocId, word: &str) -> &[u32] {
        self.postings
            .get(&normalize(word))
            .and_then(|m| m.get(&doc))
            .map(|p| p.as_slice())
            .unwrap_or(&[])
    }

    /// Documents where some term matches `pattern` (vocabulary grep).
    pub fn docs_matching_pattern(&self, pattern: &Pattern) -> BTreeSet<DocId> {
        if let Some(m) = self.obs() {
            m.vocab_scans.inc();
        }
        let nfa = Nfa::compile(pattern);
        let mut out = BTreeSet::new();
        for (term, posting) in &self.postings {
            if nfa.is_match(term) {
                out.extend(posting.keys().copied());
            }
        }
        out
    }

    /// Documents satisfying a boolean `contains` expression.
    ///
    /// Caveat shared with all term-indexed engines: a pattern that spans a
    /// word boundary (e.g. the phrase `complex object`) is resolved
    /// conservatively here (per-word conjunction); use
    /// [`InvertedIndex::candidates`] + an exact re-check over the stored text
    /// for exact semantics — that is what the query engines do.
    pub fn docs_matching(&self, expr: &ContainsExpr) -> BTreeSet<DocId> {
        if let Some(m) = self.obs() {
            m.index_queries.inc();
        }
        self.docs_matching_inner(expr)
    }

    fn docs_matching_inner(&self, expr: &ContainsExpr) -> BTreeSet<DocId> {
        match expr {
            ContainsExpr::Pattern(p) => {
                // Split multi-word literal patterns into a positional phrase
                // check when possible; otherwise vocabulary grep.
                match literal_words(p) {
                    Some(words) if words.len() > 1 => self.phrase_docs(&words),
                    Some(words) if words.len() == 1 => self.docs_with_word(&words[0]),
                    _ => self.docs_matching_pattern(p),
                }
            }
            ContainsExpr::And(items) => {
                let mut sets = items.iter().map(|i| self.docs_matching_inner(i));
                let mut acc = match sets.next() {
                    Some(s) => s,
                    None => return self.all_docs(),
                };
                for s in sets {
                    acc = acc.intersection(&s).copied().collect();
                }
                acc
            }
            ContainsExpr::Or(items) => {
                let mut acc = BTreeSet::new();
                for i in items {
                    acc.extend(self.docs_matching_inner(i));
                }
                acc
            }
            ContainsExpr::Not(inner) => {
                let excluded = self.docs_matching_inner(inner);
                self.all_docs().difference(&excluded).copied().collect()
            }
        }
    }

    /// A candidate set for `expr` that is a **guaranteed superset** of the
    /// documents whose text matches under exact substring (`contains`)
    /// semantics — engines re-check candidates against stored text.
    ///
    /// * a literal made only of alphanumeric characters must lie inside a
    ///   single token, so terms containing it (vocabulary substring grep,
    ///   case-folded) bound the answer;
    /// * literals crossing token boundaries, regex-operator patterns and
    ///   negations widen conservatively (up to all documents).
    pub fn candidates(&self, expr: &ContainsExpr) -> BTreeSet<DocId> {
        if let Some(m) = self.obs() {
            m.index_queries.inc();
        }
        self.candidates_inner(expr)
    }

    fn candidates_inner(&self, expr: &ContainsExpr) -> BTreeSet<DocId> {
        match expr {
            ContainsExpr::Pattern(p) => match literal_text(p) {
                Some(text) if !text.is_empty() && text.chars().all(char::is_alphanumeric) => {
                    if let Some(m) = self.obs() {
                        m.vocab_scans.inc();
                    }
                    let needle = text.to_lowercase();
                    let mut out = BTreeSet::new();
                    for (term, posting) in &self.postings {
                        if term.contains(&needle) {
                            out.extend(posting.keys().copied());
                        }
                    }
                    out
                }
                Some(text) => {
                    // Multi-word literal: every interior complete word must
                    // appear (necessary condition); first/last fragments may
                    // be partial tokens, so they only constrain via the
                    // vocabulary-substring bound.
                    let words = crate::tokenize::tokenize(&text);
                    if words.len() >= 3 {
                        let mut acc: Option<BTreeSet<DocId>> = None;
                        for w in &words[1..words.len() - 1] {
                            let docs = self.docs_with_word(w.word);
                            acc = Some(match acc {
                                None => docs,
                                Some(prev) => prev.intersection(&docs).copied().collect(),
                            });
                        }
                        acc.unwrap_or_else(|| self.all_docs())
                    } else {
                        self.all_docs()
                    }
                }
                None => self.all_docs(),
            },
            ContainsExpr::And(items) => {
                let mut acc: Option<BTreeSet<DocId>> = None;
                for i in items {
                    let c = self.candidates_inner(i);
                    acc = Some(match acc {
                        None => c,
                        Some(prev) => prev.intersection(&c).copied().collect(),
                    });
                }
                acc.unwrap_or_else(|| self.all_docs())
            }
            ContainsExpr::Or(items) => {
                let mut out = BTreeSet::new();
                for i in items {
                    out.extend(self.candidates_inner(i));
                }
                out
            }
            ContainsExpr::Not(_) => self.all_docs(),
        }
    }

    /// Documents containing the exact word sequence `words` (positional
    /// phrase query).
    pub fn phrase_docs(&self, words: &[String]) -> BTreeSet<DocId> {
        let mut out = BTreeSet::new();
        let Some(first) = words.first() else {
            return self.all_docs();
        };
        'docs: for doc in self.docs_with_word(first) {
            let starts = self.positions(doc, first).to_vec();
            'starts: for s in &starts {
                for (k, w) in words.iter().enumerate().skip(1) {
                    if !self.positions(doc, w).contains(&(s + k as u32)) {
                        continue 'starts;
                    }
                }
                out.insert(doc);
                continue 'docs;
            }
        }
        out
    }

    /// Documents where `w1` and `w2` occur within `k` words of each other.
    ///
    /// `k` counts *intervening* words (adjacent occurrences are at distance
    /// 0, i.e. position difference 1 ⇒ accepted for every `k`), the two
    /// occurrences must be distinct tokens, and matching is
    /// case-insensitive — exactly the `NearUnit::Words` semantics of
    /// [`mod@crate::near`], as pinned by `tests/near_parity.rs`.
    pub fn near_docs(&self, w1: &str, w2: &str, k: u32) -> BTreeSet<DocId> {
        if let Some(m) = self.obs() {
            m.index_queries.inc();
        }
        let d1 = self.docs_with_word(w1);
        let d2 = self.docs_with_word(w2);
        let mut out = BTreeSet::new();
        for doc in d1.intersection(&d2) {
            let p1 = self.positions(*doc, w1);
            let p2 = self.positions(*doc, w2);
            // Look for a pair of distinct occurrences with at most k
            // intervening words (position difference ≤ k + 1). The second
            // list is sorted, so each inner scan stops once past the window.
            'pairs: for &a in p1 {
                for &b in p2 {
                    if b > a + k + 1 {
                        break;
                    }
                    if a != b && a.abs_diff(b) <= k + 1 {
                        out.insert(*doc);
                        break 'pairs;
                    }
                }
            }
        }
        out
    }
}

/// If the pattern is a plain literal (no operators), its text.
fn literal_text(p: &Pattern) -> Option<String> {
    fn chars_of(p: &Pattern, out: &mut String) -> bool {
        match p {
            Pattern::Empty => true,
            Pattern::Char(c) => {
                out.push(*c);
                true
            }
            Pattern::Concat(items) => items.iter().all(|i| chars_of(i, out)),
            _ => false,
        }
    }
    let mut s = String::new();
    if chars_of(p, &mut s) {
        Some(s)
    } else {
        None
    }
}

/// If the pattern is a plain literal (no operators), its word decomposition.
fn literal_words(p: &Pattern) -> Option<Vec<String>> {
    let s = literal_text(p)?;
    let words: Vec<String> = tokenize(&s).iter().map(|t| normalize(t.word)).collect();
    if words.is_empty() {
        None
    } else {
        Some(words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InvertedIndex {
        let mut ix = InvertedIndex::new();
        ix.add(1, "Structured documents can benefit from database support");
        ix.add(2, "an SGML document in an OODBMS");
        ix.add(3, "queries over complex objects; the complex object model");
        ix
    }

    #[test]
    fn word_lookup() {
        let ix = sample();
        assert_eq!(ix.docs_with_word("documents"), BTreeSet::from([1]));
        assert_eq!(ix.docs_with_word("SGML"), BTreeSet::from([2]));
        assert_eq!(
            ix.docs_with_word("sgml"),
            BTreeSet::from([2]),
            "case folded"
        );
        assert!(ix.docs_with_word("ghost").is_empty());
    }

    #[test]
    fn boolean_queries() {
        let ix = sample();
        let e = ContainsExpr::all_of(["SGML", "OODBMS"]).unwrap();
        assert_eq!(ix.docs_matching(&e), BTreeSet::from([2]));
        let o = ContainsExpr::Or(vec![
            ContainsExpr::pattern("SGML").unwrap(),
            ContainsExpr::pattern("database").unwrap(),
        ]);
        assert_eq!(ix.docs_matching(&o), BTreeSet::from([1, 2]));
        let n = ContainsExpr::Not(Box::new(ContainsExpr::pattern("SGML").unwrap()));
        assert_eq!(ix.docs_matching(&n), BTreeSet::from([1, 3]));
    }

    #[test]
    fn phrase_query_uses_positions() {
        let ix = sample();
        let e = ContainsExpr::pattern("complex object").unwrap();
        assert_eq!(ix.docs_matching(&e), BTreeSet::from([3]));
        // "objects the" crosses the `;` — still adjacent as words.
        assert_eq!(
            ix.phrase_docs(&["objects".into(), "the".into()]),
            BTreeSet::from([3])
        );
        assert!(ix
            .phrase_docs(&["object".into(), "queries".into()])
            .is_empty());
    }

    #[test]
    fn vocabulary_grep_for_patterns() {
        let ix = sample();
        let e = ContainsExpr::pattern("(d|D)ocument.*").unwrap();
        let docs = ix.docs_matching(&e);
        assert_eq!(docs, BTreeSet::from([1, 2]));
    }

    #[test]
    fn near_docs_respects_distance() {
        let ix = sample();
        assert_eq!(ix.near_docs("SGML", "OODBMS", 3), BTreeSet::from([2]));
        assert!(ix.near_docs("SGML", "OODBMS", 1).is_empty());
        assert_eq!(ix.near_docs("complex", "objects", 0), BTreeSet::from([3]));
    }

    #[test]
    fn incremental_add_appends_positions() {
        let mut ix = InvertedIndex::new();
        ix.add(7, "first part");
        ix.add(7, "second part");
        assert_eq!(ix.doc_count(), 1);
        assert_eq!(ix.positions(7, "part"), &[1, 3]);
        assert_eq!(
            ix.phrase_docs(&["second".into(), "part".into()]),
            BTreeSet::from([7])
        );
    }

    #[test]
    fn merge_of_shards_equals_sequential_build() {
        let texts: &[(DocId, &str)] = &[
            (1, "Structured documents can benefit from database support"),
            (2, "an SGML document in an OODBMS"),
            (3, "queries over complex objects; the complex object model"),
            (4, "paths navigate the logical structure"),
        ];
        let mut sequential = InvertedIndex::new();
        for (d, t) in texts {
            sequential.add(*d, t);
        }
        let mut merged = InvertedIndex::new();
        for shard_docs in texts.chunks(2) {
            let mut shard = InvertedIndex::new();
            for (d, t) in shard_docs {
                shard.add(*d, t);
            }
            merged.merge(shard);
        }
        assert_eq!(merged.doc_count(), sequential.doc_count());
        assert_eq!(merged.term_count(), sequential.term_count());
        for word in ["complex", "SGML", "structure", "the"] {
            assert_eq!(merged.docs_with_word(word), sequential.docs_with_word(word));
        }
        assert_eq!(
            merged.positions(3, "complex"),
            sequential.positions(3, "complex")
        );
    }

    #[test]
    fn merge_overlapping_doc_appends_like_add() {
        let mut by_add = InvertedIndex::new();
        by_add.add(7, "first part");
        by_add.add(7, "second part");
        let mut left = InvertedIndex::new();
        left.add(7, "first part");
        let mut right = InvertedIndex::new();
        right.add(7, "second part");
        left.merge(right);
        assert_eq!(left.doc_count(), 1);
        assert_eq!(left.positions(7, "part"), by_add.positions(7, "part"));
        assert_eq!(
            left.phrase_docs(&["second".into(), "part".into()]),
            BTreeSet::from([7])
        );
    }

    #[test]
    fn cloned_index_shares_postings_until_written() {
        let ix = sample();
        let mut fork = ix.clone();
        let shared = |a: &InvertedIndex, b: &InvertedIndex, w: &str, d: DocId| {
            Arc::ptr_eq(
                a.postings.get(w).and_then(|m| m.get(&d)).unwrap(),
                b.postings.get(w).and_then(|m| m.get(&d)).unwrap(),
            )
        };
        assert!(shared(&ix, &fork, "complex", 3), "clone shares positions");
        fork.add(3, "more complex text");
        assert!(
            !shared(&ix, &fork, "complex", 3),
            "append copy-on-writes the touched list"
        );
        assert_eq!(ix.positions(3, "complex"), &[2, 5], "original unchanged");
        assert_eq!(fork.positions(3, "complex"), &[2, 5, 9]);
        assert!(
            shared(&ix, &fork, "queries", 3),
            "untouched lists still shared"
        );
    }

    #[test]
    fn stats() {
        let ix = sample();
        assert_eq!(ix.doc_count(), 3);
        assert!(ix.term_count() > 10);
    }

    #[test]
    fn posting_lengths_and_word_totals() {
        let ix = sample();
        assert_eq!(ix.posting_doc_count("complex"), 1);
        assert_eq!(ix.posting_doc_count("SGML"), 1, "case folded");
        assert_eq!(ix.posting_doc_count("an"), 1, "per-doc, not per-occurrence");
        assert_eq!(ix.posting_doc_count("ghost"), 0);
        let words: u64 = ix.doc_words().map(|(_, c)| u64::from(c)).sum();
        assert_eq!(ix.total_words(), words);
        assert!(ix.total_words() > 0);
    }
}
