//! Word tokenisation with positions, shared by `near` and the inverted index.

/// A token: the word, its 0-based word index, and its byte span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token<'a> {
    /// The word as it appears (original case).
    pub word: &'a str,
    /// 0-based word position.
    pub index: usize,
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

/// Split `text` into word tokens. A word is a maximal run of alphanumeric
/// characters (Unicode), so punctuation separates words.
pub fn tokenize(text: &str) -> Vec<Token<'_>> {
    let mut out = Vec::new();
    let mut start: Option<usize> = None;
    for (i, c) in text.char_indices() {
        if c.is_alphanumeric() {
            if start.is_none() {
                start = Some(i);
            }
        } else if let Some(s) = start.take() {
            out.push(Token {
                word: &text[s..i],
                index: out.len(),
                start: s,
                end: i,
            });
        }
    }
    if let Some(s) = start {
        out.push(Token {
            word: &text[s..],
            index: out.len(),
            start: s,
            end: text.len(),
        });
    }
    out
}

/// Lower-case a word for index normalisation.
pub fn normalize(word: &str) -> String {
    word.to_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_space() {
        let toks = tokenize("Structured documents (e.g., SGML) benefit!");
        let words: Vec<&str> = toks.iter().map(|t| t.word).collect();
        assert_eq!(
            words,
            vec!["Structured", "documents", "e", "g", "SGML", "benefit"]
        );
        assert_eq!(toks[4].index, 4);
    }

    #[test]
    fn byte_spans_are_exact() {
        let text = "ab  cd";
        let toks = tokenize(text);
        assert_eq!(&text[toks[0].start..toks[0].end], "ab");
        assert_eq!(&text[toks[1].start..toks[1].end], "cd");
    }

    #[test]
    fn empty_and_all_punct() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("—!?—").is_empty());
    }

    #[test]
    fn unicode_words() {
        let toks = tokenize("élan vital");
        assert_eq!(toks[0].word, "élan");
    }

    #[test]
    fn trailing_word_without_delimiter() {
        let toks = tokenize("end");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].word, "end");
    }

    #[test]
    fn normalize_lowercases() {
        assert_eq!(normalize("SGML"), "sgml");
        assert_eq!(normalize("Élan"), "élan");
    }
}
