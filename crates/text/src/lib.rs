//! # docql-text — pattern matching and full-text indexing (§4.1)
//!
//! The information-retrieval substrate the paper's query extensions assume:
//! a pattern language with concatenation, disjunction and Kleene closure
//! compiled to a Thompson NFA ([`pattern`], [`nfa`]); the `contains`
//! predicate over boolean combinations of patterns ([`contains`]); the
//! `near` proximity predicate ([`mod@near`]); and a positional inverted index
//! with vocabulary-grep support for pattern queries ([`index`]).

pub mod contains;
pub mod index;
pub mod metrics;
pub mod near;
pub mod nfa;
pub mod pattern;
pub mod tokenize;

pub use contains::{scan_fuel, ContainsExpr, ContainsMatcher};
pub use index::{DocId, InvertedIndex};
pub use metrics::TextMetrics;
pub use near::{near, near_guarded, NearUnit};
pub use nfa::Nfa;
pub use pattern::{Pattern, PatternError};
pub use tokenize::{normalize, tokenize, Token};
