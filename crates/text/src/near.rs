//! The `near` textual predicate (§4.1): "check whether two words are
//! separated by, at most, a given number of characters (or words)".

use crate::tokenize::{normalize, tokenize};

/// Distance unit for [`near`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NearUnit {
    /// Count intervening words.
    Words,
    /// Count intervening characters (bytes of UTF-8 are *not* used; the gap
    /// is measured in characters).
    Chars,
}

/// Are `w1` and `w2` both present in `text` with at most `k` units between
/// them (in either order)? Word comparison is case-insensitive.
///
/// Pinned semantics (shared with [`crate::InvertedIndex::near_docs`], which
/// answers the same question per document for `NearUnit::Words`):
///
/// * `k` counts *intervening* units — adjacent words are at word-distance 0;
/// * the two matches must be distinct tokens, so a word is never near
///   itself, but two separate occurrences of the same word do count;
/// * the predicate is symmetric in `w1`/`w2`.
///
/// `tests/near_parity.rs` holds both implementations to this contract.
pub fn near(text: &str, w1: &str, w2: &str, k: usize, unit: NearUnit) -> bool {
    near_guarded(text, w1, w2, k, unit, None).unwrap_or(false)
}

/// [`near`] under execution governance: charges
/// [`scan_fuel`](crate::contains::scan_fuel) for the text up front and
/// returns `None` — without scanning — when the guard trips.
pub fn near_guarded(
    text: &str,
    w1: &str,
    w2: &str,
    k: usize,
    unit: NearUnit,
    guard: Option<&docql_guard::Guard>,
) -> Option<bool> {
    if let Some(g) = guard {
        if g.fuel(crate::contains::scan_fuel(text)).interrupted() {
            return None;
        }
    }
    Some(near_unguarded(text, w1, w2, k, unit))
}

fn near_unguarded(text: &str, w1: &str, w2: &str, k: usize, unit: NearUnit) -> bool {
    let toks = tokenize(text);
    let n1 = normalize(w1);
    let n2 = normalize(w2);
    let pos1: Vec<&crate::tokenize::Token<'_>> =
        toks.iter().filter(|t| normalize(t.word) == n1).collect();
    if pos1.is_empty() {
        return false;
    }
    let pos2: Vec<&crate::tokenize::Token<'_>> =
        toks.iter().filter(|t| normalize(t.word) == n2).collect();
    for a in &pos1 {
        for b in &pos2 {
            if a.index == b.index {
                continue;
            }
            let (first, second) = if a.index < b.index { (a, b) } else { (b, a) };
            let dist = match unit {
                NearUnit::Words => second.index - first.index - 1,
                NearUnit::Chars => text[first.end..second.start].chars().count(),
            };
            if dist <= k {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: &str = "structured documents can benefit a lot from database support";

    #[test]
    fn adjacent_words_are_near_zero() {
        assert!(near(T, "structured", "documents", 0, NearUnit::Words));
        assert!(!near(T, "structured", "benefit", 0, NearUnit::Words));
    }

    #[test]
    fn word_distance_counts_gap() {
        // "can benefit a lot from" — between "can" and "from" are 3 words.
        assert!(near(T, "can", "from", 3, NearUnit::Words));
        assert!(!near(T, "can", "from", 2, NearUnit::Words));
    }

    #[test]
    fn order_does_not_matter() {
        assert!(near(T, "documents", "structured", 0, NearUnit::Words));
    }

    #[test]
    fn char_distance() {
        let t = "ab  cd";
        assert!(near(t, "ab", "cd", 2, NearUnit::Chars));
        assert!(!near(t, "ab", "cd", 1, NearUnit::Chars));
    }

    #[test]
    fn absent_words_are_never_near() {
        assert!(!near(T, "structured", "ghost", 100, NearUnit::Words));
        assert!(!near("", "a", "b", 100, NearUnit::Words));
    }

    #[test]
    fn case_insensitive() {
        assert!(near(
            "SGML and OODBMS",
            "sgml",
            "oodbms",
            1,
            NearUnit::Words
        ));
    }

    #[test]
    fn same_word_twice() {
        assert!(near("ping pong ping", "ping", "ping", 1, NearUnit::Words));
        assert!(!near("ping", "ping", "ping", 10, NearUnit::Words));
    }
}
