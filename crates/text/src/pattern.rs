//! The pattern language of the `contains` predicate (§4.1).
//!
//! "Patterns are constructed using concatenation, disjunction, Kleene
//! closure, etc." — we provide a small regex dialect with literals,
//! grouping `( )`, alternation `|`, closures `* + ?`, wildcard `.`, simple
//! character classes `[a-z]`, and `\`-escapes. The paper's own example
//! `"(t|T)itle"` parses here.

use std::fmt;

/// Errors from pattern parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternError {
    /// Byte offset in the pattern source.
    pub at: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pattern error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for PatternError {}

/// A parsed pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum Pattern {
    /// The empty pattern (matches the empty string).
    Empty,
    /// A single literal character.
    Char(char),
    /// Any single character (`.`).
    Any,
    /// A character class: ranges, possibly negated.
    Class {
        negated: bool,
        ranges: Vec<(char, char)>,
    },
    /// Concatenation.
    Concat(Vec<Pattern>),
    /// Disjunction (`|`).
    Alt(Vec<Pattern>),
    /// Kleene closure (`*`).
    Star(Box<Pattern>),
    /// One or more (`+`).
    Plus(Box<Pattern>),
    /// Zero or one (`?`).
    Opt(Box<Pattern>),
}

impl Pattern {
    /// Parse a pattern from its textual form.
    pub fn parse(src: &str) -> Result<Pattern, PatternError> {
        let mut p = Parser {
            chars: src.char_indices().collect(),
            pos: 0,
        };
        let pat = p.alternation()?;
        if p.pos < p.chars.len() {
            return Err(PatternError {
                at: p.chars[p.pos].0,
                msg: format!("unexpected `{}`", p.chars[p.pos].1),
            });
        }
        Ok(pat)
    }

    /// A pattern matching exactly this literal text.
    pub fn literal(text: &str) -> Pattern {
        Pattern::Concat(text.chars().map(Pattern::Char).collect())
    }
}

struct Parser {
    chars: Vec<(usize, char)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn at(&self) -> usize {
        self.chars
            .get(self.pos)
            .map(|&(i, _)| i)
            .unwrap_or_else(|| {
                self.chars
                    .last()
                    .map(|&(i, c)| i + c.len_utf8())
                    .unwrap_or(0)
            })
    }

    fn alternation(&mut self) -> Result<Pattern, PatternError> {
        let mut alts = vec![self.concat()?];
        while self.peek() == Some('|') {
            self.bump();
            alts.push(self.concat()?);
        }
        Ok(if alts.len() == 1 {
            alts.pop().expect("len checked")
        } else {
            Pattern::Alt(alts)
        })
    }

    fn concat(&mut self) -> Result<Pattern, PatternError> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.repeat()?);
        }
        Ok(match items.len() {
            0 => Pattern::Empty,
            1 => items.pop().expect("len checked"),
            _ => Pattern::Concat(items),
        })
    }

    fn repeat(&mut self) -> Result<Pattern, PatternError> {
        let mut base = self.atom()?;
        loop {
            match self.peek() {
                Some('*') => {
                    self.bump();
                    base = Pattern::Star(Box::new(base));
                }
                Some('+') => {
                    self.bump();
                    base = Pattern::Plus(Box::new(base));
                }
                Some('?') => {
                    self.bump();
                    base = Pattern::Opt(Box::new(base));
                }
                _ => return Ok(base),
            }
        }
    }

    fn atom(&mut self) -> Result<Pattern, PatternError> {
        let at = self.at();
        match self.bump() {
            None => Err(PatternError {
                at,
                msg: "unexpected end of pattern".to_string(),
            }),
            Some('(') => {
                let inner = self.alternation()?;
                if self.bump() != Some(')') {
                    return Err(PatternError {
                        at: self.at(),
                        msg: "unclosed `(`".to_string(),
                    });
                }
                Ok(inner)
            }
            Some('.') => Ok(Pattern::Any),
            Some('[') => self.class(),
            Some('\\') => match self.bump() {
                Some(c) => Ok(Pattern::Char(c)),
                None => Err(PatternError {
                    at,
                    msg: "dangling escape".to_string(),
                }),
            },
            Some(c @ ('*' | '+' | '?')) => Err(PatternError {
                at,
                msg: format!("`{c}` with nothing to repeat"),
            }),
            Some(c) => Ok(Pattern::Char(c)),
        }
    }

    fn class(&mut self) -> Result<Pattern, PatternError> {
        let start = self.at();
        let negated = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut ranges = Vec::new();
        loop {
            match self.bump() {
                None => {
                    return Err(PatternError {
                        at: start,
                        msg: "unclosed `[`".to_string(),
                    });
                }
                Some(']') if !ranges.is_empty() || negated => break,
                Some(']') => break, // empty class matches nothing
                Some('\\') => {
                    let c = self.bump().ok_or(PatternError {
                        at: start,
                        msg: "dangling escape in class".to_string(),
                    })?;
                    ranges.push((c, c));
                }
                Some(lo) => {
                    if self.peek() == Some('-')
                        && self.chars.get(self.pos + 1).map(|&(_, c)| c) != Some(']')
                        && self.chars.get(self.pos + 1).is_some()
                    {
                        self.bump(); // the dash
                        let hi = self.bump().expect("checked above");
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
            }
        }
        Ok(Pattern::Class { negated, ranges })
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn needs_group(p: &Pattern) -> bool {
            // Empty must render as an explicit group under a quantifier, or
            // the operator would dangle (`+` instead of `()+`).
            matches!(p, Pattern::Concat(_) | Pattern::Alt(_) | Pattern::Empty)
        }
        fn write_sub(p: &Pattern, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            if needs_group(p) {
                write!(f, "({p})")
            } else {
                write!(f, "{p}")
            }
        }
        match self {
            Pattern::Empty => Ok(()),
            Pattern::Char(c) => {
                if "()|*+?.[]\\".contains(*c) {
                    write!(f, "\\{c}")
                } else {
                    write!(f, "{c}")
                }
            }
            Pattern::Any => f.write_str("."),
            Pattern::Class { negated, ranges } => {
                f.write_str("[")?;
                if *negated {
                    f.write_str("^")?;
                }
                for (lo, hi) in ranges {
                    if lo == hi {
                        write!(f, "{lo}")?;
                    } else {
                        write!(f, "{lo}-{hi}")?;
                    }
                }
                f.write_str("]")
            }
            Pattern::Concat(items) => {
                for i in items {
                    if matches!(i, Pattern::Alt(_)) {
                        write!(f, "({i})")?;
                    } else {
                        write!(f, "{i}")?;
                    }
                }
                Ok(())
            }
            Pattern::Alt(items) => {
                for (k, i) in items.iter().enumerate() {
                    if k > 0 {
                        f.write_str("|")?;
                    }
                    write!(f, "{i}")?;
                }
                Ok(())
            }
            Pattern::Star(p) => {
                write_sub(p, f)?;
                f.write_str("*")
            }
            Pattern::Plus(p) => {
                write_sub(p, f)?;
                f.write_str("+")
            }
            Pattern::Opt(p) => {
                write_sub(p, f)?;
                f.write_str("?")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example() {
        // The paper queries `name(A) contains "(t|T)itle"`.
        let p = Pattern::parse("(t|T)itle").unwrap();
        match p {
            Pattern::Concat(items) => {
                assert!(matches!(items[0], Pattern::Alt(_)));
                assert_eq!(items.len(), 5);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn closures_bind_tightly() {
        let p = Pattern::parse("ab*").unwrap();
        match p {
            Pattern::Concat(items) => {
                assert_eq!(items[0], Pattern::Char('a'));
                assert!(matches!(items[1], Pattern::Star(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn escapes() {
        assert_eq!(Pattern::parse(r"\*").unwrap(), Pattern::Char('*'));
        assert!(Pattern::parse(r"\").is_err());
    }

    #[test]
    fn classes_and_ranges() {
        let p = Pattern::parse("[a-z0]").unwrap();
        assert_eq!(
            p,
            Pattern::Class {
                negated: false,
                ranges: vec![('a', 'z'), ('0', '0')]
            }
        );
        let n = Pattern::parse("[^x]").unwrap();
        assert!(matches!(n, Pattern::Class { negated: true, .. }));
    }

    #[test]
    fn dangling_operators_rejected() {
        assert!(Pattern::parse("*a").is_err());
        assert!(Pattern::parse("(a").is_err());
        assert!(Pattern::parse("a)").is_err());
    }

    #[test]
    fn empty_pattern_ok() {
        assert_eq!(Pattern::parse("").unwrap(), Pattern::Empty);
        assert_eq!(
            Pattern::parse("a|").unwrap(),
            Pattern::Alt(vec![Pattern::Char('a'), Pattern::Empty])
        );
    }

    #[test]
    fn display_round_trips() {
        for src in [
            "(t|T)itle",
            "ab*c+d?",
            "[a-z]+",
            "a\\*b",
            "x|y|z",
            "(ab|cd)*",
        ] {
            let p = Pattern::parse(src).unwrap();
            let printed = p.to_string();
            let re = Pattern::parse(&printed).unwrap();
            assert_eq!(p, re, "round-trip of {src} via {printed}");
        }
    }

    #[test]
    fn literal_constructor_escapes_nothing() {
        let p = Pattern::literal("a*b");
        assert_eq!(
            p,
            Pattern::Concat(vec![
                Pattern::Char('a'),
                Pattern::Char('*'),
                Pattern::Char('b')
            ])
        );
    }
}
