//! A tiny seeded PRNG (SplitMix64), mirroring `docql_corpus`'s generator so
//! property tests are deterministic without an external dependency — the
//! container builds offline, so the harness cannot pull `proptest` from
//! crates.io. (The two copies exist because a `corpus → prop` dependency
//! would close an awkward dev-dependency cycle: `model` dev-depends on
//! `prop`, and `corpus` transitively depends on `model`.)

/// Deterministic pseudo-random generator: same seed → same sequence.
#[derive(Debug, Clone)]
pub struct SeededRng {
    state: u64,
}

impl SeededRng {
    /// A generator seeded from a `u64` (mirrors `rand`'s `seed_from_u64`).
    pub fn seed_from_u64(seed: u64) -> SeededRng {
        SeededRng { state: seed }
    }

    /// The next 64 random bits (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[range.start, range.end)`. The range must be
    /// non-empty. (Modulo bias is negligible for the small ranges property
    /// generators use.)
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        debug_assert!(range.start < range.end, "gen_range: empty range");
        let span = (range.end - range.start) as u64;
        range.start + (self.next_u64() % span) as usize
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        // 53 high bits → uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SeededRng::seed_from_u64(42);
        let mut b = SeededRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = SeededRng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SeededRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3..9);
            assert!((3..9).contains(&v));
        }
    }
}
