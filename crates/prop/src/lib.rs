//! `docql-prop`: a minimal, dependency-free property-testing harness.
//!
//! The workspace ships five property suites that were written against an
//! external property-testing library and gated off with `#![cfg(any())]`
//! because the build environment is offline. This crate vendors just enough
//! of that design to run them in tier-1 CI:
//!
//! - [`gen`] — generator combinators ([`Gen`]) with integrated shrinking
//!   ([`Shrinkable`]): `just`, `element`, `one_of`, `weighted`, `vec_of`,
//!   `string_of`, numeric/bool primitives, `zip`/`zip3`, and `recursive`
//!   for tree-shaped data.
//! - [`runner`] — [`check`] samples a configurable number of cases
//!   (`DOCQL_PROP_CASES`, `DOCQL_PROP_SEED` env overrides) and greedily
//!   shrinks the first failure to a minimal counterexample before
//!   panicking. Properties return `Result<(), String>`; the
//!   [`prop_assert!`] and [`prop_assert_eq!`] macros produce the `Err`s.
//! - [`rng`] — the deterministic SplitMix64 [`SeededRng`] everything runs
//!   on (a mirror of `docql_corpus`'s generator, see the module docs).
//!
//! A property looks like:
//!
//! ```
//! use docql_prop::{check, prop_assert, vec_of, usize_in};
//!
//! // (in a test target, mark this `#[test]`)
//! fn reverse_twice_is_identity() {
//!     check("reverse_twice_is_identity", 256, &vec_of(usize_in(0..100), 0..16), |xs| {
//!         let mut twice = xs.clone();
//!         twice.reverse();
//!         twice.reverse();
//!         prop_assert!(twice == *xs);
//!         Ok(())
//!     });
//! }
//! # reverse_twice_is_identity();
//! ```

pub mod gen;
pub mod rng;
pub mod runner;

pub use gen::{
    bool_any, element, f64_any, i64_any, just, one_of, recursive, string_of, usize_in, vec_of,
    weighted, zip, zip3, Gen, Shrinkable,
};
pub use rng::SeededRng;
pub use runner::{check, check_with, Config, DEFAULT_SEED};
