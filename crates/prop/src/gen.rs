//! Generator combinators with integrated shrinking.
//!
//! A [`Gen<T>`] samples a [`Shrinkable<T>`]: the generated value plus a
//! lazily-computed list of *simpler* candidate values, each itself
//! shrinkable. The runner walks this tree greedily on failure — descend
//! into the first child that still fails, repeat — which is the classic
//! integrated-shrinking design (Hypothesis, proptest): shrinks are derived
//! from the generator, so they always satisfy its invariants.

use crate::rng::SeededRng;
use std::ops::Range;
use std::rc::Rc;

/// A generated value together with its lazily-computed shrink candidates.
pub struct Shrinkable<T> {
    /// The generated value.
    pub value: T,
    shrinks: Rc<dyn Fn() -> Vec<Shrinkable<T>>>,
}

impl<T: Clone> Clone for Shrinkable<T> {
    fn clone(&self) -> Shrinkable<T> {
        Shrinkable {
            value: self.value.clone(),
            shrinks: Rc::clone(&self.shrinks),
        }
    }
}

impl<T: 'static> Shrinkable<T> {
    /// A value with no shrinks.
    pub fn leaf(value: T) -> Shrinkable<T> {
        Shrinkable {
            value,
            shrinks: Rc::new(Vec::new),
        }
    }

    /// A value with the given shrink-candidate producer.
    pub fn with(value: T, shrinks: impl Fn() -> Vec<Shrinkable<T>> + 'static) -> Shrinkable<T> {
        Shrinkable {
            value,
            shrinks: Rc::new(shrinks),
        }
    }

    /// The shrink candidates, simplest-first by convention.
    pub fn shrinks(&self) -> Vec<Shrinkable<T>> {
        (self.shrinks)()
    }

    /// Map the value and every shrink through `f`.
    pub fn map<U: 'static>(&self, f: Rc<dyn Fn(&T) -> U>) -> Shrinkable<U>
    where
        T: 'static,
    {
        let value = f(&self.value);
        let inner = Rc::clone(&self.shrinks);
        Shrinkable {
            value,
            shrinks: Rc::new(move || {
                let f = Rc::clone(&f);
                inner().iter().map(|s| s.map(Rc::clone(&f))).collect()
            }),
        }
    }
}

/// The boxed sampling function inside a [`Gen`].
type GenFn<T> = Rc<dyn Fn(&mut SeededRng) -> Shrinkable<T>>;

/// A reusable, clonable generator of shrinkable values.
pub struct Gen<T> {
    run: GenFn<T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Gen<T> {
        Gen {
            run: Rc::clone(&self.run),
        }
    }
}

impl<T: 'static> Gen<T> {
    /// A generator from a sampling function.
    pub fn new(f: impl Fn(&mut SeededRng) -> Shrinkable<T> + 'static) -> Gen<T> {
        Gen { run: Rc::new(f) }
    }

    /// Sample one shrinkable value.
    pub fn sample(&self, rng: &mut SeededRng) -> Shrinkable<T> {
        (self.run)(rng)
    }

    /// Transform generated values (shrinks are mapped through `f` too).
    pub fn map<U: 'static>(&self, f: impl Fn(&T) -> U + 'static) -> Gen<U> {
        let g = self.clone();
        let f: Rc<dyn Fn(&T) -> U> = Rc::new(f);
        Gen::new(move |rng| g.sample(rng).map(Rc::clone(&f)))
    }
}

/// Always the same value (no shrinks) — proptest's `Just`.
pub fn just<T: Clone + 'static>(value: T) -> Gen<T> {
    Gen::new(move |_| Shrinkable::leaf(value.clone()))
}

fn element_at<T: Clone + 'static>(items: Rc<Vec<T>>, i: usize) -> Shrinkable<T> {
    let value = items[i].clone();
    Shrinkable::with(value, move || {
        (0..i).map(|j| element_at(Rc::clone(&items), j)).collect()
    })
}

/// One of the given values, uniformly; shrinks toward earlier elements.
pub fn element<T: Clone + 'static>(items: Vec<T>) -> Gen<T> {
    assert!(!items.is_empty(), "element: no choices");
    let items = Rc::new(items);
    Gen::new(move |rng| {
        let i = rng.gen_range(0..items.len());
        element_at(Rc::clone(&items), i)
    })
}

/// Sample from one of the given generators, uniformly.
pub fn one_of<T: 'static>(gens: Vec<Gen<T>>) -> Gen<T> {
    assert!(!gens.is_empty(), "one_of: no choices");
    Gen::new(move |rng| {
        let i = rng.gen_range(0..gens.len());
        gens[i].sample(rng)
    })
}

/// Sample from the generators with the given relative weights.
pub fn weighted<T: 'static>(choices: Vec<(u32, Gen<T>)>) -> Gen<T> {
    let total: u64 = choices.iter().map(|(w, _)| u64::from(*w)).sum();
    assert!(total > 0, "weighted: zero total weight");
    Gen::new(move |rng| {
        let mut ticket = (rng.next_u64() % total) as i64;
        for (w, g) in &choices {
            ticket -= i64::from(*w);
            if ticket < 0 {
                return g.sample(rng);
            }
        }
        choices[choices.len() - 1].1.sample(rng)
    })
}

fn shrink_usize(min: usize, v: usize) -> Shrinkable<usize> {
    Shrinkable::with(v, move || {
        let mut cands = Vec::new();
        if v > min {
            cands.push(min);
            let half = min + (v - min) / 2;
            if half != min {
                cands.push(half);
            }
            if v - 1 != half {
                cands.push(v - 1);
            }
        }
        cands.into_iter().map(|c| shrink_usize(min, c)).collect()
    })
}

/// A `usize` in `[range.start, range.end)`; shrinks toward the start.
pub fn usize_in(range: Range<usize>) -> Gen<usize> {
    Gen::new(move |rng| shrink_usize(range.start, rng.gen_range(range.clone())))
}

fn shrink_i64(v: i64) -> Shrinkable<i64> {
    Shrinkable::with(v, move || {
        let mut cands = Vec::new();
        if v != 0 {
            cands.push(0);
            if v / 2 != 0 {
                cands.push(v / 2);
            }
            let step = v - v.signum();
            if step != 0 && step != v / 2 {
                cands.push(step);
            }
        }
        cands.into_iter().map(shrink_i64).collect()
    })
}

/// Any `i64` (uniform bits); shrinks toward zero.
pub fn i64_any() -> Gen<i64> {
    Gen::new(|rng| shrink_i64(rng.next_u64() as i64))
}

/// Any `f64` bit pattern — including infinities and NaNs, like proptest's
/// `any::<f64>()`; shrinks to `0.0`.
pub fn f64_any() -> Gen<f64> {
    Gen::new(|rng| {
        let v = f64::from_bits(rng.next_u64());
        Shrinkable::with(v, move || {
            if v.to_bits() == 0 {
                Vec::new()
            } else {
                vec![Shrinkable::leaf(0.0)]
            }
        })
    })
}

/// Either boolean; `true` shrinks to `false`.
pub fn bool_any() -> Gen<bool> {
    Gen::new(|rng| {
        if rng.gen_bool(0.5) {
            Shrinkable::with(true, || vec![Shrinkable::leaf(false)])
        } else {
            Shrinkable::leaf(false)
        }
    })
}

fn shrinkable_vec<T: Clone + 'static>(items: Vec<Shrinkable<T>>, min: usize) -> Shrinkable<Vec<T>> {
    let value: Vec<T> = items.iter().map(|s| s.value.clone()).collect();
    Shrinkable::with(value, move || {
        let mut out = Vec::new();
        // First try removing an element (bigger simplification) …
        if items.len() > min {
            for i in 0..items.len() {
                let mut rest = items.clone();
                rest.remove(i);
                out.push(shrinkable_vec(rest, min));
            }
        }
        // … then shrinking an element in place.
        for i in 0..items.len() {
            for s in items[i].shrinks() {
                let mut next = items.clone();
                next[i] = s;
                out.push(shrinkable_vec(next, min));
            }
        }
        out
    })
}

/// A vector with length in `[len.start, len.end)`; shrinks by removing
/// elements (down to the minimum length) and by shrinking elements.
pub fn vec_of<T: Clone + 'static>(item: Gen<T>, len: Range<usize>) -> Gen<Vec<T>> {
    Gen::new(move |rng| {
        let n = if len.start < len.end {
            rng.gen_range(len.clone())
        } else {
            len.start
        };
        let items: Vec<Shrinkable<T>> = (0..n).map(|_| item.sample(rng)).collect();
        shrinkable_vec(items, len.start)
    })
}

/// A string of `min..=max` characters drawn from `charset` — the harness's
/// analogue of proptest's `"[abc]{0,8}"` regex strategies. Shrinks by
/// dropping characters and by moving characters toward the charset's first.
pub fn string_of(charset: &str, min: usize, max: usize) -> Gen<String> {
    let chars: Vec<char> = charset.chars().collect();
    vec_of(element(chars), min..max + 1).map(|cs| cs.iter().collect::<String>())
}

fn shrink_pair<A: Clone + 'static, B: Clone + 'static>(
    a: Shrinkable<A>,
    b: Shrinkable<B>,
) -> Shrinkable<(A, B)> {
    let value = (a.value.clone(), b.value.clone());
    Shrinkable::with(value, move || {
        let mut out = Vec::new();
        for sa in a.shrinks() {
            out.push(shrink_pair(sa, b.clone()));
        }
        for sb in b.shrinks() {
            out.push(shrink_pair(a.clone(), sb));
        }
        out
    })
}

/// Pair two independent generators; shrinks interleave both components.
pub fn zip<A: Clone + 'static, B: Clone + 'static>(a: Gen<A>, b: Gen<B>) -> Gen<(A, B)> {
    Gen::new(move |rng| {
        let sa = a.sample(rng);
        let sb = b.sample(rng);
        shrink_pair(sa, sb)
    })
}

/// Triple three independent generators.
pub fn zip3<A: Clone + 'static, B: Clone + 'static, C: Clone + 'static>(
    a: Gen<A>,
    b: Gen<B>,
    c: Gen<C>,
) -> Gen<(A, B, C)> {
    zip(a, zip(b, c)).map(|(a, (b, c))| (a.clone(), b.clone(), c.clone()))
}

/// A recursive generator: start from `leaf` and apply `rec` up to `depth`
/// times, choosing recursion with 2:1 odds at each layer — the analogue of
/// proptest's `prop_recursive`.
pub fn recursive<T: 'static>(
    leaf: Gen<T>,
    depth: usize,
    rec: impl Fn(&Gen<T>) -> Gen<T>,
) -> Gen<T> {
    let mut g = leaf.clone();
    for _ in 0..depth {
        let inner = rec(&g);
        g = weighted(vec![(1, leaf.clone()), (2, inner)]);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_shrinks_toward_first() {
        let g = element(vec![10, 20, 30]);
        let mut rng = SeededRng::seed_from_u64(1);
        for _ in 0..20 {
            let s = g.sample(&mut rng);
            for sh in s.shrinks() {
                assert!(sh.value < s.value);
            }
        }
    }

    #[test]
    fn vec_shrinks_respect_min_len() {
        let g = vec_of(usize_in(0..5), 2..6);
        let mut rng = SeededRng::seed_from_u64(2);
        for _ in 0..20 {
            let s = g.sample(&mut rng);
            assert!((2..6).contains(&s.value.len()));
            for sh in s.shrinks() {
                assert!(sh.value.len() >= 2);
            }
        }
    }

    #[test]
    fn string_of_draws_from_charset() {
        let g = string_of("abc", 0, 8);
        let mut rng = SeededRng::seed_from_u64(3);
        for _ in 0..50 {
            let s = g.sample(&mut rng);
            assert!(s.value.len() <= 8);
            assert!(s.value.chars().all(|c| "abc".contains(c)));
        }
    }

    #[test]
    fn weighted_respects_weights() {
        let g = weighted(vec![(1, just(false)), (9, just(true))]);
        let mut rng = SeededRng::seed_from_u64(4);
        let trues = (0..1000).filter(|_| g.sample(&mut rng).value).count();
        assert!((800..1000).contains(&trues), "trues = {trues}");
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn size(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 1,
                Tree::Node(kids) => 1 + kids.iter().map(size).sum::<usize>(),
            }
        }
        let g = recursive(just(Tree::Leaf), 4, |inner| {
            vec_of(inner.clone(), 0..3).map(|kids| Tree::Node(kids.clone()))
        });
        let mut rng = SeededRng::seed_from_u64(5);
        for _ in 0..100 {
            assert!(size(&g.sample(&mut rng).value) >= 1);
        }
    }
}
