//! The property runner: sample cases, report the first failure after
//! greedily shrinking it to a minimal counterexample.

use crate::gen::{Gen, Shrinkable};
use crate::rng::SeededRng;

/// Knobs for a property run.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of random cases to try.
    pub cases: usize,
    /// Base seed; each property mixes its own name in so suites don't see
    /// correlated inputs.
    pub seed: u64,
    /// Upper bound on shrink-candidate evaluations after a failure.
    pub max_shrinks: usize,
}

/// Default base seed when `DOCQL_PROP_SEED` is unset.
pub const DEFAULT_SEED: u64 = 0xD0C9_1D0C;

impl Config {
    /// A config from the environment: `DOCQL_PROP_CASES` overrides the
    /// suite's default case count, `DOCQL_PROP_SEED` the base seed.
    pub fn from_env(default_cases: usize) -> Config {
        let cases = std::env::var("DOCQL_PROP_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(default_cases);
        let seed = std::env::var("DOCQL_PROP_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_SEED);
        Config {
            cases,
            seed,
            max_shrinks: 2000,
        }
    }
}

/// FNV-1a over the property name, used to decorrelate per-property seeds.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Check `prop` against `default_cases` samples of `gen` (overridable via
/// `DOCQL_PROP_CASES`/`DOCQL_PROP_SEED`), panicking with a shrunk minimal
/// counterexample on failure. `prop` returns `Ok(())` to pass (or to skip a
/// vacuous case) and `Err(message)` to fail — the [`crate::prop_assert!`]
/// and [`crate::prop_assert_eq!`] macros produce those `Err`s.
pub fn check<T: std::fmt::Debug + Clone + 'static>(
    name: &str,
    default_cases: usize,
    gen: &Gen<T>,
    prop: impl Fn(&T) -> Result<(), String>,
) {
    check_with(name, Config::from_env(default_cases), gen, prop);
}

/// [`check`] with an explicit [`Config`].
pub fn check_with<T: std::fmt::Debug + Clone + 'static>(
    name: &str,
    config: Config,
    gen: &Gen<T>,
    prop: impl Fn(&T) -> Result<(), String>,
) {
    let seed = config.seed ^ fnv1a(name);
    let mut rng = SeededRng::seed_from_u64(seed);
    for case in 0..config.cases {
        let sample = gen.sample(&mut rng);
        if let Err(msg) = prop(&sample.value) {
            let (min, min_msg, steps) = shrink(sample, msg, &prop, config.max_shrinks);
            panic!(
                "property '{name}' failed at case {case}/{cases} \
                 (base seed {base}, {steps} shrink steps)\n  \
                 minimal input: {min:?}\n  error: {min_msg}",
                cases = config.cases,
                base = config.seed,
            );
        }
    }
}

/// Greedy shrink: repeatedly descend into the first shrink candidate that
/// still fails, bounded by `budget` total candidate evaluations.
fn shrink<T: Clone + 'static>(
    failing: Shrinkable<T>,
    msg: String,
    prop: &impl Fn(&T) -> Result<(), String>,
    budget: usize,
) -> (T, String, usize) {
    let mut cur = failing;
    let mut cur_msg = msg;
    let mut left = budget;
    let mut steps = 0;
    'outer: loop {
        for cand in cur.shrinks() {
            if left == 0 {
                break 'outer;
            }
            left -= 1;
            if let Err(m) = prop(&cand.value) {
                cur = cand;
                cur_msg = m;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (cur.value.clone(), cur_msg, steps)
}

/// Fail the enclosing property unless the condition holds. With extra
/// arguments, they format the failure message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fail the enclosing property unless both expressions are equal, showing
/// both values in the failure message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {}\n  left:  {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{}\n  left:  {:?}\n  right: {:?}",
                format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{usize_in, vec_of};

    #[test]
    fn passing_property_completes() {
        check("sum_is_bounded", 64, &vec_of(usize_in(0..10), 0..5), |xs| {
            prop_assert!(xs.iter().sum::<usize>() <= 9 * 4);
            Ok(())
        });
    }

    #[test]
    fn failing_property_shrinks_to_minimal() {
        let res = std::panic::catch_unwind(|| {
            check_with(
                "has_no_big_element",
                Config {
                    cases: 200,
                    seed: DEFAULT_SEED,
                    max_shrinks: 2000,
                },
                &vec_of(usize_in(0..100), 0..8),
                |xs| {
                    prop_assert!(xs.iter().all(|&x| x < 50), "found element >= 50");
                    Ok(())
                },
            );
        });
        let err = res.expect_err("property should fail");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        // Greedy shrinking should reduce the witness to a single minimal
        // offending element: the vector [50].
        assert!(msg.contains("minimal input: [50]"), "got: {msg}");
    }

    #[test]
    fn seed_env_is_deterministic() {
        // Same config twice must sample identical failures.
        let run = || {
            std::panic::catch_unwind(|| {
                check_with(
                    "always_fails",
                    Config {
                        cases: 1,
                        seed: 99,
                        max_shrinks: 0,
                    },
                    &usize_in(0..1000),
                    |_| Err("nope".to_string()),
                )
            })
            .expect_err("fails")
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default()
        };
        assert_eq!(run(), run());
    }
}
