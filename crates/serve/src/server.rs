//! The server proper: a fixed accept/worker thread pool over a
//! [`ServeStore`], with every socket failure mode mapped to a typed,
//! observable outcome.
//!
//! Robustness machinery, layer by layer:
//!
//! - **Backpressure** — accepted connections go through a bounded queue to
//!   the worker pool; a full queue answers `503` + `Retry-After` from the
//!   accept thread instead of piling up unbounded.
//! - **Slow-loris defense** — every connection socket carries OS read and
//!   write deadlines; a peer dribbling bytes gets `408` and the worker
//!   moves on.
//! - **Bounded parsing** — [`crate::http::ParseLimits`] cap what one
//!   request can make the server buffer (`431`/`413`/`400`).
//! - **Governed queries** — `X-Docql-*` headers become per-request
//!   [`QueryLimits`] merged over the server's defaults; guard trips map to
//!   distinct statuses (`504`/`422`/`499`/`429`) and the flight-recorder
//!   trace id is echoed in `X-Docql-Trace-Id`.
//! - **Cancel on disconnect** — while a query runs, its guard polls a
//!   [`CancelProbe`] that peeks the connection socket; a vanished client
//!   cancels the query within one guard-check boundary.
//! - **Graceful shutdown** — [`ServerHandle::shutdown`] stops accepting,
//!   drains in-flight work under a deadline, force-cancels stragglers,
//!   then checkpoints a persistent store.

use crate::http::{read_request, write_response, ChunkedWriter, HttpError, ParseLimits, Request};
use docql_guard::{CancelProbe, CancelToken, ExecError, QueryLimits};
use docql_model::Oid;
use docql_obs::{FlightRecorder, ServeMetrics};
use docql_store::{CheckpointReport, PersistentStore, SharedStore, StoreError};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The store a server fronts: plain MVCC, or MVCC + WAL durability.
pub enum ServeStore {
    /// In-memory [`SharedStore`] — writes die with the process.
    Shared(SharedStore),
    /// [`PersistentStore`] — writes are WAL-logged before they are
    /// acknowledged, and shutdown checkpoints the store.
    Persistent(Arc<PersistentStore>),
}

impl ServeStore {
    /// The MVCC read/query handle.
    pub fn shared(&self) -> &SharedStore {
        match self {
            ServeStore::Shared(s) => s,
            ServeStore::Persistent(p) => p.shared(),
        }
    }

    fn ingest(&self, sgml: &str) -> Result<Oid, StoreError> {
        match self {
            ServeStore::Shared(s) => s.ingest(sgml),
            ServeStore::Persistent(p) => p.ingest(sgml),
        }
    }

    fn bind(&self, name: &str, oid: Oid) -> Result<(), StoreError> {
        match self {
            ServeStore::Shared(s) => s.bind(name, oid),
            ServeStore::Persistent(p) => p.bind(name, oid),
        }
    }

    fn checkpoint(&self) -> Option<Result<CheckpointReport, StoreError>> {
        match self {
            ServeStore::Shared(_) => None,
            ServeStore::Persistent(p) => Some(p.checkpoint()),
        }
    }
}

/// Server tuning knobs. The defaults suit tests and small deployments;
/// the binary exposes each as a flag.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker threads — the concurrency ceiling for connections.
    pub workers: usize,
    /// Accepted connections waiting for a worker; beyond this the accept
    /// thread answers `503`.
    pub queue_depth: usize,
    /// Per-connection socket read deadline (slow-loris bound).
    pub read_timeout: Duration,
    /// Per-connection socket write deadline (stuck-peer bound).
    pub write_timeout: Duration,
    /// Request parser ceilings.
    pub parse: ParseLimits,
    /// Query limits merged under each request's `X-Docql-*` headers.
    pub default_limits: QueryLimits,
    /// How long [`ServerHandle::shutdown`] waits for in-flight
    /// connections before force-cancelling their queries.
    pub drain_deadline: Duration,
    /// Value of the `Retry-After` header on `429`/`503` responses.
    pub retry_after_secs: u64,
    /// Requests served per connection before it is closed (a fairness
    /// bound so one keep-alive peer cannot hold a worker forever).
    pub max_requests_per_conn: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 8,
            queue_depth: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            parse: ParseLimits::default(),
            default_limits: QueryLimits::none(),
            drain_deadline: Duration::from_secs(5),
            retry_after_secs: 1,
            max_requests_per_conn: 1024,
        }
    }
}

/// What [`ServerHandle::shutdown`] did.
#[derive(Debug)]
pub struct ShutdownReport {
    /// Did every in-flight connection finish within the drain deadline?
    pub drained_in_time: bool,
    /// Queries force-cancelled at the deadline.
    pub force_cancelled: usize,
    /// The shutdown checkpoint, when the store is persistent.
    pub checkpoint: Option<Result<CheckpointReport, StoreError>>,
}

struct Inner {
    config: ServerConfig,
    store: ServeStore,
    metrics: ServeMetrics,
    recorder: Arc<FlightRecorder>,
    addr: SocketAddr,
    draining: AtomicBool,
    shutdown_requested: AtomicBool,
    conn_seq: AtomicU64,
    active_conns: AtomicUsize,
    /// Cancel tokens of queries currently executing, keyed by connection
    /// id — the force-cancel list at the drain deadline.
    active_queries: Mutex<HashMap<u64, CancelToken>>,
}

/// A running server: the accept thread, the worker pool, and the shared
/// state. Dropping the handle without calling
/// [`ServerHandle::shutdown`] leaves the threads running detached.
pub struct ServerHandle {
    inner: Arc<Inner>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Namespace for [`Server::start`].
pub struct Server;

impl Server {
    /// Bind, spawn the pool, and start serving. Enables the store's
    /// metrics registry and flight recorder — the serving tier is not
    /// observable without them, and `/metrics` would otherwise be empty.
    pub fn start(config: ServerConfig, store: ServeStore) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        store.shared().set_metrics_enabled(true);
        store.shared().set_tracing_enabled(true);
        let registry = store.shared().read().metrics_registry().clone();
        let metrics = ServeMetrics::register(registry);
        let recorder = store.shared().flight_recorder();
        let inner = Arc::new(Inner {
            metrics,
            recorder,
            addr,
            draining: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            conn_seq: AtomicU64::new(0),
            active_conns: AtomicUsize::new(0),
            active_queries: Mutex::new(HashMap::new()),
            store,
            config,
        });

        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(inner.config.queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..inner.config.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("docql-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner, &rx))
            })
            .collect::<io::Result<Vec<_>>>()?;
        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("docql-serve-accept".to_string())
                .spawn(move || accept_loop(&inner, listener, tx))?
        };
        Ok(ServerHandle {
            inner,
            accept: Some(accept),
            workers,
        })
    }
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// The serving-tier metric handles.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.inner.metrics
    }

    /// The store being served.
    pub fn store(&self) -> &ServeStore {
        &self.inner.store
    }

    /// Has `POST /admin/shutdown` been called? The owner of the handle
    /// is expected to poll this and call [`ServerHandle::shutdown`].
    pub fn shutdown_requested(&self) -> bool {
        self.inner.shutdown_requested.load(Ordering::Relaxed)
    }

    /// Connections currently held by workers or the queue.
    pub fn active_connections(&self) -> usize {
        self.inner.active_conns.load(Ordering::Relaxed)
    }

    /// Stop accepting, drain in-flight connections under the configured
    /// deadline, force-cancel whatever is still running, join the pool,
    /// and checkpoint a persistent store. Idempotent per handle (the
    /// handle is consumed).
    pub fn shutdown(mut self) -> ShutdownReport {
        let inner = &self.inner;
        inner.draining.store(true, Ordering::SeqCst);
        if inner.metrics.enabled() {
            inner.metrics.drains_started.inc();
        }
        if inner.recorder.enabled() {
            inner
                .recorder
                .global_event("drain_start", format!("addr={}", inner.addr));
        }
        // Wake the blocking accept; the dummy connection is dropped by
        // the accept loop once it observes the draining flag.
        let _ = TcpStream::connect(inner.addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }

        // Workers finish their queues and in-flight requests; poll until
        // quiet or the deadline.
        let deadline = Instant::now() + inner.config.drain_deadline;
        while inner.active_conns.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let drained_in_time = inner.active_conns.load(Ordering::SeqCst) == 0;
        let mut force_cancelled = 0usize;
        if !drained_in_time {
            let tokens = inner
                .active_queries
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            for token in tokens.values() {
                token.cancel();
                force_cancelled += 1;
            }
            if inner.metrics.enabled() {
                inner
                    .metrics
                    .drain_force_cancels
                    .add(force_cancelled as u64);
            }
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
        let checkpoint = inner.store.checkpoint();
        if inner.recorder.enabled() {
            inner.recorder.global_event(
                "drain_complete",
                format!("in_time={drained_in_time} force_cancelled={force_cancelled}"),
            );
        }
        ShutdownReport {
            drained_in_time,
            force_cancelled,
            checkpoint,
        }
    }
}

fn accept_loop(inner: &Inner, listener: TcpListener, tx: SyncSender<TcpStream>) {
    for stream in listener.incoming() {
        if inner.draining.load(Ordering::SeqCst) {
            break; // the wake-up connection (or any racer) is dropped
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        if inner.metrics.enabled() {
            inner.metrics.connections_total.inc();
        }
        inner.active_conns.fetch_add(1, Ordering::SeqCst);
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(stream)) | Err(TrySendError::Disconnected(stream)) => {
                inner.active_conns.fetch_sub(1, Ordering::SeqCst);
                reject_busy(inner, stream);
            }
        }
    }
    // `tx` drops here; workers drain the queue and exit.
}

/// Tell an un-admitted peer to come back later, without letting it stall
/// the accept thread.
fn reject_busy(inner: &Inner, mut stream: TcpStream) {
    if inner.metrics.enabled() {
        inner.metrics.connections_rejected_busy.inc();
        inner.metrics.count_status(503);
    }
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let _ = write_response(
        &mut stream,
        503,
        &[("Retry-After", inner.config.retry_after_secs.to_string())],
        b"server busy\n",
        true,
    );
}

fn worker_loop(inner: &Inner, rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        let stream = {
            let rx = rx.lock().unwrap_or_else(PoisonError::into_inner);
            rx.recv()
        };
        let Ok(stream) = stream else {
            break; // accept thread gone and queue empty
        };
        let conn_id = inner.conn_seq.fetch_add(1, Ordering::Relaxed);
        // Connection-level panic isolation: queries are already caught at
        // the store boundary, so this guards server bugs — a panic kills
        // the connection, never the worker.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_connection(inner, stream, conn_id)
        }));
        // Whatever happened, the connection is done: release it so drain
        // and leak accounting stay exact.
        inner.active_conns.fetch_sub(1, Ordering::SeqCst);
        inner
            .active_queries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&conn_id);
        if outcome.is_err() {
            if inner.metrics.enabled() {
                inner.metrics.worker_panics.inc();
            }
            if inner.recorder.enabled() {
                inner
                    .recorder
                    .connection_event("conn_panic", conn_id, "worker caught a panic");
            }
        }
    }
}

fn handle_connection(inner: &Inner, mut stream: TcpStream, conn_id: u64) {
    if inner.metrics.enabled() {
        inner.metrics.connections_active.add(1);
    }
    let cfg = &inner.config;
    let served = (|| -> io::Result<()> {
        stream.set_read_timeout(Some(cfg.read_timeout))?;
        stream.set_write_timeout(Some(cfg.write_timeout))?;
        stream.set_nodelay(true)?;
        let mut reader = io::BufReader::new(stream.try_clone()?);
        for _ in 0..cfg.max_requests_per_conn.max(1) {
            match read_request(&mut reader, &cfg.parse) {
                Err(e) => {
                    match &e {
                        HttpError::Timeout => {
                            if inner.metrics.enabled() {
                                inner.metrics.read_timeouts.inc();
                            }
                            if inner.recorder.enabled() {
                                inner.recorder.connection_event(
                                    "conn_read_timeout",
                                    conn_id,
                                    "request read deadline",
                                );
                            }
                        }
                        HttpError::Closed if inner.recorder.enabled() => {
                            inner
                                .recorder
                                .connection_event("conn_closed", conn_id, "peer closed");
                        }
                        _ => {}
                    }
                    if let Some(status) = e.status() {
                        if inner.metrics.enabled() {
                            inner.metrics.count_status(status);
                        }
                        let mut body = e.message();
                        body.push('\n');
                        let _ = write_response(&mut stream, status, &[], body.as_bytes(), true);
                    }
                    break;
                }
                Ok(req) => {
                    let started = Instant::now();
                    let close = !req.keep_alive() || inner.draining.load(Ordering::SeqCst);
                    let keep_going = respond(inner, &mut stream, &req, conn_id, close);
                    if inner.metrics.enabled() {
                        let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        inner.metrics.request_ns.record(ns);
                    }
                    if close || !keep_going {
                        break;
                    }
                }
            }
        }
        Ok(())
    })();
    let _ = served;
    let _ = stream.shutdown(std::net::Shutdown::Both);
    if inner.metrics.enabled() {
        inner.metrics.connections_active.add(-1);
    }
}

/// Write a complete response, counting it by status class. Returns
/// whether the peer received it (a failed write means it is gone).
fn send(
    inner: &Inner,
    stream: &mut TcpStream,
    status: u16,
    headers: &[(&str, String)],
    body: &[u8],
    close: bool,
) -> bool {
    if inner.metrics.enabled() {
        inner.metrics.count_status(status);
    }
    write_response(stream, status, headers, body, close).is_ok()
}

/// Routes. Returns `false` when the connection should close (write
/// failure — the peer is gone).
fn respond(
    inner: &Inner,
    stream: &mut TcpStream,
    req: &Request,
    conn_id: u64,
    close: bool,
) -> bool {
    let draining = inner.draining.load(Ordering::SeqCst);
    let retry = ("Retry-After", inner.config.retry_after_secs.to_string());

    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            if draining {
                send(inner, stream, 503, &[retry], b"draining\n", close)
            } else {
                send(inner, stream, 200, &[], b"ok\n", close)
            }
        }
        ("GET", "/metrics") => {
            let text = inner.store.shared().metrics_prometheus();
            send(inner, stream, 200, &[], text.as_bytes(), close)
        }
        ("GET", "/metrics.json") => {
            let text = inner.store.shared().metrics_json();
            send(inner, stream, 200, &[], text.as_bytes(), close)
        }
        ("GET", "/traces") => {
            let text = inner.store.shared().traces_json();
            send(inner, stream, 200, &[], text.as_bytes(), close)
        }
        ("POST", "/query") => {
            if draining {
                send(inner, stream, 503, &[retry], b"draining\n", close)
            } else {
                serve_query(inner, stream, req, conn_id, close)
            }
        }
        ("POST", "/ingest") => {
            if draining {
                send(inner, stream, 503, &[retry], b"draining\n", close)
            } else {
                match std::str::from_utf8(&req.body) {
                    Err(_) => send(inner, stream, 400, &[], b"body is not UTF-8\n", close),
                    Ok(sgml) => match inner.store.ingest(sgml) {
                        Ok(oid) => {
                            let headers = [("X-Docql-Oid", oid.to_string())];
                            let body = format!("{}\n", oid.0);
                            send(inner, stream, 201, &headers, body.as_bytes(), close)
                        }
                        Err(e) => {
                            let body = format!("ingest failed: {e}\n");
                            send(inner, stream, 400, &[], body.as_bytes(), close)
                        }
                    },
                }
            }
        }
        ("POST", "/bind") => {
            if draining {
                send(inner, stream, 503, &[retry], b"draining\n", close)
            } else {
                let body = String::from_utf8_lossy(&req.body);
                let mut parts = body.split_whitespace();
                match (
                    parts.next(),
                    parts.next().and_then(|s| s.parse::<u32>().ok()),
                ) {
                    (Some(name), Some(id)) => match inner.store.bind(name, Oid(id)) {
                        Ok(()) => send(inner, stream, 204, &[], b"", close),
                        Err(e) => {
                            let body = format!("bind failed: {e}\n");
                            send(inner, stream, 400, &[], body.as_bytes(), close)
                        }
                    },
                    _ => send(
                        inner,
                        stream,
                        400,
                        &[],
                        b"expected body: <root-name> <oid-number>\n",
                        close,
                    ),
                }
            }
        }
        ("POST", "/admin/shutdown") => {
            inner.shutdown_requested.store(true, Ordering::SeqCst);
            if inner.recorder.enabled() {
                inner
                    .recorder
                    .connection_event("shutdown_requested", conn_id, "admin endpoint");
            }
            send(inner, stream, 202, &[], b"draining\n", close)
        }
        (_, "/healthz" | "/metrics" | "/metrics.json" | "/traces") => {
            send(inner, stream, 405, &[], b"use GET\n", close)
        }
        (_, "/query" | "/ingest" | "/bind" | "/admin/shutdown") => {
            send(inner, stream, 405, &[], b"use POST\n", close)
        }
        _ => send(inner, stream, 404, &[], b"no such route\n", close),
    }
}

/// Map a query failure onto the wire.
fn error_status(e: &StoreError) -> u16 {
    match e {
        StoreError::Interrupted(ExecError::DeadlineExceeded) => 504,
        StoreError::Interrupted(ExecError::BudgetExhausted(_)) => 422,
        StoreError::Interrupted(ExecError::Cancelled) => 499,
        StoreError::Interrupted(ExecError::AdmissionRejected) => 429,
        StoreError::QueryPanic(_) => 500,
        StoreError::Sgml(_) | StoreError::Map(_) | StoreError::Query(_) => 400,
        StoreError::Other(_) => 500,
    }
}

/// Build per-request limits from `X-Docql-*` headers.
fn request_limits(req: &Request) -> Result<(QueryLimits, docql_o2sql::Mode), String> {
    let mut limits = QueryLimits::none();
    let parse_u64 = |name: &str| -> Result<Option<u64>, String> {
        match req.header(name) {
            None => Ok(None),
            Some(v) => v
                .trim()
                .parse::<u64>()
                .map(Some)
                .map_err(|_| format!("{name} must be a non-negative integer, got {v:?}")),
        }
    };
    if let Some(ms) = parse_u64("X-Docql-Deadline-Ms")? {
        limits = limits.with_deadline(Duration::from_millis(ms));
    }
    if let Some(n) = parse_u64("X-Docql-Row-Budget")? {
        limits = limits.with_row_budget(n);
    }
    if let Some(n) = parse_u64("X-Docql-Path-Fuel")? {
        limits = limits.with_path_fuel(n);
    }
    match req.header("X-Docql-Degrade").map(str::trim) {
        None => {}
        Some("1") | Some("true") => limits = limits.with_degrade(),
        Some("0") | Some("false") => {}
        Some(v) => return Err(format!("X-Docql-Degrade must be 0/1/true/false, got {v:?}")),
    }
    let mode = match req.header("X-Docql-Mode").map(str::trim) {
        None | Some("interp") => docql_o2sql::Mode::Interpret,
        Some("algebraic") => docql_o2sql::Mode::Algebraic,
        Some(v) => return Err(format!("X-Docql-Mode must be interp|algebraic, got {v:?}")),
    };
    Ok((limits, mode))
}

/// A probe that answers "has this peer hung up?" by peeking the socket
/// in non-blocking mode. Consulted by the guard at amortized check
/// boundaries while the query executes.
fn disconnect_probe(stream: &TcpStream) -> Option<CancelProbe> {
    let peek = stream.try_clone().ok()?;
    Some(CancelProbe::new(move || {
        if peek.set_nonblocking(true).is_err() {
            return true;
        }
        let mut b = [0u8; 1];
        let gone = match peek.peek(&mut b) {
            Ok(0) => true,                                            // orderly FIN
            Ok(_) => false,                                           // pipelined bytes
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => false, // alive, idle
            Err(_) => true,                                           // reset
        };
        let _ = peek.set_nonblocking(false);
        gone
    }))
}

fn serve_query(
    inner: &Inner,
    stream: &mut TcpStream,
    req: &Request,
    conn_id: u64,
    close: bool,
) -> bool {
    let Ok(src) = std::str::from_utf8(&req.body) else {
        return send(inner, stream, 400, &[], b"query body is not UTF-8\n", close);
    };
    if src.trim().is_empty() {
        return send(inner, stream, 400, &[], b"empty query body\n", close);
    }
    let (limits, mode) = match request_limits(req) {
        Ok(v) => v,
        Err(msg) => {
            let body = format!("{msg}\n");
            return send(inner, stream, 400, &[], body.as_bytes(), close);
        }
    };

    let token = CancelToken::new();
    let mut limits = limits.with_cancel(token.clone());
    if let Some(probe) = disconnect_probe(stream) {
        limits = limits.with_probe(probe);
    }
    let limits = limits.or(&inner.config.default_limits);
    inner
        .active_queries
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(conn_id, token.clone());
    let (result, trace) = inner.store.shared().query_traced(src, mode, &limits);
    inner
        .active_queries
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .remove(&conn_id);

    let mut headers: Vec<(&str, String)> = Vec::new();
    if let Some(t) = &trace {
        headers.push(("X-Docql-Trace-Id", t.id.to_string()));
    }
    match result {
        Err(e) => {
            let status = error_status(&e);
            if status == 429 || status == 503 {
                headers.push(("Retry-After", inner.config.retry_after_secs.to_string()));
            }
            if status == 499 {
                if inner.metrics.enabled() {
                    inner.metrics.client_disconnects.inc();
                }
                if inner.recorder.enabled() {
                    inner.recorder.connection_event(
                        "conn_disconnect_cancel",
                        conn_id,
                        "query cancelled",
                    );
                }
            }
            let body = format!("{e}\n");
            send(inner, stream, status, &headers, body.as_bytes(), close)
        }
        Ok(result) => {
            // Stream the table: header lines, then one chunk per row, so
            // a large or degraded (partial-prefix) result reaches the
            // client incrementally; the governance outcome rides in the
            // trailers. The concatenated body is byte-identical to
            // `QueryResult::to_table()`.
            if close {
                headers.push(("Connection", "close".to_string()));
            }
            let rows = result.rendered_rows();
            let mut streamed = 0u64;
            let write = (|| -> io::Result<()> {
                let mut w = ChunkedWriter::begin(
                    stream,
                    200,
                    &headers,
                    &["X-Docql-Rows", "X-Docql-Partial"],
                )?;
                let head = result.table_header();
                w.chunk(head.as_bytes())?;
                streamed += head.len() as u64;
                for row in &rows {
                    w.chunk(format!("{row}\n").as_bytes())?;
                    streamed += row.len() as u64 + 1;
                }
                let partial = match &result.partial {
                    Some(trip) => trip.to_string(),
                    None => "none".to_string(),
                };
                w.finish(&[
                    ("X-Docql-Rows", rows.len().to_string()),
                    ("X-Docql-Partial", partial),
                ])
            })();
            if inner.metrics.enabled() {
                inner.metrics.count_status(200);
                inner.metrics.bytes_streamed.add(streamed);
            }
            match write {
                Ok(()) => true,
                Err(_) => {
                    // The peer vanished mid-stream.
                    if inner.metrics.enabled() {
                        inner.metrics.client_disconnects.inc();
                    }
                    if inner.recorder.enabled() {
                        inner.recorder.connection_event(
                            "conn_disconnect_midstream",
                            conn_id,
                            "write failed while streaming rows",
                        );
                    }
                    false
                }
            }
        }
    }
}
