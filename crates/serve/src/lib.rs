//! # docql-serve — the network serving tier
//!
//! An HTTP/1.1 server (std-only, like the rest of the workspace) that
//! puts the whole stack behind a wire: MVCC snapshot reads, governed
//! queries, WAL-durable writes, metrics, and traces — with every socket
//! failure mode mapped to a typed, observable outcome.
//!
//! - [`http`] — the bounded request parser (hard head/body ceilings →
//!   `431`/`413`/`400`, socket deadlines → `408`) and response writers,
//!   including chunked streaming with governance trailers.
//! - [`server`] — the fixed accept/worker pool, backpressure (`503` +
//!   `Retry-After`), per-request `X-Docql-*` limits, cancel-on-disconnect,
//!   and graceful drain + checkpoint-on-shutdown.
//! - [`client`] — the small blocking client the tests, chaos battery, CI
//!   smoke step, and bench B16 drive the server with.
//! - [`signal`] — `SIGINT`/`SIGTERM` → drain, for the binary.
//!
//! ## Routes
//!
//! | Route | Method | Purpose |
//! |---|---|---|
//! | `/query` | POST | O₂SQL text in the body; chunked table out |
//! | `/ingest` | POST | SGML document in the body; `201` + oid |
//! | `/bind` | POST | `<root-name> <oid>` in the body; `204` |
//! | `/metrics` | GET | Prometheus text exposition |
//! | `/metrics.json` | GET | the same registry as JSON |
//! | `/traces` | GET | flight-recorder rings as JSON |
//! | `/healthz` | GET | `200 ok` (or `503 draining`) |
//! | `/admin/shutdown` | POST | request a graceful drain |
//!
//! Per-request governance headers on `/query`: `X-Docql-Deadline-Ms`,
//! `X-Docql-Row-Budget`, `X-Docql-Path-Fuel`, `X-Docql-Degrade`,
//! `X-Docql-Mode` (`interp`|`algebraic`). Responses echo
//! `X-Docql-Trace-Id` and carry `X-Docql-Rows` / `X-Docql-Partial`
//! trailers after the chunked body.

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod server;
pub mod signal;

pub use client::{HttpClient, HttpResponse};
pub use http::{
    read_request, reason, write_response, ChunkedWriter, HttpError, ParseLimits, Request,
};
pub use server::{ServeStore, Server, ServerConfig, ServerHandle, ShutdownReport};
