//! A small blocking HTTP/1.1 client, just capable enough to talk to this
//! crate's server: keep-alive, fixed-length and chunked bodies, trailers.
//! The integration suites, the chaos battery, the CI smoke step, and bench
//! B16's load generator all drive the server through it, so the server is
//! exercised over real sockets rather than in-process shortcuts.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One parsed response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Headers in arrival order.
    pub headers: Vec<(String, String)>,
    /// The decoded body (chunk framing removed).
    pub body: Vec<u8>,
    /// Trailers, when the body was chunked.
    pub trailers: Vec<(String, String)>,
}

impl HttpResponse {
    /// First value of `name` among headers then trailers,
    /// case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .chain(self.trailers.iter())
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A keep-alive connection to the server.
pub struct HttpClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl HttpClient {
    /// Connect, with a read/write timeout applied to the socket.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(HttpClient { stream, reader })
    }

    /// The underlying socket (for fault injection in tests).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Send one request and read the response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<HttpResponse> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: docql\r\n");
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()?;
        self.read_response()
    }

    /// `GET`, no body.
    pub fn get(&mut self, path: &str) -> io::Result<HttpResponse> {
        self.request("GET", path, &[], b"")
    }

    /// `POST` with extra headers.
    pub fn post(
        &mut self,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<HttpResponse> {
        self.request("POST", path, headers, body)
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    fn read_header_block(&mut self) -> io::Result<Vec<(String, String)>> {
        let mut out = Vec::new();
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                return Ok(out);
            }
            if let Some((name, value)) = line.split_once(':') {
                out.push((name.to_string(), value.trim().to_string()));
            }
        }
    }

    /// Read one response (the request must already have been sent).
    pub fn read_response(&mut self) -> io::Result<HttpResponse> {
        let status_line = self.read_line()?;
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line: {status_line:?}"),
                )
            })?;
        let headers = self.read_header_block()?;
        let find = |name: &str| {
            headers
                .iter()
                .find(|(n, _)| n.eq_ignore_ascii_case(name))
                .map(|(_, v)| v.as_str())
        };

        let mut body = Vec::new();
        let mut trailers = Vec::new();
        if find("transfer-encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked")) {
            loop {
                let size_line = self.read_line()?;
                let size = usize::from_str_radix(size_line.trim(), 16).map_err(|_| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad chunk size: {size_line:?}"),
                    )
                })?;
                if size == 0 {
                    trailers = self.read_header_block()?;
                    break;
                }
                let mut chunk = vec![0u8; size];
                self.reader.read_exact(&mut chunk)?;
                body.extend_from_slice(&chunk);
                let mut crlf = [0u8; 2];
                self.reader.read_exact(&mut crlf)?;
            }
        } else if let Some(n) = find("content-length").and_then(|v| v.parse::<usize>().ok()) {
            body = vec![0u8; n];
            self.reader.read_exact(&mut body)?;
        }

        Ok(HttpResponse {
            status,
            headers,
            body,
            trailers,
        })
    }
}
