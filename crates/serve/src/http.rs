//! A deliberately small HTTP/1.1 wire layer: a bounded request parser and
//! response writers (fixed-length and chunked-with-trailers).
//!
//! The parser is written for hostile input. Every byte read is charged
//! against a hard limit ([`ParseLimits`]), so a peer can make us hold at
//! most `max_head_bytes + max_body_bytes` for a connection no matter what
//! it sends; anything over a limit or outside the grammar becomes a typed
//! [`HttpError`] that maps onto one status code ([`HttpError::status`]) —
//! never a panic, never unbounded buffering. Reads are expected to run
//! over a socket with an OS-level read timeout, which surfaces here as
//! [`HttpError::Timeout`] (the slow-loris path).

use std::io::{self, Read, Write};

/// Hard ceilings on what the parser will buffer for one request.
#[derive(Debug, Clone)]
pub struct ParseLimits {
    /// Request line + all header bytes (including separators).
    pub max_head_bytes: usize,
    /// Number of header lines.
    pub max_headers: usize,
    /// Declared `Content-Length` bodies above this are refused unread.
    pub max_body_bytes: usize,
}

impl Default for ParseLimits {
    fn default() -> ParseLimits {
        ParseLimits {
            max_head_bytes: 8 * 1024,
            max_headers: 64,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The method token, as sent (e.g. `GET`).
    pub method: String,
    /// The request target path, query string stripped.
    pub path: String,
    /// `HTTP/1.0` or `HTTP/1.1`.
    pub version: String,
    /// Header name/value pairs in arrival order, names as sent.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of `name`, matched case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Does the peer want the connection kept open after this exchange?
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.version == "HTTP/1.1",
        }
    }
}

/// Everything that can go wrong reading one request.
#[derive(Debug)]
pub enum HttpError {
    /// Grammar violation (bad request line, header without `:`, bad
    /// `Content-Length`, unsupported transfer coding, non-HTTP version).
    Malformed(&'static str),
    /// Request line + headers exceeded [`ParseLimits::max_head_bytes`] or
    /// [`ParseLimits::max_headers`].
    HeadersTooLarge,
    /// Declared body exceeds [`ParseLimits::max_body_bytes`].
    BodyTooLarge,
    /// The socket's read deadline fired mid-request (slow loris).
    Timeout,
    /// The peer went away: clean EOF before any byte of a request, EOF
    /// mid-request, or a connection-level I/O error. Nothing to answer.
    Closed,
}

impl HttpError {
    /// The status code this error is answered with, or `None` when the
    /// peer is gone and no response can be delivered.
    pub fn status(&self) -> Option<u16> {
        match self {
            HttpError::Malformed(_) => Some(400),
            HttpError::HeadersTooLarge => Some(431),
            HttpError::BodyTooLarge => Some(413),
            HttpError::Timeout => Some(408),
            HttpError::Closed => None,
        }
    }

    /// Short human text for the response body.
    pub fn message(&self) -> String {
        match self {
            HttpError::Malformed(why) => format!("malformed request: {why}"),
            HttpError::HeadersTooLarge => "request head too large".to_string(),
            HttpError::BodyTooLarge => "request body too large".to_string(),
            HttpError::Timeout => "timed out reading request".to_string(),
            HttpError::Closed => "connection closed".to_string(),
        }
    }
}

fn io_error(e: io::Error, got_any: bool) -> HttpError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
            // A fresh keep-alive connection idling out is a clean close;
            // a deadline firing mid-request is the slow-loris signature.
            if got_any {
                HttpError::Timeout
            } else {
                HttpError::Closed
            }
        }
        _ => HttpError::Closed,
    }
}

/// Read one request from `r`, enforcing `limits` as the bytes arrive.
///
/// `Err(HttpError::Closed)` covers both the benign case (peer closed an
/// idle keep-alive connection) and mid-request disconnects; either way
/// there is no one left to answer. `r` should be a buffered reader over a
/// socket with a read timeout set.
pub fn read_request(r: &mut impl Read, limits: &ParseLimits) -> Result<Request, HttpError> {
    // Head: accumulate until CRLFCRLF (or LFLF), bounded.
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte) {
            Ok(0) => return Err(HttpError::Closed),
            Ok(_) => head.push(byte[0]),
            Err(e) => return Err(io_error(e, !head.is_empty())),
        }
        if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
            break;
        }
        if head.len() > limits.max_head_bytes {
            return Err(HttpError::HeadersTooLarge);
        }
    }

    let head = std::str::from_utf8(&head).map_err(|_| HttpError::Malformed("head not UTF-8"))?;
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::Malformed("request line")),
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::Malformed("method token"));
    }
    if !(version == "HTTP/1.1" || version == "HTTP/1.0") {
        return Err(HttpError::Malformed("http version"));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue; // the blank terminator line
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::HeadersTooLarge);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header without colon"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed("header name"));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }

    let request = Request {
        method: method.to_string(),
        path: target.split('?').next().unwrap_or(target).to_string(),
        version: version.to_string(),
        headers,
        body: Vec::new(),
    };

    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::Malformed("transfer-encoding not supported"));
    }
    let body_len = match request.header("content-length") {
        None => 0usize,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed("content-length"))?,
    };
    if body_len > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge);
    }
    let mut body = vec![0u8; body_len];
    let mut filled = 0usize;
    while filled < body_len {
        match r.read(&mut body[filled..]) {
            Ok(0) => return Err(HttpError::Closed),
            Ok(n) => filled += n,
            Err(e) => return Err(io_error(e, true)),
        }
    }
    Ok(Request { body, ..request })
}

/// The reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        499 => "Client Closed Request",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Write a complete fixed-length response. `close` adds
/// `Connection: close`.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    headers: &[(&str, String)],
    body: &[u8],
    close: bool,
) -> io::Result<()> {
    let mut head = format!("HTTP/1.1 {status} {}\r\n", reason(status));
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    head.push_str("Content-Type: text/plain; charset=utf-8\r\n");
    if close {
        head.push_str("Connection: close\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// A `Transfer-Encoding: chunked` response in progress: rows stream out
/// one chunk at a time and the governance outcome rides in HTTP trailers,
/// so a partial (degraded) result is flagged *after* its prefix has
/// already been delivered.
pub struct ChunkedWriter<'a, W: Write> {
    w: &'a mut W,
}

impl<'a, W: Write> ChunkedWriter<'a, W> {
    /// Write the response head announcing chunked transfer and the
    /// trailer names that will follow the last chunk.
    pub fn begin(
        w: &'a mut W,
        status: u16,
        headers: &[(&str, String)],
        trailer_names: &[&str],
    ) -> io::Result<ChunkedWriter<'a, W>> {
        let mut head = format!("HTTP/1.1 {status} {}\r\n", reason(status));
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("Content-Type: text/plain; charset=utf-8\r\n");
        head.push_str("Transfer-Encoding: chunked\r\n");
        if !trailer_names.is_empty() {
            head.push_str(&format!("Trailer: {}\r\n", trailer_names.join(", ")));
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        Ok(ChunkedWriter { w })
    }

    /// Stream one chunk (empty input writes nothing — an empty chunk
    /// would terminate the body).
    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.w, "{:x}\r\n", data.len())?;
        self.w.write_all(data)?;
        self.w.write_all(b"\r\n")
    }

    /// Terminate the body and emit the trailers.
    pub fn finish(self, trailers: &[(&str, String)]) -> io::Result<()> {
        self.w.write_all(b"0\r\n")?;
        for (name, value) in trailers {
            write!(self.w, "{name}: {value}\r\n")?;
        }
        self.w.write_all(b"\r\n")?;
        self.w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(
            &mut io::Cursor::new(bytes.to_vec()),
            &ParseLimits::default(),
        )
    }

    #[test]
    fn parses_a_simple_request() {
        let r =
            parse(b"POST /query?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 2\r\n\r\nhi").unwrap();
        assert_eq!((r.method.as_str(), r.path.as_str()), ("POST", "/query"));
        assert_eq!(r.header("host"), Some("h"));
        assert_eq!(r.body, b"hi");
        assert!(r.keep_alive());
    }

    #[test]
    fn error_statuses_are_mapped() {
        assert_eq!(parse(b"GARBAGE\r\n\r\n").unwrap_err().status(), Some(400));
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(10_000));
        assert_eq!(parse(long.as_bytes()).unwrap_err().status(), Some(431));
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n")
                .unwrap_err()
                .status(),
            Some(413)
        );
        assert!(matches!(parse(b""), Err(HttpError::Closed)));
    }

    #[test]
    fn chunked_round_trip_shape() {
        let mut out = Vec::new();
        let mut w = ChunkedWriter::begin(
            &mut out,
            200,
            &[("X-Docql-Trace-Id", "00ff".to_string())],
            &["X-Docql-Rows"],
        )
        .unwrap();
        w.chunk(b"a | b\n").unwrap();
        w.chunk(b"").unwrap();
        w.finish(&[("X-Docql-Rows", "1".to_string())]).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(
            text.contains("6\r\na | b\n\r\n0\r\nX-Docql-Rows: 1\r\n\r\n"),
            "{text}"
        );
    }
}
