//! The `docql-serve` binary: serve a docql store over HTTP/1.1.
//!
//! ```text
//! docql-serve --addr 127.0.0.1:7171 --dir /var/lib/docql
//! ```
//!
//! With `--dir` the store is durable (WAL + checkpoints; an existing
//! directory is recovered, a fresh one is created). Without it the store
//! lives in memory. The schema defaults to the paper's article DTD with
//! the `my_article`/`my_old_article` roots; `--dtd FILE` and `--roots
//! a,b` override it at creation time.
//!
//! On `SIGINT`/`SIGTERM` (or `POST /admin/shutdown`) the server stops
//! accepting, drains in-flight queries under `--drain-ms`, force-cancels
//! stragglers, and checkpoints a persistent store before exiting.

use docql_serve::server::{ServeStore, Server, ServerConfig};
use docql_serve::signal;
use docql_store::{DocStore, PersistentStore, SharedStore};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    config: ServerConfig,
    dir: Option<String>,
    dtd: Option<String>,
    roots: Vec<String>,
    admit: Option<(usize, u64)>,
    segment_retain: Option<usize>,
}

fn usage() -> ! {
    eprintln!(
        "usage: docql-serve [flags]\n\
         \n\
         --addr HOST:PORT        bind address (default 127.0.0.1:7171; port 0 = ephemeral)\n\
         --dir PATH              persistent store directory (default: in-memory)\n\
         --dtd FILE              schema file for a new store (default: built-in article DTD)\n\
         --roots a,b             named roots for a new store (default my_article,my_old_article)\n\
         --workers N             worker threads (default 8)\n\
         --queue N               accepted-connection queue depth (default 64)\n\
         --read-timeout-ms N     per-connection read deadline (default 5000)\n\
         --write-timeout-ms N    per-connection write deadline (default 5000)\n\
         --drain-ms N            graceful-shutdown drain deadline (default 5000)\n\
         --max-head-bytes N      request-head ceiling (default 8192)\n\
         --max-headers N         header-count ceiling (default 64)\n\
         --max-body-bytes N      request-body ceiling (default 1048576)\n\
         --deadline-ms N         default query deadline\n\
         --row-budget N          default query row budget\n\
         --path-fuel N           default query path fuel\n\
         --degrade               default to partial results instead of errors on trips\n\
         --admit N[,WAIT_MS]     admission gate: max concurrent queries (default wait 100ms)\n\
         --retain N              checkpoint segments kept by GC (default 2)"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        config: ServerConfig {
            addr: "127.0.0.1:7171".to_string(),
            ..ServerConfig::default()
        },
        dir: None,
        dtd: None,
        roots: vec!["my_article".to_string(), "my_old_article".to_string()],
        admit: None,
        segment_retain: None,
    };
    let mut it = std::env::args().skip(1);
    let need = |it: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        it.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            usage()
        })
    };
    while let Some(flag) = it.next() {
        let parse_num = |v: String, flag: &str| -> u64 {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{flag}: expected a number, got {v:?}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => args.config.addr = need(&mut it, "--addr"),
            "--dir" => args.dir = Some(need(&mut it, "--dir")),
            "--dtd" => args.dtd = Some(need(&mut it, "--dtd")),
            "--roots" => {
                args.roots = need(&mut it, "--roots")
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--workers" => {
                args.config.workers = parse_num(need(&mut it, &flag), &flag) as usize;
            }
            "--queue" => args.config.queue_depth = parse_num(need(&mut it, &flag), &flag) as usize,
            "--read-timeout-ms" => {
                args.config.read_timeout =
                    Duration::from_millis(parse_num(need(&mut it, &flag), &flag));
            }
            "--write-timeout-ms" => {
                args.config.write_timeout =
                    Duration::from_millis(parse_num(need(&mut it, &flag), &flag));
            }
            "--drain-ms" => {
                args.config.drain_deadline =
                    Duration::from_millis(parse_num(need(&mut it, &flag), &flag));
            }
            "--max-head-bytes" => {
                args.config.parse.max_head_bytes = parse_num(need(&mut it, &flag), &flag) as usize;
            }
            "--max-headers" => {
                args.config.parse.max_headers = parse_num(need(&mut it, &flag), &flag) as usize;
            }
            "--max-body-bytes" => {
                args.config.parse.max_body_bytes = parse_num(need(&mut it, &flag), &flag) as usize;
            }
            "--deadline-ms" => {
                args.config.default_limits.deadline = Some(Duration::from_millis(parse_num(
                    need(&mut it, &flag),
                    &flag,
                )));
            }
            "--row-budget" => {
                args.config.default_limits.row_budget =
                    Some(parse_num(need(&mut it, &flag), &flag));
            }
            "--path-fuel" => {
                args.config.default_limits.path_fuel = Some(parse_num(need(&mut it, &flag), &flag));
            }
            "--degrade" => args.config.default_limits.degrade = true,
            "--admit" => {
                let v = need(&mut it, "--admit");
                let (n, wait) = match v.split_once(',') {
                    Some((n, w)) => (
                        parse_num(n.to_string(), "--admit") as usize,
                        parse_num(w.to_string(), "--admit"),
                    ),
                    None => (parse_num(v, "--admit") as usize, 100),
                };
                args.admit = Some((n, wait));
            }
            "--retain" => {
                args.segment_retain = Some(parse_num(need(&mut it, &flag), &flag) as usize);
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let dtd = match &args.dtd {
        None => docql_sgml::fixtures::ARTICLE_DTD.to_string(),
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("cannot read --dtd {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let roots: Vec<&str> = args.roots.iter().map(String::as_str).collect();

    let store = match &args.dir {
        None => {
            let store = match DocStore::new(&dtd, &roots) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot build store: {e}");
                    return ExitCode::FAILURE;
                }
            };
            ServeStore::Shared(SharedStore::new(store))
        }
        Some(dir) => {
            let path = std::path::Path::new(dir);
            let opened = if path.join("store.meta").exists() {
                PersistentStore::reopen(path)
            } else {
                PersistentStore::open(path, &dtd, &roots)
            };
            match opened {
                Ok((ps, report)) => {
                    if let Some(keep) = args.segment_retain {
                        ps.set_segment_retain(keep);
                    }
                    eprintln!(
                        "recovered {dir}: segment_seqno={:?} replayed={} truncated_bytes={}",
                        report.segment_seqno, report.replayed_records, report.truncated_bytes
                    );
                    ServeStore::Persistent(Arc::new(ps))
                }
                Err(e) => {
                    eprintln!("cannot open store at {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    if let Some((n, wait_ms)) = args.admit {
        store
            .shared()
            .set_admission_limit(n, Duration::from_millis(wait_ms));
    }

    let handle = match Server::start(args.config, store) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cannot start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The line the smoke tests and scripts parse to find the port.
    println!("listening on {}", handle.addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();

    signal::install();
    while !signal::signalled() && !handle.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(25));
    }
    eprintln!("draining...");
    let report = handle.shutdown();
    match &report.checkpoint {
        None => {}
        Some(Ok(ckpt)) => eprintln!(
            "checkpointed: applied_seqno={} bytes={}",
            ckpt.applied_seqno, ckpt.bytes
        ),
        Some(Err(e)) => eprintln!("shutdown checkpoint failed: {e}"),
    }
    eprintln!(
        "drained (in_time={} force_cancelled={})",
        report.drained_in_time, report.force_cancelled
    );
    ExitCode::SUCCESS
}
