//! Minimal std-only signal handling for the server binary: a flag flipped
//! by `SIGINT`/`SIGTERM`, polled from the main loop. The handler does
//! nothing but a relaxed atomic store — the only thing that is
//! async-signal-safe to do — so the actual drain runs on the main thread.

use std::sync::atomic::{AtomicBool, Ordering};

static SIGNALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::SIGNALLED;
    use std::os::raw::c_int;
    use std::sync::atomic::Ordering;

    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;

    extern "C" {
        // `std` already links libc on every unix target; `signal(2)` is
        // enough here — we need one flag, not sigaction's full surface.
        fn signal(signum: c_int, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_sig: c_int) {
        SIGNALLED.store(true, Ordering::Relaxed);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal as extern "C" fn(c_int) as usize);
            signal(SIGTERM, on_signal as extern "C" fn(c_int) as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No-op on non-unix targets: ctrl-c kills the process, which the
    /// recovery path already tolerates.
    pub fn install() {}
}

/// Install the `SIGINT`/`SIGTERM` handlers.
pub fn install() {
    imp::install();
}

/// Has a termination signal arrived?
pub fn signalled() -> bool {
    SIGNALLED.load(Ordering::Relaxed)
}
