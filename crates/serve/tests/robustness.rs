//! In-process server robustness: wire-level status goldens, backpressure,
//! admission rejection, cancel-on-disconnect, and drain force-cancel —
//! each against a `Server::start`ed pool whose metrics we can read
//! directly.

mod common;

use common::{article_sgml, SLOW_QUERY};
use docql_serve::server::{ServeStore, Server, ServerConfig, ServerHandle};
use docql_serve::HttpClient;
use docql_store::{DocStore, SharedStore};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn article_serve_store(n_docs: usize) -> ServeStore {
    let mut store = DocStore::new(
        docql_sgml::fixtures::ARTICLE_DTD,
        &["my_article", "my_old_article"],
    )
    .unwrap();
    let texts: Vec<String> = (0..n_docs as u64).map(article_sgml).collect();
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    let roots = store.ingest_batch(&refs).unwrap();
    store.bind("my_article", roots[1]).unwrap();
    store.bind("my_old_article", roots[0]).unwrap();
    ServeStore::Shared(SharedStore::new(store))
}

fn start(config: ServerConfig, n_docs: usize) -> ServerHandle {
    Server::start(config, article_serve_store(n_docs)).unwrap()
}

/// Write raw bytes, read whatever comes back until the server closes.
fn raw_exchange(addr: std::net::SocketAddr, wire: &[u8]) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let _ = s.write_all(wire); // the server may close mid-write (431)
    let _ = s.shutdown(std::net::Shutdown::Write);
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    out
}

#[test]
fn raw_wire_status_goldens() {
    let handle = start(ServerConfig::default(), 2);
    let addr = handle.addr();

    for (wire, status) in [
        (&b"GARBAGE\r\n\r\n"[..], "400 Bad Request"),
        (b"GET /no/such HTTP/1.1\r\n\r\n", "404 Not Found"),
        (b"DELETE /query HTTP/1.1\r\n\r\n", "405 Method Not Allowed"),
        (
            b"POST /query HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n",
            "413 Payload Too Large",
        ),
    ] {
        let got = raw_exchange(addr, wire);
        assert!(
            got.starts_with(&format!("HTTP/1.1 {status}\r\n")),
            "{:?} -> {got:?}",
            String::from_utf8_lossy(wire)
        );
    }

    // An oversized head is refused while it is still arriving.
    let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(64 * 1024));
    let got = raw_exchange(addr, long.as_bytes());
    assert!(
        got.starts_with("HTTP/1.1 431 Request Header Fields Too Large\r\n"),
        "{got:?}"
    );

    let report = handle.shutdown();
    assert!(report.drained_in_time);
}

#[test]
fn slow_loris_gets_408_and_frees_the_worker() {
    let config = ServerConfig {
        read_timeout: Duration::from_millis(150),
        ..ServerConfig::default()
    };
    let handle = start(config, 2);
    let addr = handle.addr();

    // Dribble a request head one byte at a time, then stall: the next
    // server-side read blocks past the deadline and the request is cut.
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    for b in b"GET / HT" {
        s.write_all(&[*b]).unwrap();
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    assert!(
        out.starts_with("HTTP/1.1 408 Request Timeout\r\n"),
        "{out:?}"
    );
    assert!(handle.metrics().read_timeouts.get() >= 1);

    // The worker it occupied is already serving others.
    let mut client = HttpClient::connect(addr, Duration::from_secs(5)).unwrap();
    assert_eq!(client.get("/healthz").unwrap().status, 200);
    handle.shutdown();
}

#[test]
fn full_queue_answers_503_with_retry_after() {
    // One worker, queue of one: occupy the worker with a slow-loris
    // connection, fill the queue, and the next arrival must bounce.
    let config = ServerConfig {
        workers: 1,
        queue_depth: 1,
        read_timeout: Duration::from_millis(800),
        ..ServerConfig::default()
    };
    let handle = start(config, 2);
    let addr = handle.addr();

    let occupier = TcpStream::connect(addr).unwrap(); // never writes
    std::thread::sleep(Duration::from_millis(100)); // let a worker pick it up
    let queued = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(50));

    let mut rejected = TcpStream::connect(addr).unwrap();
    rejected
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut out = String::new();
    let _ = rejected.read_to_string(&mut out);
    assert!(
        out.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
        "{out:?}"
    );
    assert!(out.contains("Retry-After: 1\r\n"), "{out:?}");
    assert!(handle.metrics().connections_rejected_busy.get() >= 1);

    drop(occupier);
    drop(queued);
    handle.shutdown();
}

#[test]
fn admission_gate_maps_to_429() {
    // One admission slot, held by a long-running query: the next query
    // waits out the gate's bounded wait and is turned away as 429.
    let handle = start(ServerConfig::default(), 60);
    handle
        .store()
        .shared()
        .set_admission_limit(1, Duration::from_millis(20));
    let addr = handle.addr();
    let holder = std::thread::spawn(move || {
        let mut client = HttpClient::connect(addr, Duration::from_secs(30)).unwrap();
        client.post("/query", &[], SLOW_QUERY.as_bytes())
    });
    std::thread::sleep(Duration::from_millis(100)); // let it take the slot

    let mut client = HttpClient::connect(addr, Duration::from_secs(5)).unwrap();
    let resp = client
        .post("/query", &[], b"select t from my_article PATH_p.title(t)")
        .unwrap();
    assert_eq!(resp.status, 429, "{}", resp.text());
    assert_eq!(resp.header("Retry-After"), Some("1"));

    drop(client);
    let resp = holder.join().unwrap().unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    handle.shutdown();
}

#[test]
fn disconnect_mid_query_cancels_it() {
    // A corpus big enough that SLOW_QUERY (|Articles|^3) runs for a long
    // time, and a client that hangs up shortly after asking.
    let handle = start(ServerConfig::default(), 60);
    let store = handle.store().shared().read();
    let cancelled_before = store.metrics().queries_cancelled.get();

    let client = HttpClient::connect(handle.addr(), Duration::from_secs(5)).unwrap();
    let head = format!(
        "POST /query HTTP/1.1\r\nHost: docql\r\nContent-Length: {}\r\n\r\n",
        SLOW_QUERY.len()
    );
    client
        .stream()
        .try_clone()
        .unwrap()
        .write_all(head.as_bytes())
        .unwrap();
    client
        .stream()
        .try_clone()
        .unwrap()
        .write_all(SLOW_QUERY.as_bytes())
        .unwrap();
    std::thread::sleep(Duration::from_millis(50));
    drop(client); // vanish mid-query

    // The disconnect probe fires at a guard boundary and the query stops
    // well before it could have finished.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let cancelled = handle
            .store()
            .shared()
            .read()
            .metrics()
            .queries_cancelled
            .get();
        if cancelled > cancelled_before {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "query was not cancelled after disconnect"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(handle.metrics().client_disconnects.get() >= 1);
    let report = handle.shutdown();
    assert_eq!(report.force_cancelled, 0);
}

#[test]
fn drain_deadline_force_cancels_stragglers() {
    let config = ServerConfig {
        drain_deadline: Duration::from_millis(120),
        ..ServerConfig::default()
    };
    let handle = start(config, 60);
    let addr = handle.addr();

    // A well-behaved client stuck in a very long query...
    let runner = std::thread::spawn(move || {
        let mut client = HttpClient::connect(addr, Duration::from_secs(30)).unwrap();
        client.post("/query", &[], SLOW_QUERY.as_bytes())
    });
    std::thread::sleep(Duration::from_millis(150)); // let it get going

    // ...is force-cancelled when the drain deadline passes.
    let report = handle.shutdown();
    assert!(!report.drained_in_time);
    assert!(report.force_cancelled >= 1, "{report:?}");

    // The client sees the cancellation as a 499, not a hang or a panic.
    let resp = runner.join().unwrap().unwrap();
    assert_eq!(resp.status, 499, "{}", resp.text());
}

#[test]
fn draining_healthz_and_routes_say_503() {
    // Drain with a connection already held open: requests on it observe
    // the draining state before the pool exits.
    let config = ServerConfig {
        drain_deadline: Duration::from_millis(300),
        ..ServerConfig::default()
    };
    let handle = start(config, 2);
    let addr = handle.addr();
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(2));
    let b2 = std::sync::Arc::clone(&barrier);
    let probe = std::thread::spawn(move || {
        let mut client = HttpClient::connect(addr, Duration::from_secs(5)).unwrap();
        assert_eq!(client.get("/healthz").unwrap().status, 200);
        b2.wait(); // shutdown starts now
        std::thread::sleep(Duration::from_millis(60));
        // The keep-alive connection is still served, but answers 503.
        client.get("/healthz").map(|r| r.status)
    });
    barrier.wait();
    let shutdown = std::thread::spawn(move || handle.shutdown());
    let status = probe.join().unwrap();
    assert!(
        matches!(status, Ok(503)) || status.is_err(),
        "expected 503 or a closed connection, got {status:?}"
    );
    shutdown.join().unwrap();
}
