//! Property tests for the bounded HTTP request parser (satellite 3): over
//! arbitrary and near-valid byte streams, `read_request` never panics and
//! never buffers more than its configured ceilings — plus golden tests
//! pinning each `HttpError` → status mapping.

mod common;

use docql_prop::{check, prop_assert, usize_in, vec_of, zip3};
use docql_serve::http::{read_request, reason, HttpError, ParseLimits};
use std::io::{self, Read};

/// A reader that counts every byte handed to the parser — the "bounded
/// memory" oracle: the parser can hold at most what it has consumed.
struct MeteredReader<R> {
    inner: R,
    consumed: usize,
}

impl<R: Read> Read for MeteredReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.consumed += n;
        Ok(n)
    }
}

fn small_limits() -> ParseLimits {
    ParseLimits {
        max_head_bytes: 128,
        max_headers: 8,
        max_body_bytes: 256,
    }
}

/// Parse `bytes` under `limits`, asserting the consumption bound; the
/// parser buffers only consumed bytes, so this bounds its memory too.
fn parse_metered(bytes: &[u8], limits: &ParseLimits) -> Result<(), String> {
    let mut r = MeteredReader {
        inner: io::Cursor::new(bytes.to_vec()),
        consumed: 0,
    };
    let _ = read_request(&mut r, limits); // must not panic
    let bound = limits.max_head_bytes + limits.max_body_bytes + 8;
    prop_assert!(
        r.consumed <= bound,
        "consumed {} bytes, bound {bound}",
        r.consumed
    );
    Ok(())
}

#[test]
fn prop_arbitrary_bytes_never_panic_and_memory_is_bounded() {
    let limits = small_limits();
    let bytes =
        vec_of(usize_in(0..256), 0..512).map(|v| v.iter().map(|&b| b as u8).collect::<Vec<u8>>());
    check("parser_arbitrary_bytes", 512, &bytes, move |bytes| {
        parse_metered(bytes, &limits)
    });
}

#[test]
fn prop_mutated_requests_never_panic_and_memory_is_bounded() {
    // Near-valid requests: a plausible head with attacker-chosen path
    // length, declared body length, and a truncation point — the space
    // where off-by-ones in limit accounting live.
    let limits = small_limits();
    let gen = zip3(
        usize_in(0..300), // path length
        usize_in(0..600), // declared Content-Length
        usize_in(0..700), // cut the wire after this many bytes
    );
    check(
        "parser_mutated_requests",
        512,
        &gen,
        move |&(path_len, body_len, cut)| {
            let mut wire = format!(
                "POST /{} HTTP/1.1\r\nHost: h\r\nContent-Length: {body_len}\r\n\r\n",
                "q".repeat(path_len)
            )
            .into_bytes();
            wire.extend(std::iter::repeat_n(b'x', body_len));
            wire.truncate(cut);
            parse_metered(&wire, &limits)
        },
    );
}

#[test]
fn prop_valid_requests_round_trip() {
    let gen = zip3(
        usize_in(0..40),                         // path length
        usize_in(0..100),                        // body length
        usize_in(0..small_limits().max_headers), // extra headers
    );
    check(
        "parser_valid_requests",
        256,
        &gen,
        |&(path_len, body_len, extra)| {
            let path = format!("/{}", "p".repeat(path_len));
            let body: Vec<u8> = (0..body_len).map(|i| (i % 251) as u8).collect();
            let mut head = format!("POST {path}?x=1 HTTP/1.1\r\nHost: h\r\n");
            for i in 0..extra {
                head.push_str(&format!("X-Extra-{i}: v{i}\r\n"));
            }
            head.push_str(&format!("Content-Length: {body_len}\r\n\r\n"));
            let mut wire = head.into_bytes();
            wire.extend_from_slice(&body);
            let req = read_request(&mut io::Cursor::new(wire), &ParseLimits::default())
                .map_err(|e| format!("rejected valid request: {}", e.message()))?;
            prop_assert!(req.method == "POST");
            prop_assert!(req.path == path, "path {:?} != {path:?}", req.path);
            prop_assert!(req.body == body);
            prop_assert!(req.header("host") == Some("h"));
            Ok(())
        },
    );
}

// ---------------------------------------------------------------------
// Goldens: one test per error → status mapping.

fn err_of(bytes: &[u8]) -> HttpError {
    read_request(
        &mut io::Cursor::new(bytes.to_vec()),
        &ParseLimits::default(),
    )
    .unwrap_err()
}

#[test]
fn golden_400_malformed_variants() {
    for wire in [
        &b"GARBAGE\r\n\r\n"[..],                    // one-token request line
        b"get / HTTP/1.1\r\n\r\n",                  // lowercase method
        b"GET / SPDY/9\r\n\r\n",                    // unknown protocol
        b"GET / HTTP/1.1 extra\r\n\r\n",            // four tokens
        b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n", // header without colon
        b"GET / HTTP/1.1\r\nBad Name: v\r\n\r\n",   // space in header name
        b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n", // unparsable length
        b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", // unsupported coding
        b"GET /\xff\xfe HTTP/1.1\r\n\r\n",          // non-UTF-8 head
    ] {
        let e = err_of(wire);
        assert_eq!(
            e.status(),
            Some(400),
            "{:?} -> {e:?}",
            String::from_utf8_lossy(wire)
        );
        assert!(matches!(e, HttpError::Malformed(_)));
    }
}

#[test]
fn golden_431_head_too_large() {
    let long_target = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(10_000));
    let e = err_of(long_target.as_bytes());
    assert!(matches!(e, HttpError::HeadersTooLarge));
    assert_eq!(e.status(), Some(431));

    let many_headers = format!(
        "GET / HTTP/1.1\r\n{}\r\n",
        (0..100).map(|i| format!("H{i}: v\r\n")).collect::<String>()
    );
    let e = err_of(many_headers.as_bytes());
    assert!(matches!(e, HttpError::HeadersTooLarge));
    assert_eq!(e.status(), Some(431));
}

#[test]
fn golden_413_body_too_large_is_refused_unread() {
    // The oversized body is refused from the declaration alone: the
    // parser must not consume a single body byte.
    let limits = ParseLimits::default();
    let head = format!(
        "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        limits.max_body_bytes + 1
    );
    let mut r = MeteredReader {
        inner: io::Cursor::new(head.clone().into_bytes()),
        consumed: 0,
    };
    let e = read_request(&mut r, &limits).unwrap_err();
    assert!(matches!(e, HttpError::BodyTooLarge));
    assert_eq!(e.status(), Some(413));
    assert_eq!(r.consumed, head.len());
}

#[test]
fn golden_408_timeout_only_mid_request() {
    // A read deadline mid-request is a slow loris (408)...
    struct TimeoutAfter(Vec<u8>, usize);
    impl Read for TimeoutAfter {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.1 >= self.0.len() {
                return Err(io::Error::from(io::ErrorKind::WouldBlock));
            }
            buf[0] = self.0[self.1];
            self.1 += 1;
            Ok(1)
        }
    }
    let limits = ParseLimits::default();
    let e = read_request(&mut TimeoutAfter(b"GET / HT".to_vec(), 0), &limits).unwrap_err();
    assert!(matches!(e, HttpError::Timeout));
    assert_eq!(e.status(), Some(408));

    // ...but an idle keep-alive connection timing out before any byte is
    // a clean close: nothing to answer.
    let e = read_request(&mut TimeoutAfter(Vec::new(), 0), &limits).unwrap_err();
    assert!(matches!(e, HttpError::Closed));
    assert_eq!(e.status(), None);
}

#[test]
fn golden_closed_has_no_status() {
    for wire in [
        &b""[..],
        b"GET / HTTP/1.1\r\nHost",
        b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nab",
    ] {
        let e = err_of(wire);
        assert!(
            matches!(e, HttpError::Closed),
            "{:?}",
            String::from_utf8_lossy(wire)
        );
        assert_eq!(e.status(), None);
    }
}

#[test]
fn golden_reason_phrases_cover_the_emitted_statuses() {
    for (status, phrase) in [
        (200, "OK"),
        (201, "Created"),
        (202, "Accepted"),
        (204, "No Content"),
        (400, "Bad Request"),
        (404, "Not Found"),
        (405, "Method Not Allowed"),
        (408, "Request Timeout"),
        (413, "Payload Too Large"),
        (422, "Unprocessable Entity"),
        (429, "Too Many Requests"),
        (431, "Request Header Fields Too Large"),
        (499, "Client Closed Request"),
        (500, "Internal Server Error"),
        (503, "Service Unavailable"),
        (504, "Gateway Timeout"),
    ] {
        assert_eq!(reason(status), phrase);
    }
}
