//! End-to-end smoke over the spawned `docql-serve` binary: the paper's
//! queries answered over HTTP must be byte-identical to the in-process
//! store, governance headers must map onto the documented statuses, the
//! observability endpoints must serve, and an admin shutdown must
//! checkpoint so a restart recovers everything that was acknowledged.

mod common;

use common::{
    populate_articles_over_http, reference_article_store, ServerProc, ARTICLE_QUERIES, Q6,
    SLOW_QUERY,
};
use docql::durable::TempDir;
use docql::store::DocStore;
use docql_corpus::{generate_letter, LetterParams};

const N_DOCS: usize = 6;

#[test]
fn article_queries_over_http_are_byte_identical() {
    let server = ServerProc::spawn(&[]);
    let mut client = server.client();
    populate_articles_over_http(&mut client, N_DOCS);
    let reference = reference_article_store(N_DOCS);

    for (i, q) in ARTICLE_QUERIES.iter().enumerate() {
        let expected = reference
            .query(q)
            .unwrap_or_else(|e| panic!("Q{}: {e}", i + 1));
        let resp = client.post("/query", &[], q.as_bytes()).unwrap();
        assert_eq!(resp.status, 200, "Q{}: {}", i + 1, resp.text());
        assert_eq!(resp.text(), expected.to_table(), "Q{} body differs", i + 1);
        let trace = resp
            .header("X-Docql-Trace-Id")
            .unwrap_or_else(|| panic!("Q{}: no X-Docql-Trace-Id", i + 1));
        assert_eq!(trace.len(), 16, "trace id {trace:?}");
        assert!(trace.bytes().all(|b| b.is_ascii_hexdigit()));
        assert_eq!(
            resp.header("X-Docql-Rows")
                .and_then(|v| v.parse::<usize>().ok()),
            Some(expected.rows.len()),
            "Q{} row trailer",
            i + 1
        );
        assert_eq!(resp.header("X-Docql-Partial"), Some("none"));
    }

    // The algebraic engine must agree over the wire too.
    for (i, q) in ARTICLE_QUERIES.iter().enumerate() {
        let expected = reference.query_algebraic(q).unwrap();
        let resp = client
            .post("/query", &[("X-Docql-Mode", "algebraic")], q.as_bytes())
            .unwrap();
        assert_eq!(resp.status, 200, "algebraic Q{}: {}", i + 1, resp.text());
        assert_eq!(
            resp.text(),
            expected.to_table(),
            "algebraic Q{} body",
            i + 1
        );
    }
}

#[test]
fn q6_over_http_matches_the_letters_reference() {
    // A letters server: custom DTD via --dtd, no named roots.
    let dir = TempDir::new("serve-letters-dtd").unwrap();
    let dtd_path = dir.path().join("letter.dtd");
    std::fs::write(&dtd_path, docql::fixtures::LETTER_DTD).unwrap();
    let server = ServerProc::spawn(&["--dtd", dtd_path.to_str().unwrap(), "--roots", ""]);
    let mut client = server.client();

    let mut reference = DocStore::new(docql::fixtures::LETTER_DTD, &[]).unwrap();
    for seed in 0..8u64 {
        let sgml = generate_letter(&LetterParams {
            seed,
            sender_first: Some(seed.is_multiple_of(2)),
            paras: 2,
        })
        .to_sgml();
        let resp = client.post("/ingest", &[], sgml.as_bytes()).unwrap();
        assert_eq!(resp.status, 201, "letter {seed}: {}", resp.text());
        reference.ingest(&sgml).unwrap();
    }

    let expected = reference.query(Q6).unwrap();
    assert!(
        !expected.rows.is_empty(),
        "Q6 reference should match letters"
    );
    let resp = client.post("/query", &[], Q6.as_bytes()).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert_eq!(resp.text(), expected.to_table());
}

#[test]
fn governance_headers_map_onto_statuses() {
    let server = ServerProc::spawn(&[]);
    let mut client = server.client();
    populate_articles_over_http(&mut client, N_DOCS);

    // An already-expired deadline trips at the first guard check: 504.
    let resp = client
        .post(
            "/query",
            &[("X-Docql-Deadline-Ms", "0")],
            SLOW_QUERY.as_bytes(),
        )
        .unwrap();
    assert_eq!(resp.status, 504, "{}", resp.text());
    assert!(resp.header("X-Docql-Trace-Id").is_some());

    // A strict row budget on a multi-row result: 422. Q2 matches the
    // planted "complex object" markers in the even-seeded documents.
    let multi_row = ARTICLE_QUERIES[1];
    let resp = client
        .post(
            "/query",
            &[("X-Docql-Row-Budget", "1")],
            multi_row.as_bytes(),
        )
        .unwrap();
    assert_eq!(resp.status, 422, "{}", resp.text());

    // The same budget with degrade: a 200 partial prefix, flagged in the
    // trailer after the rows have streamed.
    let resp = client
        .post(
            "/query",
            &[("X-Docql-Row-Budget", "1"), ("X-Docql-Degrade", "1")],
            multi_row.as_bytes(),
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let full = client.post("/query", &[], multi_row.as_bytes()).unwrap();
    assert_eq!(full.status, 200);
    let full_rows: usize = full.header("X-Docql-Rows").unwrap().parse().unwrap();
    let got_rows: usize = resp.header("X-Docql-Rows").unwrap().parse().unwrap();
    assert!(
        got_rows < full_rows,
        "partial {got_rows} vs full {full_rows}"
    );
    assert_eq!(
        resp.header("X-Docql-Partial"),
        Some("row budget exhausted"),
        "expected a degraded result"
    );
    // The partial body is a prefix-shaped table: same header, fewer rows.
    assert!(full.text().starts_with(resp.text().lines().next().unwrap()));

    // Unparsable governance headers are client errors, named precisely.
    for (name, value) in [
        ("X-Docql-Deadline-Ms", "soon"),
        ("X-Docql-Row-Budget", "-3"),
        ("X-Docql-Path-Fuel", "lots"),
        ("X-Docql-Degrade", "maybe"),
        ("X-Docql-Mode", "quantum"),
    ] {
        let resp = client
            .post("/query", &[(name, value)], ARTICLE_QUERIES[2].as_bytes())
            .unwrap();
        assert_eq!(resp.status, 400, "{name}: {}", resp.text());
        assert!(resp.text().contains(name), "{name}: {}", resp.text());
    }

    // A malformed query is a 400 that still carries its trace id.
    let resp = client.post("/query", &[], b"select nonsense ((").unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.header("X-Docql-Trace-Id").is_some());
}

#[test]
fn observability_and_admin_routes_serve() {
    let server = ServerProc::spawn(&[]);
    let mut client = server.client();
    populate_articles_over_http(&mut client, 2);
    let _ = client
        .post("/query", &[], ARTICLE_QUERIES[2].as_bytes())
        .unwrap();

    let resp = client.get("/healthz").unwrap();
    assert_eq!((resp.status, resp.text().as_str()), (200, "ok\n"));

    let resp = client.get("/metrics").unwrap();
    assert_eq!(resp.status, 200);
    let scrape = resp.text();
    for name in [
        "docql_serve_connections_total",
        "docql_serve_responses_2xx_total",
        "docql_serve_request_ns",
        "docql_queries_total",
    ] {
        assert!(scrape.contains(name), "scrape missing {name}:\n{scrape}");
    }

    let resp = client.get("/metrics.json").unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.text().contains("docql_serve_connections_total"));

    let resp = client.get("/traces").unwrap();
    assert_eq!(resp.status, 200);

    // Wrong methods are 405, unknown routes 404.
    assert_eq!(client.post("/metrics", &[], b"").unwrap().status, 405);
    assert_eq!(client.get("/query").unwrap().status, 405);
    assert_eq!(client.get("/no/such/route").unwrap().status, 404);
}

#[test]
fn admin_shutdown_checkpoints_and_restart_recovers() {
    let dir = TempDir::new("serve-restart").unwrap();
    let dir_arg = dir.path().to_str().unwrap().to_string();
    let expected = {
        let mut server = ServerProc::spawn(&["--dir", &dir_arg]);
        let mut client = server.client();
        populate_articles_over_http(&mut client, N_DOCS);
        let expected = client
            .post("/query", &[], ARTICLE_QUERIES[3].as_bytes())
            .unwrap();
        assert_eq!(expected.status, 200);

        let resp = client.post("/admin/shutdown", &[], b"").unwrap();
        assert_eq!((resp.status, resp.text().as_str()), (202, "draining\n"));
        assert!(server.wait_for_exit(std::time::Duration::from_secs(10)));
        expected.text()
    };

    // A fresh process over the same directory serves the same answers
    // without any re-ingest: the shutdown checkpoint captured the store.
    let server = ServerProc::spawn(&["--dir", &dir_arg]);
    let mut client = server.client();
    let resp = client
        .post("/query", &[], ARTICLE_QUERIES[3].as_bytes())
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert_eq!(resp.text(), expected);
}
