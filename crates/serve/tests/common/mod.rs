//! Shared plumbing for the serve-crate integration suites: corpus
//! builders mirroring the root `tests/util` shapes, a spawned-binary
//! harness, and the seed plumbing for the chaos battery.
//!
//! Each test binary compiles this module independently and uses a
//! different subset of it, so unused-item lints are suppressed at the
//! module level rather than per item.
#![allow(dead_code)]

use docql::store::DocStore;
use docql_corpus::{generate_article, ArticleParams};
use docql_serve::HttpClient;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// Q1–Q5 from the paper (the B6 suite), same as the root `tests/util`.
pub const ARTICLE_QUERIES: &[&str] = &[
    "select tuple (t: a.title, f_author: first(a.authors)) \
     from a in Articles, s in a.sections \
     where s.title contains (\"SGML\" and \"OODBMS\")",
    "select ss from a in Articles, s in a.sections, ss in s.subsectns \
     where text(ss) contains (\"complex object\")",
    "select t from my_article PATH_p.title(t)",
    "my_article PATH_p - my_old_article PATH_p",
    "select name(ATT_a) from my_article PATH_p.ATT_a(val) \
     where val contains (\"draft\")",
];

/// Q6 (the letters corpus).
pub const Q6: &str = "select letter from letter in Letters, \
                  i in positions(letter.preamble, \"from\"), \
                  j in positions(letter.preamble, \"to\") \
                  where i < j";

/// A triple cross-product over `Articles` — work grows as |Articles|³, so
/// on a large-enough corpus it is reliably in flight when a drain or a
/// disconnect arrives.
pub const SLOW_QUERY: &str = "select tuple (x: a.title, y: b.title) \
     from a in Articles, b in Articles, c in Articles \
     where a.title contains (\"SGML\")";

/// One synthetic article (4 sections × 2 subsections; even seeds carry the
/// planted "draft"/"complex object" markers) as SGML text.
pub fn article_sgml(seed: u64) -> String {
    generate_article(&ArticleParams {
        seed,
        sections: 4,
        subsections: 2,
        plant_every: if seed.is_multiple_of(2) { 2 } else { 0 },
        ..ArticleParams::default()
    })
    .to_sgml()
}

/// The in-process reference store the HTTP answers must match
/// byte-for-byte: `my_article` = the second document, `my_old_article` =
/// the first (the root suite's `article_store` shape).
pub fn reference_article_store(n_docs: usize) -> DocStore {
    let mut store = DocStore::new(
        docql::fixtures::ARTICLE_DTD,
        &["my_article", "my_old_article"],
    )
    .unwrap();
    let texts: Vec<String> = (0..n_docs as u64).map(article_sgml).collect();
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    let roots = store.ingest_batch(&refs).unwrap();
    store.bind("my_article", roots[1]).unwrap();
    store.bind("my_old_article", roots[0]).unwrap();
    store
}

/// Ingest the same `n_docs` articles over HTTP and bind the paper roots,
/// returning the server-assigned oids. The resulting server store answers
/// queries byte-identically to [`reference_article_store`]`(n_docs)`.
pub fn populate_articles_over_http(client: &mut HttpClient, n_docs: usize) -> Vec<u32> {
    let mut oids = Vec::with_capacity(n_docs);
    for seed in 0..n_docs as u64 {
        let resp = client
            .post("/ingest", &[], article_sgml(seed).as_bytes())
            .unwrap();
        assert_eq!(resp.status, 201, "ingest seed {seed}: {}", resp.text());
        let oid: u32 = resp.text().trim().parse().unwrap();
        assert_eq!(
            resp.header("X-Docql-Oid"),
            Some(format!("o{oid}")).as_deref()
        );
        oids.push(oid);
    }
    for (name, oid) in [("my_article", oids[1]), ("my_old_article", oids[0])] {
        let body = format!("{name} {oid}");
        let resp = client.post("/bind", &[], body.as_bytes()).unwrap();
        assert_eq!(resp.status, 204, "bind {name}: {}", resp.text());
    }
    oids
}

/// Base seed for the chaos sweeps: `DOCQL_FAULT` (decimal or `0x`-hex),
/// defaulting to a fixed constant so plain `cargo test` is deterministic.
pub fn fault_base_seed() -> u64 {
    match std::env::var("DOCQL_FAULT") {
        Ok(s) => {
            let s = s.trim();
            let parsed = match s.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => s.parse(),
            };
            parsed.unwrap_or_else(|_| panic!("DOCQL_FAULT must be a u64, got {s:?}"))
        }
        Err(_) => 0xD0C4_1994,
    }
}

/// Cases per seed-driven chaos sweep.
pub const FAULT_CASES: u64 = 64;

/// A `docql-serve` process spawned from the built binary, killed on drop.
pub struct ServerProc {
    pub child: Child,
    /// The bound address, parsed from the binary's `listening on` line.
    pub addr: String,
}

impl ServerProc {
    /// Spawn `docql-serve --addr 127.0.0.1:0 <extra>` and wait for it to
    /// report its ephemeral port.
    pub fn spawn(extra: &[&str]) -> ServerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_docql-serve"))
            .args(["--addr", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn docql-serve");
        let stdout = child.stdout.take().expect("child stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read listening line");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected first line {line:?}"))
            .to_string();
        ServerProc { child, addr }
    }

    /// A fresh keep-alive client for this server.
    pub fn client(&self) -> HttpClient {
        HttpClient::connect(self.addr.as_str(), Duration::from_secs(10)).expect("connect")
    }

    /// Wait (bounded) for the process to exit and return its success flag.
    pub fn wait_for_exit(&mut self, deadline: Duration) -> bool {
        let start = std::time::Instant::now();
        loop {
            match self.child.try_wait().expect("try_wait") {
                Some(status) => return status.success(),
                None if start.elapsed() > deadline => panic!("server did not exit in {deadline:?}"),
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}
