//! The chaos-client battery (the tentpole's acceptance proof): a seeded
//! sweep of hostile peers — torn requests, garbage, oversized heads,
//! slow-loris stalls, mid-stream disconnects, connection floods — against
//! a small worker pool, while a well-formed client keeps getting
//! byte-identical answers. Afterwards: zero worker panics, zero leaked
//! connections, and the server still serves. Plus `kill -9` under ingest
//! load: everything acknowledged with `201` survives a restart.

mod common;

use common::{article_sgml, fault_base_seed, ServerProc, ARTICLE_QUERIES, FAULT_CASES};
use docql::durable::TempDir;
use docql_prop::SeededRng;
use docql_serve::http::ParseLimits;
use docql_serve::server::{ServeStore, Server, ServerConfig};
use docql_serve::HttpClient;
use docql_store::{DocStore, SharedStore};
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const N_DOCS: usize = 6;

fn article_store(n_docs: usize) -> DocStore {
    let mut store = DocStore::new(
        docql_sgml::fixtures::ARTICLE_DTD,
        &["my_article", "my_old_article"],
    )
    .unwrap();
    let texts: Vec<String> = (0..n_docs as u64).map(article_sgml).collect();
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    let roots = store.ingest_batch(&refs).unwrap();
    store.bind("my_article", roots[1]).unwrap();
    store.bind("my_old_article", roots[0]).unwrap();
    store
}

/// One hostile connection, shaped by `case`.
fn chaos_case(addr: std::net::SocketAddr, case: u64, rng: &mut SeededRng) {
    let Ok(mut s) = TcpStream::connect(addr) else {
        return; // connect refused under load still must not wedge the pool
    };
    let _ = s.set_read_timeout(Some(Duration::from_secs(2)));
    match case % 5 {
        // Random garbage, then hang up.
        0 => {
            let len = rng.gen_range(1..300);
            let bytes: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
            let _ = s.write_all(&bytes);
        }
        // A valid request torn off mid-wire.
        1 => {
            let q = ARTICLE_QUERIES[case as usize % ARTICLE_QUERIES.len()];
            let wire = format!(
                "POST /query HTTP/1.1\r\nHost: docql\r\nContent-Length: {}\r\n\r\n{q}",
                q.len()
            );
            let cut = rng.gen_range(1..wire.len());
            let _ = s.write_all(&wire.as_bytes()[..cut]);
        }
        // A head that blows the configured ceiling.
        2 => {
            let _ = s.write_all(b"GET / HTTP/1.1\r\n");
            for i in 0..64 {
                let v = "v".repeat(rng.gen_range(16..200));
                if s.write_all(format!("X-Flood-{i}: {v}\r\n").as_bytes())
                    .is_err()
                {
                    break; // server already answered 431 and closed
                }
            }
        }
        // Slow loris: a few bytes, then a stall past the read deadline.
        3 => {
            for b in b"POST /query HTT" {
                if s.write_all(&[*b]).is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            // Hold the socket open without sending; drop after the
            // server's deadline has certainly fired.
            std::thread::sleep(Duration::from_millis(120));
        }
        // A full request whose sender vanishes without reading the answer.
        _ => {
            let q = ARTICLE_QUERIES[case as usize % ARTICLE_QUERIES.len()];
            let wire = format!(
                "POST /query HTTP/1.1\r\nHost: docql\r\nContent-Length: {}\r\n\r\n{q}",
                q.len()
            );
            let _ = s.write_all(wire.as_bytes());
        }
    }
    // Every connection ends in an abrupt drop (no graceful FIN dance).
}

#[test]
fn chaos_battery_leaves_the_server_standing() {
    let config = ServerConfig {
        workers: 4,
        queue_depth: 8,
        read_timeout: Duration::from_millis(100),
        write_timeout: Duration::from_millis(500),
        parse: ParseLimits {
            max_head_bytes: 2048,
            max_headers: 16,
            max_body_bytes: 64 * 1024,
        },
        ..ServerConfig::default()
    };
    let reference = article_store(N_DOCS);
    let expected = reference.query(ARTICLE_QUERIES[2]).unwrap().to_table();
    let handle = Server::start(
        config,
        ServeStore::Shared(SharedStore::new(article_store(N_DOCS))),
    )
    .unwrap();
    let addr = handle.addr();

    // The well-formed peer: keeps asking Q3 throughout the storm. Backoff
    // statuses (503 under flood) are legal; wrong bytes never are.
    let stop = Arc::new(AtomicBool::new(false));
    let ok_count = Arc::new(AtomicU64::new(0));
    let prober = {
        let stop = Arc::clone(&stop);
        let ok_count = Arc::clone(&ok_count);
        let expected = expected.clone();
        std::thread::spawn(move || -> Result<(), String> {
            while !stop.load(Ordering::Relaxed) {
                let Ok(mut client) = HttpClient::connect(addr, Duration::from_secs(5)) else {
                    std::thread::sleep(Duration::from_millis(5));
                    continue;
                };
                match client.post("/query", &[], ARTICLE_QUERIES[2].as_bytes()) {
                    Ok(resp) if resp.status == 200 => {
                        if resp.text() != expected {
                            return Err(format!("byte mismatch under chaos: {}", resp.text()));
                        }
                        ok_count.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(resp) if resp.status == 503 || resp.status == 429 => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Ok(resp) => return Err(format!("unexpected status {}", resp.status)),
                    Err(_) => std::thread::sleep(Duration::from_millis(5)), // flooded out
                }
            }
            Ok(())
        })
    };

    let base = fault_base_seed();
    for case in 0..FAULT_CASES {
        let mut rng = SeededRng::seed_from_u64(base.wrapping_add(case));
        chaos_case(addr, case, &mut rng);
        if case % 8 == 7 {
            // A connection flood: open a pile of silent sockets at once
            // and drop them all on the floor.
            let flood: Vec<_> = (0..16)
                .filter_map(|_| TcpStream::connect(addr).ok())
                .collect();
            drop(flood);
        }
    }

    stop.store(true, Ordering::Relaxed);
    prober
        .join()
        .unwrap()
        .expect("well-formed peer stayed correct");
    assert!(
        ok_count.load(Ordering::Relaxed) > 0,
        "the well-formed peer should have been served during the battery"
    );

    // No worker died, and every connection is released once the hostile
    // peers' sockets run out their deadlines.
    assert_eq!(handle.metrics().worker_panics.get(), 0);
    let deadline = Instant::now() + Duration::from_secs(5);
    while (handle.active_connections() > 0 || handle.metrics().connections_active.get() != 0)
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(handle.active_connections(), 0, "leaked connection slots");
    assert_eq!(
        handle.metrics().connections_active.get(),
        0,
        "leaked active-connection gauge"
    );

    // Still standing: a fresh client gets the exact same bytes.
    let mut client = HttpClient::connect(addr, Duration::from_secs(5)).unwrap();
    let resp = client
        .post("/query", &[], ARTICLE_QUERIES[2].as_bytes())
        .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.text(), expected);
    drop(client);

    let report = handle.shutdown();
    assert!(report.drained_in_time, "{report:?}");
}

#[test]
fn kill_9_under_ingest_load_recovers_every_acked_document() {
    let base = fault_base_seed();
    for round in 0..3u64 {
        let mut rng = SeededRng::seed_from_u64(base.wrapping_add(round));
        let kill_at = 1 + rng.gen_range(0..7);

        let dir = TempDir::new("serve-kill9").unwrap();
        let dir_arg = dir.path().to_str().unwrap().to_string();
        let mut server = ServerProc::spawn(&["--dir", &dir_arg]);
        let mut client = server.client();
        let mut acked = 0usize;
        for seed in 0..(kill_at + 4) as u64 {
            if acked == kill_at {
                break;
            }
            let resp = client
                .post("/ingest", &[], article_sgml(seed).as_bytes())
                .unwrap();
            assert_eq!(resp.status, 201, "{}", resp.text());
            acked += 1;
        }
        // SIGKILL: no drain, no checkpoint — recovery must come from the
        // WAL alone.
        server.child.kill().unwrap();
        let _ = server.child.wait();
        drop(client);

        // Everything the dead server acknowledged is still there.
        let reference = {
            let mut store = DocStore::new(
                docql_sgml::fixtures::ARTICLE_DTD,
                &["my_article", "my_old_article"],
            )
            .unwrap();
            for seed in 0..acked as u64 {
                store.ingest(&article_sgml(seed)).unwrap();
            }
            store
        };
        let q = "select a.title from a in Articles";
        let expected = reference.query(q).unwrap().to_table();

        let restarted = ServerProc::spawn(&["--dir", &dir_arg]);
        let mut client = restarted.client();
        let resp = client.post("/query", &[], q.as_bytes()).unwrap();
        assert_eq!(resp.status, 200, "round {round}: {}", resp.text());
        assert_eq!(
            resp.text(),
            expected,
            "round {round}: kill -9 after {acked} acks lost data"
        );
    }
}
