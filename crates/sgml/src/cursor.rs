//! A character cursor over SGML source with line/column tracking.

use crate::error::{ErrorKind, Pos, Result, SgmlError};

/// Char-level scanner shared by the DTD and document parsers.
pub struct Cursor<'a> {
    src: &'a str,
    bytes: &'a [u8],
    off: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `src`.
    pub fn new(src: &'a str) -> Cursor<'a> {
        Cursor {
            src,
            bytes: src.as_bytes(),
            off: 0,
            line: 1,
            col: 1,
        }
    }

    /// Current position.
    pub fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    /// End of input?
    pub fn at_eof(&self) -> bool {
        self.off >= self.bytes.len()
    }

    /// Peek the current byte (SGML names and delimiters are ASCII; multi-byte
    /// UTF-8 only appears inside text content, which is consumed as spans).
    pub fn peek(&self) -> Option<u8> {
        self.bytes.get(self.off).copied()
    }

    /// Peek `k` bytes ahead.
    pub fn peek_at(&self, k: usize) -> Option<u8> {
        self.bytes.get(self.off + k).copied()
    }

    /// Does the remaining input start with `s`?
    pub fn starts_with(&self, s: &str) -> bool {
        self.src[self.off..].starts_with(s)
    }

    /// Advance one byte.
    pub fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.off += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    /// Consume `s` or fail.
    pub fn expect(&mut self, s: &str) -> Result<()> {
        if self.starts_with(s) {
            for _ in 0..s.len() {
                self.bump();
            }
            Ok(())
        } else {
            let found: String = self.src[self.off..].chars().take(12).collect();
            Err(SgmlError::new(
                self.pos(),
                ErrorKind::Unexpected {
                    expected: format!("`{s}`"),
                    found: if found.is_empty() {
                        "end of input".to_string()
                    } else {
                        format!("`{found}`")
                    },
                },
            ))
        }
    }

    /// Consume `s` if present; report whether it was.
    pub fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            for _ in 0..s.len() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    /// Skip ASCII whitespace.
    pub fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    /// Skip whitespace and SGML comments (`-- … --` inside declarations is
    /// handled by the DTD parser; this skips `<!-- … -->` markup comments).
    pub fn skip_ws_and_comments(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                while !self.at_eof() && !self.starts_with("-->") {
                    self.bump();
                }
                let _ = self.eat("-->");
            } else {
                break;
            }
        }
    }

    /// Is this byte valid in an SGML name (after the first character)?
    fn is_name_byte(b: u8) -> bool {
        b.is_ascii_alphanumeric() || b == b'-' || b == b'.' || b == b'_'
    }

    /// Parse an SGML name (letter, then name characters). Also accepts the
    /// reserved-name prefix `#` when `allow_hash`.
    pub fn name(&mut self, allow_hash: bool) -> Result<String> {
        let start_pos = self.pos();
        let mut out = String::new();
        if allow_hash && self.peek() == Some(b'#') {
            out.push('#');
            self.bump();
        }
        match self.peek() {
            Some(b) if b.is_ascii_alphabetic() => {}
            other => {
                return Err(SgmlError::new(
                    start_pos,
                    ErrorKind::Unexpected {
                        expected: "a name".to_string(),
                        found: other
                            .map(|b| format!("`{}`", b as char))
                            .unwrap_or_else(|| "end of input".to_string()),
                    },
                ));
            }
        }
        while let Some(b) = self.peek() {
            if Self::is_name_byte(b) {
                out.push(b as char);
                self.bump();
            } else {
                break;
            }
        }
        Ok(out)
    }

    /// Parse a quoted literal (`"…"` or `'…'`), returning its contents.
    pub fn quoted(&mut self) -> Result<String> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            other => {
                return Err(SgmlError::new(
                    self.pos(),
                    ErrorKind::Unexpected {
                        expected: "a quoted literal".to_string(),
                        found: other
                            .map(|b| format!("`{}`", b as char))
                            .unwrap_or_else(|| "end of input".to_string()),
                    },
                ));
            }
        };
        self.bump();
        let start = self.off;
        while let Some(b) = self.peek() {
            if b == quote {
                let text = self.src[start..self.off].to_string();
                self.bump();
                return Ok(text);
            }
            self.bump();
        }
        Err(SgmlError::new(
            self.pos(),
            ErrorKind::UnexpectedEof("reading quoted literal".to_string()),
        ))
    }

    /// Consume raw text until (not including) the next `<` or `&`, returning
    /// the span.
    pub fn text_span(&mut self) -> &'a str {
        let start = self.off;
        while let Some(b) = self.peek() {
            if b == b'<' || b == b'&' {
                break;
            }
            self.bump();
        }
        &self.src[start..self.off]
    }

    /// Byte offset (for slicing).
    pub fn offset(&self) -> usize {
        self.off
    }

    /// The remaining input (for diagnostics).
    pub fn rest(&self) -> &'a str {
        &self.src[self.off..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_line_and_column() {
        let mut c = Cursor::new("ab\ncd");
        c.bump();
        c.bump();
        assert_eq!(c.pos(), Pos { line: 1, col: 3 });
        c.bump(); // newline
        assert_eq!(c.pos(), Pos { line: 2, col: 1 });
    }

    #[test]
    fn names_and_hash_names() {
        let mut c = Cursor::new("article #PCDATA 7up");
        assert_eq!(c.name(false).unwrap(), "article");
        c.skip_ws();
        assert_eq!(c.name(true).unwrap(), "#PCDATA");
        c.skip_ws();
        assert!(c.name(false).is_err(), "names must start with a letter");
    }

    #[test]
    fn quoted_literals_both_quotes() {
        let mut c = Cursor::new("\"final\" 'draft'");
        assert_eq!(c.quoted().unwrap(), "final");
        c.skip_ws();
        assert_eq!(c.quoted().unwrap(), "draft");
    }

    #[test]
    fn unterminated_quote_is_error() {
        let mut c = Cursor::new("\"oops");
        assert!(c.quoted().is_err());
    }

    #[test]
    fn text_span_stops_at_markup() {
        let mut c = Cursor::new("hello world<tag>");
        assert_eq!(c.text_span(), "hello world");
        assert!(c.starts_with("<tag>"));
    }

    #[test]
    fn skip_comments() {
        let mut c = Cursor::new("  <!-- a comment --> <x>");
        c.skip_ws_and_comments();
        assert!(c.starts_with("<x>"));
    }

    #[test]
    fn eat_and_expect() {
        let mut c = Cursor::new("<!ELEMENT");
        assert!(!c.eat("<!ATTLIST"));
        assert!(c.eat("<!ELEMENT"));
        let mut c2 = Cursor::new("abc");
        assert!(c2.expect("abd").is_err());
        assert!(c2.expect("abc").is_ok());
        assert!(c2.at_eof());
    }

    #[test]
    fn utf8_text_is_preserved() {
        let mut c = Cursor::new("héllo ✨<end>");
        assert_eq!(c.text_span(), "héllo ✨");
    }
}
