//! Parsed document instances: the tagged tree (Fig. 2), plus re-emission.

use std::fmt;

/// A node of a document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// An element with its attributes and content.
    Element(Element),
    /// A run of character data (entity references already expanded).
    Text(String),
}

impl Node {
    /// The element, if this node is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        }
    }

    /// The text, if this node is a text run.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Node::Text(t) => Some(t),
            Node::Element(_) => None,
        }
    }
}

/// An element of the document instance.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Element {
    /// Element (tag) name, lower-cased.
    pub name: String,
    /// Attributes as `(name, value)` in source order (DTD defaults filled in
    /// by the parser).
    pub attrs: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

impl Element {
    /// New empty element.
    pub fn new(name: impl Into<String>) -> Element {
        Element {
            name: name.into(),
            ..Element::default()
        }
    }

    /// Attribute lookup.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Child elements (skipping text runs).
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(Node::as_element)
    }

    /// Concatenated text content of the whole subtree, in document order,
    /// with runs joined by single spaces (the paper's `text` operator —
    /// the inverse mapping from a logical object to its text portion).
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        fn walk(node: &Node, out: &mut String) {
            match node {
                Node::Text(t) => {
                    let t = t.trim();
                    if !t.is_empty() {
                        if !out.is_empty() {
                            out.push(' ');
                        }
                        out.push_str(t);
                    }
                }
                Node::Element(e) => {
                    for c in &e.children {
                        walk(c, out);
                    }
                }
            }
        }
        for c in &self.children {
            walk(c, &mut out);
        }
        out
    }

    /// Count all elements in the subtree (including this one).
    pub fn subtree_size(&self) -> usize {
        1 + self
            .child_elements()
            .map(Element::subtree_size)
            .sum::<usize>()
    }

    /// Depth-first search for the first descendant (or self) with this name.
    pub fn find(&self, name: &str) -> Option<&Element> {
        if self.name == name {
            return Some(self);
        }
        self.child_elements().find_map(|c| c.find(name))
    }

    /// All descendants (or self) with this name, in document order.
    pub fn find_all<'a>(&'a self, name: &str, out: &mut Vec<&'a Element>) {
        if self.name == name {
            out.push(self);
        }
        for c in self.child_elements() {
            c.find_all(name, out);
        }
    }
}

/// A complete document instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Document {
    /// The document (root) element.
    pub root: Element,
}

impl Document {
    /// Serialize back to SGML text with explicit tags (normalized form:
    /// omitted tags are reinstated, attributes quoted).
    pub fn to_sgml(&self) -> String {
        let mut out = String::new();
        write_element(&self.root, 0, &mut out);
        out
    }
}

fn write_element(e: &Element, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    out.push_str(&indent);
    out.push('<');
    out.push_str(&e.name);
    for (n, v) in &e.attrs {
        out.push(' ');
        out.push_str(n);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('>');
    let only_text = e.children.iter().all(|c| matches!(c, Node::Text(_)));
    if only_text {
        for c in &e.children {
            if let Node::Text(t) = c {
                out.push_str(t.trim());
            }
        }
    } else {
        out.push('\n');
        for c in &e.children {
            match c {
                Node::Element(child) => write_element(child, depth + 1, out),
                Node::Text(t) => {
                    let t = t.trim();
                    if !t.is_empty() {
                        out.push_str(&"  ".repeat(depth + 1));
                        out.push_str(t);
                        out.push('\n');
                    }
                }
            }
        }
        out.push_str(&indent);
    }
    out.push_str("</");
    out.push_str(&e.name);
    out.push_str(">\n");
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_sgml())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element {
            name: "section".into(),
            attrs: vec![],
            children: vec![
                Node::Element(Element {
                    name: "title".into(),
                    attrs: vec![],
                    children: vec![Node::Text("Introduction".into())],
                }),
                Node::Element(Element {
                    name: "body".into(),
                    attrs: vec![],
                    children: vec![Node::Element(Element {
                        name: "paragr".into(),
                        attrs: vec![("reflabel".into(), "fig1".into())],
                        children: vec![
                            Node::Text("This paper  ".into()),
                            Node::Text("is organized".into()),
                        ],
                    })],
                }),
            ],
        }
    }

    #[test]
    fn attr_lookup() {
        let e = sample();
        let p = e.find("paragr").unwrap();
        assert_eq!(p.attr("reflabel"), Some("fig1"));
        assert_eq!(p.attr("nope"), None);
    }

    #[test]
    fn text_content_joins_runs() {
        let e = sample();
        assert_eq!(e.text_content(), "Introduction This paper is organized");
    }

    #[test]
    fn find_and_find_all() {
        let e = sample();
        assert_eq!(e.find("title").unwrap().text_content(), "Introduction");
        let mut all = Vec::new();
        e.find_all("title", &mut all);
        assert_eq!(all.len(), 1);
        assert!(e.find("figure").is_none());
    }

    #[test]
    fn subtree_size_counts_elements() {
        assert_eq!(sample().subtree_size(), 4);
    }

    #[test]
    fn serialization_has_explicit_tags() {
        let doc = Document { root: sample() };
        let s = doc.to_sgml();
        assert!(s.contains("<title>Introduction</title>"));
        assert!(s.contains("reflabel=\"fig1\""));
        assert!(s.contains("</section>"));
    }
}
