//! Document-instance parsing with tag-omission inference (§2).
//!
//! The parser is DTD-driven: each open element carries the Brzozowski
//! derivative of its content model by the children accepted so far. When the
//! next token is not directly acceptable, the parser
//!
//! 1. *implicitly closes* open elements whose end tag is omissible (`- O`)
//!    and whose content is complete — this is what lets Fig. 2 write
//!    `<author> V. Christophides <author> S. Abiteboul` without `</author>`;
//! 2. *implicitly opens* elements whose start tag is omissible (`O O`, e.g.
//!    `caption`) when they are expected next and can accept the token.

use crate::content::{compile, Label, Rx};
use crate::cursor::Cursor;
use crate::doc::{Document, Element, Node};
use crate::dtd::{AttDefault, AttType, Dtd, EntityDecl};
use crate::error::{ErrorKind, Pos, Result, SgmlError};
use std::collections::HashMap;
use std::rc::Rc;

/// Default cap on element nesting depth — far beyond any real document,
/// low enough that a hostile `<a><a><a>…` stream fails fast instead of
/// growing an unbounded frame stack.
pub const MAX_ELEMENT_DEPTH: usize = 256;

/// Default cumulative byte budget for entity expansion in one document.
/// Entities here do not nest (no recursive expansion), but `&big;` repeated
/// still amplifies input size; this bounds the total amplification.
pub const MAX_ENTITY_EXPANSION: usize = 1 << 20;

/// A DTD-driven document parser. Compile once, parse many documents.
pub struct DocParser<'d> {
    dtd: &'d Dtd,
    compiled: HashMap<String, Rc<Rx>>,
    max_depth: usize,
    max_entity_expansion: usize,
}

struct Frame {
    name: String,
    end_omissible: bool,
    state: Rc<Rx>,
    element: Element,
    open_pos: Pos,
}

impl<'d> DocParser<'d> {
    /// Build a parser for this DTD (compiles every content model).
    pub fn new(dtd: &'d Dtd) -> Result<DocParser<'d>> {
        let alphabet: Vec<String> = dtd.element_names().map(str::to_owned).collect();
        let mut compiled = HashMap::new();
        for e in &dtd.elements {
            compiled.insert(e.name.clone(), compile(&e.content, &alphabet)?);
        }
        Ok(DocParser {
            dtd,
            compiled,
            max_depth: MAX_ELEMENT_DEPTH,
            max_entity_expansion: MAX_ENTITY_EXPANSION,
        })
    }

    /// Override the hostile-input limits (defaults: [`MAX_ELEMENT_DEPTH`],
    /// [`MAX_ENTITY_EXPANSION`]). Mostly for tests and embedders parsing
    /// untrusted input with tighter budgets.
    pub fn set_limits(&mut self, max_depth: usize, max_entity_expansion: usize) {
        self.max_depth = max_depth;
        self.max_entity_expansion = max_entity_expansion;
    }

    /// Parse a document instance.
    pub fn parse(&self, src: &str) -> Result<Document> {
        let mut p = Run {
            parser: self,
            cur: Cursor::new(src),
            stack: Vec::new(),
            entity_bytes: 0,
            finished: None,
        };
        p.run()?;
        match p.finished {
            Some(root) => Ok(Document { root }),
            None => Err(SgmlError::new(
                Pos { line: 1, col: 1 },
                ErrorKind::Other("document contains no element".to_string()),
            )),
        }
    }
}

struct Run<'d, 'p, 's> {
    parser: &'p DocParser<'d>,
    cur: Cursor<'s>,
    stack: Vec<Frame>,
    entity_bytes: usize,
    finished: Option<Element>,
}

impl Run<'_, '_, '_> {
    fn run(&mut self) -> Result<()> {
        loop {
            // Comments are skipped without disturbing surrounding text
            // (whitespace around an inline comment stays significant).
            if self.cur.starts_with("<!--") {
                while !self.cur.at_eof() && !self.cur.starts_with("-->") {
                    self.cur.bump();
                }
                let _ = self.cur.eat("-->");
                continue;
            }
            if self.cur.at_eof() {
                break;
            }
            if self.cur.starts_with("</") {
                self.end_tag()?;
            } else if self.cur.starts_with("<") {
                self.start_tag()?;
            } else if self.cur.starts_with("&") {
                let pos = self.cur.pos();
                let text = self.entity_text()?;
                self.text(&text, pos)?;
            } else {
                let pos = self.cur.pos();
                let span = self.cur.text_span().to_string();
                self.text(&span, pos)?;
            }
        }
        // EOF: close any still-open elements whose end tags may be omitted.
        while let Some(top) = self.stack.last() {
            let pos = top.open_pos;
            if !top.end_omissible {
                return Err(SgmlError::new(
                    pos,
                    ErrorKind::ForbiddenOmission {
                        element: top.name.clone(),
                        detail: "element still open at end of document".to_string(),
                    },
                ));
            }
            self.close_top()?;
        }
        Ok(())
    }

    fn entity_text(&mut self) -> Result<String> {
        let pos = self.cur.pos();
        self.cur.expect("&")?;
        let name = self.cur.name(false)?;
        let _ = self.cur.eat(";");
        match self.parser.dtd.entity(&name) {
            Some(EntityDecl::Internal { text, .. }) => {
                self.entity_bytes = self.entity_bytes.saturating_add(text.len());
                if self.entity_bytes > self.parser.max_entity_expansion {
                    return Err(SgmlError::new(
                        pos,
                        ErrorKind::EntityExpansionTooLarge {
                            expanded: self.entity_bytes,
                            max: self.parser.max_entity_expansion,
                        },
                    ));
                }
                Ok(text.clone())
            }
            Some(EntityDecl::External { .. }) => Err(SgmlError::new(
                pos,
                ErrorKind::Other(format!(
                    "external (NDATA) entity `&{name};` referenced in content"
                )),
            )),
            None => Err(SgmlError::new(pos, ErrorKind::UnknownEntity(name))),
        }
    }

    fn start_tag(&mut self) -> Result<()> {
        let pos = self.cur.pos();
        self.cur.expect("<")?;
        let name = self.cur.name(false)?.to_ascii_lowercase();
        let decl = self
            .parser
            .dtd
            .element(&name)
            .ok_or_else(|| SgmlError::new(pos, ErrorKind::UnknownElement(name.clone())))?;
        let attrs = self.attributes(&name)?;
        self.cur.skip_ws();
        self.cur.expect(">")?;
        self.accept_label(&Label::Elem(name.clone()), pos)?;
        // Open the element.
        let state = self.parser.compiled[&name].clone();
        let empty = matches!(decl.content, crate::content::ContentModel::Empty);
        self.push_frame(Frame {
            name: name.clone(),
            end_omissible: decl.minimization.end_omissible || empty,
            state,
            element: Element {
                name,
                attrs,
                children: Vec::new(),
            },
            open_pos: pos,
        })?;
        if empty {
            // EMPTY elements have no content and no end tag.
            self.close_top()?;
        }
        Ok(())
    }

    fn end_tag(&mut self) -> Result<()> {
        let pos = self.cur.pos();
        self.cur.expect("</")?;
        let name = self.cur.name(false)?.to_ascii_lowercase();
        self.cur.skip_ws();
        self.cur.expect(">")?;
        // SGML EMPTY elements have no end tag; the element was auto-closed
        // at its start tag. Tolerate an explicit `</x>` (XML-style input).
        if let Some(decl) = self.parser.dtd.element(&name) {
            if matches!(decl.content, crate::content::ContentModel::Empty)
                && self.stack.last().is_none_or(|top| top.name != name)
            {
                return Ok(());
            }
        }
        loop {
            match self.stack.last() {
                None => {
                    return Err(SgmlError::new(
                        pos,
                        ErrorKind::MismatchedEndTag {
                            expected: "(nothing open)".to_string(),
                            found: name,
                        },
                    ));
                }
                Some(top) if top.name == name => {
                    self.close_top()?;
                    return Ok(());
                }
                Some(top) => {
                    if top.end_omissible && top.state.nullable() {
                        self.close_top()?;
                    } else {
                        return Err(SgmlError::new(
                            pos,
                            ErrorKind::MismatchedEndTag {
                                expected: top.name.clone(),
                                found: name,
                            },
                        ));
                    }
                }
            }
        }
    }

    fn text(&mut self, text: &str, pos: Pos) -> Result<()> {
        if text.trim().is_empty() {
            // Whitespace between tags is insignificant unless the current
            // element actually accepts character data.
            if let Some(top) = self.stack.last() {
                if top.state.derive(&Label::Text).is_fail() {
                    return Ok(());
                }
            } else {
                return Ok(());
            }
        }
        self.accept_label(&Label::Text, pos)?;
        let top = self.stack.last_mut().expect("accept_label ensures a frame");
        // Merge adjacent text runs.
        if let Some(Node::Text(prev)) = top.element.children.last_mut() {
            prev.push_str(text);
        } else {
            top.element.children.push(Node::Text(text.to_string()));
        }
        Ok(())
    }

    /// Core inference: make the current open element accept `label`,
    /// implicitly closing/opening elements as tag minimization allows.
    /// On success the top frame's state has been advanced by `label`
    /// (and for `Elem` the caller pushes the new frame).
    fn accept_label(&mut self, label: &Label, pos: Pos) -> Result<()> {
        let budget = 2 * self.parser.dtd.elements.len() + self.stack.len() + 2;
        for _ in 0..budget {
            match self.stack.last() {
                None => {
                    // Document element: only an element token can start it.
                    match label {
                        Label::Elem(name) => {
                            if self.finished.is_some() {
                                return Err(SgmlError::new(
                                    pos,
                                    ErrorKind::Other(
                                        "content after the document element".to_string(),
                                    ),
                                ));
                            }
                            if !self.parser.dtd.doctype.is_empty()
                                && *name != self.parser.dtd.doctype
                            {
                                return Err(SgmlError::new(
                                    pos,
                                    ErrorKind::ContentModelMismatch {
                                        element: name.clone(),
                                        detail: format!(
                                            "document element must be `{}`",
                                            self.parser.dtd.doctype
                                        ),
                                    },
                                ));
                            }
                            return Ok(());
                        }
                        Label::Text => {
                            return Err(SgmlError::new(
                                pos,
                                ErrorKind::Other(
                                    "character data outside the document element".to_string(),
                                ),
                            ));
                        }
                    }
                }
                Some(top) => {
                    let d = top.state.derive(label);
                    if !d.is_fail() {
                        self.stack.last_mut().expect("nonempty").state = d;
                        return Ok(());
                    }
                    // Implicit open: an expected element with omissible
                    // start tag that can accept the label.
                    if let Some(x) = self.implicit_open_candidate(top, label) {
                        let decl = self.parser.dtd.element(&x).expect("candidate is declared");
                        let advanced = top.state.derive(&Label::Elem(x.clone()));
                        debug_assert!(!advanced.is_fail());
                        self.stack.last_mut().expect("nonempty").state = advanced;
                        let state = self.parser.compiled[&x].clone();
                        self.push_frame(Frame {
                            name: x.clone(),
                            end_omissible: decl.minimization.end_omissible,
                            state,
                            element: Element::new(x),
                            open_pos: pos,
                        })?;
                        continue;
                    }
                    // Implicit close.
                    if top.end_omissible && top.state.nullable() {
                        self.close_top()?;
                        continue;
                    }
                    let mut expected = Vec::new();
                    top.state.next_labels(&mut expected);
                    return Err(SgmlError::new(
                        pos,
                        ErrorKind::ContentModelMismatch {
                            element: top.name.clone(),
                            detail: format!(
                                "cannot accept {label} here; expected one of [{}]{}",
                                expected
                                    .iter()
                                    .map(|l| l.to_string())
                                    .collect::<Vec<_>>()
                                    .join(", "),
                                if top.state.nullable() {
                                    " or end of element"
                                } else {
                                    ""
                                }
                            ),
                        },
                    ));
                }
            }
        }
        Err(SgmlError::new(
            pos,
            ErrorKind::Other("tag inference did not terminate (budget exceeded)".to_string()),
        ))
    }

    /// Choose an element that (a) is expected next in `top`, (b) has an
    /// omissible start tag, and (c) can itself accept `label` first.
    fn implicit_open_candidate(&self, top: &Frame, label: &Label) -> Option<String> {
        let mut expected = Vec::new();
        top.state.next_labels(&mut expected);
        for l in expected {
            if let Label::Elem(x) = l {
                let decl = self.parser.dtd.element(&x)?;
                if decl.minimization.start_omissible
                    && !self.parser.compiled[&x].derive(label).is_fail()
                {
                    return Some(x);
                }
            }
        }
        None
    }

    /// Push an open-element frame, enforcing the nesting-depth limit.
    fn push_frame(&mut self, frame: Frame) -> Result<()> {
        if self.stack.len() >= self.parser.max_depth {
            return Err(SgmlError::new(
                frame.open_pos,
                ErrorKind::NestingTooDeep {
                    depth: self.stack.len() + 1,
                    max: self.parser.max_depth,
                },
            ));
        }
        self.stack.push(frame);
        Ok(())
    }

    fn close_top(&mut self) -> Result<()> {
        let top = self.stack.pop().expect("close_top on empty stack");
        if !top.state.nullable() {
            let mut expected = Vec::new();
            top.state.next_labels(&mut expected);
            return Err(SgmlError::new(
                top.open_pos,
                ErrorKind::ContentModelMismatch {
                    element: top.name.clone(),
                    detail: format!(
                        "content incomplete; still expecting one of [{}]",
                        expected
                            .iter()
                            .map(|l| l.to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                },
            ));
        }
        match self.stack.last_mut() {
            Some(parent) => parent.element.children.push(Node::Element(top.element)),
            None => self.finished = Some(top.element),
        }
        Ok(())
    }

    /// Parse attributes of a start tag, then apply DTD defaults and checks.
    fn attributes(&mut self, element: &str) -> Result<Vec<(String, String)>> {
        let mut attrs: Vec<(String, String)> = Vec::new();
        loop {
            self.cur.skip_ws();
            match self.cur.peek() {
                Some(b'>') | None => break,
                _ => {}
            }
            let pos = self.cur.pos();
            let name = self.cur.name(false)?.to_ascii_lowercase();
            self.cur.skip_ws();
            let value = if self.cur.eat("=") {
                self.cur.skip_ws();
                if matches!(self.cur.peek(), Some(b'"' | b'\'')) {
                    self.cur.quoted()?
                } else {
                    self.cur.name(true)?
                }
            } else {
                // Minimized attribute (value only, e.g. `<article final>`):
                // the bare token is the value of the enumerated attribute
                // whose group contains it.
                let decls = self.parser.dtd.attributes_of(element);
                let owner = decls
                    .iter()
                    .find(|d| matches!(&d.ty, AttType::Enumerated(vs) if vs.contains(&name)));
                match owner {
                    Some(d) => {
                        attrs.push((d.name.clone(), name));
                        continue;
                    }
                    None => {
                        return Err(SgmlError::new(
                            pos,
                            ErrorKind::UnknownAttribute {
                                element: element.to_string(),
                                attribute: name,
                            },
                        ));
                    }
                }
            };
            attrs.push((name, value));
        }
        // DTD checks + defaults.
        let decls = self.parser.dtd.attributes_of(element);
        for (n, v) in &attrs {
            let decl = decls.iter().find(|d| &d.name == n).ok_or_else(|| {
                SgmlError::new(
                    self.cur.pos(),
                    ErrorKind::UnknownAttribute {
                        element: element.to_string(),
                        attribute: n.clone(),
                    },
                )
            })?;
            if let AttType::Enumerated(allowed) = &decl.ty {
                if !allowed.contains(v) {
                    return Err(SgmlError::new(
                        self.cur.pos(),
                        ErrorKind::BadAttributeValue {
                            element: element.to_string(),
                            attribute: n.clone(),
                            value: v.clone(),
                            allowed: allowed.clone(),
                        },
                    ));
                }
            }
            if matches!(decl.ty, AttType::Entity) && self.parser.dtd.entity(v).is_none() {
                return Err(SgmlError::new(
                    self.cur.pos(),
                    ErrorKind::UnknownEntity(v.clone()),
                ));
            }
        }
        for decl in decls {
            if attrs.iter().any(|(n, _)| n == &decl.name) {
                continue;
            }
            match &decl.default {
                AttDefault::Required => {
                    return Err(SgmlError::new(
                        self.cur.pos(),
                        ErrorKind::MissingRequiredAttribute {
                            element: element.to_string(),
                            attribute: decl.name.clone(),
                        },
                    ));
                }
                AttDefault::Value(v) => attrs.push((decl.name.clone(), v.clone())),
                AttDefault::Implied => {}
            }
        }
        Ok(attrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::{ARTICLE_DTD, FIG2_DOCUMENT};

    fn parse(doc: &str) -> Result<Document> {
        let dtd = Dtd::parse(ARTICLE_DTD).unwrap();
        let parser = DocParser::new(&dtd)?;
        parser.parse(doc)
    }

    #[test]
    fn parses_fig2_document() {
        let doc = parse(FIG2_DOCUMENT).unwrap();
        assert_eq!(doc.root.name, "article");
        assert_eq!(doc.root.attr("status"), Some("final"));
        // Four authors despite omitted </author> end tags.
        let mut authors = Vec::new();
        doc.root.find_all("author", &mut authors);
        assert_eq!(authors.len(), 4);
        assert_eq!(authors[0].text_content(), "V. Christophides");
        // Two sections.
        let mut sections = Vec::new();
        doc.root.find_all("section", &mut sections);
        assert_eq!(sections.len(), 2);
        assert_eq!(
            sections[1].find("title").unwrap().text_content(),
            "SGML preliminaries"
        );
    }

    #[test]
    fn end_tag_omission_via_sibling() {
        let doc = parse(
            "<article status=\"draft\"><title>T</title>\
             <author>A<author>B</author><affil>X</affil>\
             <abstract>Abs</abstract>\
             <section><title>S</title><body><paragr reflabel=\"l\">P</paragr></body></section>\
             <acknowl>Thanks</acknowl></article>",
        )
        .unwrap();
        let mut authors = Vec::new();
        doc.root.find_all("author", &mut authors);
        assert_eq!(authors.len(), 2);
    }

    #[test]
    fn attribute_defaults_applied() {
        let doc = parse(
            "<article><title>T</title><author>A</author><affil>F</affil>\
             <abstract>Ab</abstract>\
             <section><title>S</title><body><paragr reflabel=\"x\">P</paragr></body></section>\
             <acknowl>Th</acknowl></article>",
        )
        .unwrap();
        assert_eq!(doc.root.attr("status"), Some("draft"), "DTD default");
    }

    #[test]
    fn enumerated_attribute_value_checked() {
        let r = parse("<article status=\"published\"><title>T</title></article>");
        assert!(matches!(
            r.unwrap_err().kind,
            ErrorKind::BadAttributeValue { .. }
        ));
    }

    #[test]
    fn required_attribute_enforced() {
        let r = parse(
            "<article><title>T</title><author>A</author><affil>F</affil><abstract>A</abstract>\
             <section><title>S</title><body><paragr>no reflabel</paragr></body></section>\
             <acknowl>T</acknowl></article>",
        );
        assert!(matches!(
            r.unwrap_err().kind,
            ErrorKind::MissingRequiredAttribute { .. }
        ));
    }

    #[test]
    fn unknown_element_rejected() {
        let r = parse("<article><bogus>x</bogus></article>");
        assert!(matches!(r.unwrap_err().kind, ErrorKind::UnknownElement(_)));
    }

    #[test]
    fn content_model_violation_reported() {
        // abstract before title.
        let r = parse("<article><abstract>A</abstract><title>T</title></article>");
        assert!(matches!(
            r.unwrap_err().kind,
            ErrorKind::ContentModelMismatch { .. }
        ));
    }

    #[test]
    fn incomplete_content_reported_at_close() {
        // Section with a title but no body/subsectn.
        let r = parse(
            "<article><title>T</title><author>A</author><affil>F</affil><abstract>A</abstract>\
             <section><title>S</title></section><acknowl>T</acknowl></article>",
        );
        assert!(matches!(
            r.unwrap_err().kind,
            ErrorKind::ContentModelMismatch { .. }
        ));
    }

    #[test]
    fn empty_element_needs_no_end_tag() {
        let doc = parse(
            "<article><title>T</title><author>A</author><affil>F</affil><abstract>A</abstract>\
             <section><title>S</title><body><figure label=\"f1\"><picture>\
             <caption>C</caption></figure></body></section>\
             <acknowl>T</acknowl></article>",
        )
        .unwrap();
        let fig = doc.root.find("figure").unwrap();
        assert!(fig.find("picture").is_some());
        let pic = fig.find("picture").unwrap();
        assert_eq!(pic.attr("sizex"), Some("16cm"), "NMTOKEN default applied");
    }

    #[test]
    fn start_tag_omission_inferred() {
        // caption is O O: its start tag may be omitted. Text directly after
        // <picture> inside a figure must open a caption implicitly.
        let doc = parse(
            "<article><title>T</title><author>A</author><affil>F</affil><abstract>A</abstract>\
             <section><title>S</title><body><figure><picture>An implied caption</figure>\
             </body></section><acknowl>T</acknowl></article>",
        )
        .unwrap();
        let fig = doc.root.find("figure").unwrap();
        let cap = fig.find("caption").expect("caption implicitly opened");
        assert_eq!(cap.text_content(), "An implied caption");
    }

    #[test]
    fn mismatched_end_tag_rejected() {
        let r = parse("<article><title>T</abstract></article>");
        assert!(matches!(
            r.unwrap_err().kind,
            ErrorKind::MismatchedEndTag { .. }
        ));
    }

    #[test]
    fn doctype_element_enforced_at_root() {
        let r = parse("<title>hello</title>");
        assert!(matches!(
            r.unwrap_err().kind,
            ErrorKind::ContentModelMismatch { .. }
        ));
    }

    #[test]
    fn unclosed_strict_element_at_eof_rejected() {
        let r = parse("<article><title>T</title>");
        assert!(matches!(
            r.unwrap_err().kind,
            ErrorKind::ForbiddenOmission { .. } | ErrorKind::ContentModelMismatch { .. }
        ));
    }

    #[test]
    fn internal_entities_expand_in_text() {
        let dtd = Dtd::parse(
            "<!DOCTYPE note [ <!ELEMENT note - - (#PCDATA)> <!ENTITY inst \"I.N.R.I.A.\"> ]>",
        )
        .unwrap();
        let parser = DocParser::new(&dtd).unwrap();
        let doc = parser.parse("<note>from &inst; with love</note>").unwrap();
        assert_eq!(doc.root.text_content(), "from I.N.R.I.A. with love");
    }

    #[test]
    fn unknown_entity_rejected() {
        let dtd = Dtd::parse("<!DOCTYPE note [ <!ELEMENT note - - (#PCDATA)> ]>").unwrap();
        let parser = DocParser::new(&dtd).unwrap();
        assert!(matches!(
            parser.parse("<note>&nope;</note>").unwrap_err().kind,
            ErrorKind::UnknownEntity(_)
        ));
    }

    #[test]
    fn comments_are_skipped() {
        let dtd = Dtd::parse("<!DOCTYPE note [ <!ELEMENT note - - (#PCDATA)> ]>").unwrap();
        let parser = DocParser::new(&dtd).unwrap();
        let doc = parser
            .parse("<!-- prologue --><note>hi<!-- inner --> there</note>")
            .unwrap();
        assert_eq!(doc.root.text_content(), "hi there");
    }

    #[test]
    fn hostile_nesting_depth_rejected() {
        let dtd = Dtd::parse("<!DOCTYPE n [ <!ELEMENT n - - (n?) > ]>").unwrap();
        let parser = DocParser::new(&dtd).unwrap();
        let deep = "<n>".repeat(MAX_ELEMENT_DEPTH + 50);
        match parser.parse(&deep).unwrap_err().kind {
            ErrorKind::NestingTooDeep { max, .. } => assert_eq!(max, MAX_ELEMENT_DEPTH),
            k => panic!("expected NestingTooDeep, got {k:?}"),
        }
        // Well-formed nesting under the limit still parses.
        let ok = format!("{}{}", "<n>".repeat(8), "</n>".repeat(8));
        assert!(parser.parse(&ok).is_ok());
    }

    #[test]
    fn depth_limit_is_configurable() {
        let dtd = Dtd::parse("<!DOCTYPE n [ <!ELEMENT n - - (n?) > ]>").unwrap();
        let mut parser = DocParser::new(&dtd).unwrap();
        parser.set_limits(4, MAX_ENTITY_EXPANSION);
        let deep = format!("{}{}", "<n>".repeat(5), "</n>".repeat(5));
        assert!(matches!(
            parser.parse(&deep).unwrap_err().kind,
            ErrorKind::NestingTooDeep { depth: 5, max: 4 }
        ));
        let ok = format!("{}{}", "<n>".repeat(4), "</n>".repeat(4));
        assert!(parser.parse(&ok).is_ok());
    }

    #[test]
    fn entity_expansion_budget_enforced() {
        let dtd = Dtd::parse(
            "<!DOCTYPE note [ <!ELEMENT note - - (#PCDATA)> \
             <!ENTITY pad \"0123456789abcdef\"> ]>",
        )
        .unwrap();
        let mut parser = DocParser::new(&dtd).unwrap();
        parser.set_limits(MAX_ELEMENT_DEPTH, 64);
        // Four references fit exactly (4 × 16 = 64); a fifth bursts it.
        let ok = format!("<note>{}</note>", "&pad;".repeat(4));
        assert!(parser.parse(&ok).is_ok());
        let boom = format!("<note>{}</note>", "&pad;".repeat(5));
        match parser.parse(&boom).unwrap_err().kind {
            ErrorKind::EntityExpansionTooLarge { expanded, max } => {
                assert_eq!((expanded, max), (80, 64));
            }
            k => panic!("expected EntityExpansionTooLarge, got {k:?}"),
        }
        // The budget is per document, not accumulated across parses.
        assert!(parser.parse(&ok).is_ok());
    }

    #[test]
    fn minimized_attribute_resolves_to_enum_owner() {
        let doc = parse(
            "<article final><title>T</title><author>A</author><affil>F</affil>\
             <abstract>A</abstract>\
             <section><title>S</title><body><paragr reflabel=\"x\">P</paragr></body></section>\
             <acknowl>T</acknowl></article>",
        )
        .unwrap();
        assert_eq!(doc.root.attr("status"), Some("final"));
    }
}
