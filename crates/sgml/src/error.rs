//! Error type for SGML parsing and validation, with source positions.

use std::fmt;

/// A position in SGML source text (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Errors raised by the DTD parser, the document parser, and the validator.
#[derive(Debug, Clone, PartialEq)]
pub struct SgmlError {
    /// Where in the source the problem was detected.
    pub pos: Pos,
    /// What went wrong.
    pub kind: ErrorKind,
}

/// Classification of SGML errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ErrorKind {
    /// Unexpected end of input.
    UnexpectedEof(String),
    /// Unexpected character or token.
    Unexpected { expected: String, found: String },
    /// Element declared twice in the DTD.
    DuplicateElement(String),
    /// ATTLIST for an element with no ELEMENT declaration.
    AttlistForUnknownElement(String),
    /// A document tag names an element the DTD does not declare.
    UnknownElement(String),
    /// An attribute not declared for this element.
    UnknownAttribute { element: String, attribute: String },
    /// A required attribute is missing.
    MissingRequiredAttribute { element: String, attribute: String },
    /// An enumerated attribute has a value outside its group.
    BadAttributeValue {
        element: String,
        attribute: String,
        value: String,
        allowed: Vec<String>,
    },
    /// Content of an element does not match its declared content model.
    ContentModelMismatch { element: String, detail: String },
    /// An end tag closes an element that is not open.
    MismatchedEndTag { expected: String, found: String },
    /// A start/end tag was omitted but the element does not allow omission.
    ForbiddenOmission { element: String, detail: String },
    /// Reference to an undeclared entity.
    UnknownEntity(String),
    /// An IDREF with no matching ID in the document.
    UnresolvedIdref(String),
    /// The same ID value declared on two elements.
    DuplicateId(String),
    /// An `&` group with too many operands to expand into permutations.
    AndGroupTooLarge { size: usize, max: usize },
    /// Element nesting exceeded the parser's depth limit.
    NestingTooDeep { depth: usize, max: usize },
    /// Cumulative entity expansion exceeded the parser's byte budget.
    EntityExpansionTooLarge { expanded: usize, max: usize },
    /// Anything else.
    Other(String),
}

impl SgmlError {
    /// Construct an error at a position.
    pub fn new(pos: Pos, kind: ErrorKind) -> SgmlError {
        SgmlError { pos, kind }
    }

    /// Construct an error with no useful position.
    pub fn nowhere(kind: ErrorKind) -> SgmlError {
        SgmlError {
            pos: Pos::default(),
            kind,
        }
    }
}

impl fmt::Display for SgmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.pos)?;
        match &self.kind {
            ErrorKind::UnexpectedEof(what) => write!(f, "unexpected end of input while {what}"),
            ErrorKind::Unexpected { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            ErrorKind::DuplicateElement(e) => write!(f, "element `{e}` declared twice"),
            ErrorKind::AttlistForUnknownElement(e) => {
                write!(f, "ATTLIST for undeclared element `{e}`")
            }
            ErrorKind::UnknownElement(e) => write!(f, "unknown element `{e}`"),
            ErrorKind::UnknownAttribute { element, attribute } => {
                write!(
                    f,
                    "attribute `{attribute}` not declared for element `{element}`"
                )
            }
            ErrorKind::MissingRequiredAttribute { element, attribute } => {
                write!(f, "required attribute `{attribute}` missing on `{element}`")
            }
            ErrorKind::BadAttributeValue {
                element,
                attribute,
                value,
                allowed,
            } => write!(
                f,
                "value `{value}` of attribute `{attribute}` on `{element}` not in ({})",
                allowed.join(" | ")
            ),
            ErrorKind::ContentModelMismatch { element, detail } => {
                write!(
                    f,
                    "content of `{element}` violates its content model: {detail}"
                )
            }
            ErrorKind::MismatchedEndTag { expected, found } => {
                write!(
                    f,
                    "end tag `</{found}>` does not close open element `{expected}`"
                )
            }
            ErrorKind::ForbiddenOmission { element, detail } => {
                write!(f, "tag omission not allowed for `{element}`: {detail}")
            }
            ErrorKind::UnknownEntity(e) => write!(f, "reference to undeclared entity `&{e};`"),
            ErrorKind::UnresolvedIdref(id) => write!(f, "IDREF `{id}` matches no ID"),
            ErrorKind::DuplicateId(id) => write!(f, "ID `{id}` declared twice"),
            ErrorKind::AndGroupTooLarge { size, max } => write!(
                f,
                "`&` connector group with {size} operands exceeds supported maximum {max}"
            ),
            ErrorKind::NestingTooDeep { depth, max } => write!(
                f,
                "element nesting {depth} levels deep exceeds the limit of {max}"
            ),
            ErrorKind::EntityExpansionTooLarge { expanded, max } => write!(
                f,
                "entity expansion of {expanded} bytes exceeds the budget of {max}"
            ),
            ErrorKind::Other(s) => f.write_str(s),
        }
    }
}

impl std::error::Error for SgmlError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SgmlError>;
