//! Content models and their matching machinery.
//!
//! Two engines over the same model:
//!
//! * **Brzozowski derivatives** ([`Rx`]) give incremental acceptance — the
//!   document parser keeps, per open element, the derivative of its content
//!   model by the children seen so far. This answers in O(model) time the
//!   questions tag-omission inference needs: *can this element accept label
//!   `l` next?* and *is the content complete?*
//! * A **backtracking matcher** ([`match_children`]) produces a [`MatchNode`]
//!   parse of a completed child sequence against the model. The SGML→O₂
//!   mapping uses the match tree to decide which choice branch was taken
//!   (→ which union marker) and which children belong to which `+`/`*`
//!   group (→ which list attribute).
//!
//! The `&` connector (unordered aggregation) is expanded into a choice of
//! permutations, capped at [`MAX_AND_GROUP`] operands.

use crate::error::{ErrorKind, Result, SgmlError};
use std::fmt;
use std::rc::Rc;

/// Maximum operands of an `&` group before permutation expansion is refused.
pub const MAX_AND_GROUP: usize = 5;

/// Occurrence indicators `?`, `+`, `*`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Occurrence {
    /// `?` — zero or one.
    Opt,
    /// `+` — one or more.
    Plus,
    /// `*` — zero or more.
    Star,
}

impl fmt::Display for Occurrence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Occurrence::Opt => "?",
            Occurrence::Plus => "+",
            Occurrence::Star => "*",
        })
    }
}

/// A content expression (the inside of a model group).
#[derive(Debug, Clone, PartialEq)]
pub enum ContentExpr {
    /// `#PCDATA`.
    Pcdata,
    /// Reference to an element.
    Ref(String),
    /// Ordered aggregation `a, b, c`.
    Seq(Vec<ContentExpr>),
    /// Unordered aggregation `a & b`.
    And(Vec<ContentExpr>),
    /// Choice `a | b`.
    Choice(Vec<ContentExpr>),
    /// `expr?`, `expr+`, `expr*`.
    Occur(Box<ContentExpr>, Occurrence),
}

/// Declared content of an element.
#[derive(Debug, Clone, PartialEq)]
pub enum ContentModel {
    /// `EMPTY` — no content, no end tag.
    Empty,
    /// `ANY` — any sequence of declared elements and text.
    Any,
    /// `(#PCDATA)` — character data only.
    Pcdata,
    /// A model group.
    Model(ContentExpr),
}

impl fmt::Display for ContentExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn group(f: &mut fmt::Formatter<'_>, items: &[ContentExpr], sep: &str) -> fmt::Result {
            f.write_str("(")?;
            for (i, e) in items.iter().enumerate() {
                if i > 0 {
                    f.write_str(sep)?;
                }
                write!(f, "{e}")?;
            }
            f.write_str(")")
        }
        match self {
            ContentExpr::Pcdata => f.write_str("#PCDATA"),
            ContentExpr::Ref(n) => f.write_str(n),
            ContentExpr::Seq(items) => group(f, items, ", "),
            ContentExpr::And(items) => group(f, items, " & "),
            ContentExpr::Choice(items) => group(f, items, " | "),
            ContentExpr::Occur(e, o) => match e.as_ref() {
                ContentExpr::Ref(_) | ContentExpr::Pcdata => write!(f, "{e}{o}"),
                _ => write!(f, "{e}{o}"),
            },
        }
    }
}

impl fmt::Display for ContentModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContentModel::Empty => f.write_str("EMPTY"),
            ContentModel::Any => f.write_str("ANY"),
            ContentModel::Pcdata => f.write_str("(#PCDATA)"),
            ContentModel::Model(e) => match e {
                ContentExpr::Seq(_) | ContentExpr::And(_) | ContentExpr::Choice(_) => {
                    write!(f, "{e}")
                }
                other => write!(f, "({other})"),
            },
        }
    }
}

/// A symbol of the content alphabet: a child element or character data.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Label {
    /// A child element with this name.
    Elem(String),
    /// A run of character data.
    Text,
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Elem(n) => f.write_str(n),
            Label::Text => f.write_str("#PCDATA"),
        }
    }
}

// ---------------------------------------------------------------------------
// Derivative engine
// ---------------------------------------------------------------------------

/// A regular expression over [`Label`]s in simplified form: the invariant is
/// that `Fail` never appears under a constructor and `Eps` never appears in a
/// `Seq`, so "language is empty" ⇔ "expression is `Fail`".
#[derive(Debug, Clone, PartialEq)]
pub enum Rx {
    /// The empty language ⊥.
    Fail,
    /// The empty word ε.
    Eps,
    /// A single label.
    Sym(Label),
    /// Concatenation.
    Seq(Vec<Rc<Rx>>),
    /// Alternation.
    Alt(Vec<Rc<Rx>>),
    /// Kleene closure.
    Star(Rc<Rx>),
}

impl Rx {
    /// Smart concatenation.
    fn seq(items: Vec<Rc<Rx>>) -> Rc<Rx> {
        let mut out: Vec<Rc<Rx>> = Vec::with_capacity(items.len());
        for item in items {
            match item.as_ref() {
                Rx::Fail => return Rc::new(Rx::Fail),
                Rx::Eps => {}
                Rx::Seq(inner) => out.extend(inner.iter().cloned()),
                _ => out.push(item),
            }
        }
        match out.len() {
            0 => Rc::new(Rx::Eps),
            1 => out.pop().expect("len checked"),
            _ => Rc::new(Rx::Seq(out)),
        }
    }

    /// Smart alternation.
    fn alt(items: Vec<Rc<Rx>>) -> Rc<Rx> {
        let mut out: Vec<Rc<Rx>> = Vec::with_capacity(items.len());
        for item in items {
            match item.as_ref() {
                Rx::Fail => {}
                Rx::Alt(inner) => {
                    for i in inner {
                        if !out.iter().any(|o| o == i) {
                            out.push(i.clone());
                        }
                    }
                }
                _ => {
                    if !out.iter().any(|o| o.as_ref() == item.as_ref()) {
                        out.push(item);
                    }
                }
            }
        }
        match out.len() {
            0 => Rc::new(Rx::Fail),
            1 => out.pop().expect("len checked"),
            _ => Rc::new(Rx::Alt(out)),
        }
    }

    /// Smart star.
    fn star(item: Rc<Rx>) -> Rc<Rx> {
        match item.as_ref() {
            Rx::Fail | Rx::Eps => Rc::new(Rx::Eps),
            Rx::Star(_) => item,
            _ => Rc::new(Rx::Star(item)),
        }
    }

    /// Does the language contain ε?
    pub fn nullable(&self) -> bool {
        match self {
            Rx::Fail => false,
            Rx::Eps => true,
            Rx::Sym(_) => false,
            Rx::Seq(items) => items.iter().all(|i| i.nullable()),
            Rx::Alt(items) => items.iter().any(|i| i.nullable()),
            Rx::Star(_) => true,
        }
    }

    /// Is the language empty? (By the smart-constructor invariant, only
    /// `Fail` denotes the empty language.)
    pub fn is_fail(&self) -> bool {
        matches!(self, Rx::Fail)
    }

    /// Brzozowski derivative with respect to `label`.
    pub fn derive(&self, label: &Label) -> Rc<Rx> {
        match self {
            Rx::Fail | Rx::Eps => Rc::new(Rx::Fail),
            Rx::Sym(l) => {
                if l == label {
                    Rc::new(Rx::Eps)
                } else {
                    Rc::new(Rx::Fail)
                }
            }
            Rx::Seq(items) => {
                // d(r₁ r₂ … ) = d(r₁) r₂ … | [r₁ nullable] d(r₂ …) …
                let mut alts = Vec::new();
                for (i, item) in items.iter().enumerate() {
                    let mut seq = vec![item.derive(label)];
                    seq.extend(items[i + 1..].iter().cloned());
                    alts.push(Rx::seq(seq));
                    if !item.nullable() {
                        break;
                    }
                }
                Rx::alt(alts)
            }
            Rx::Alt(items) => Rx::alt(items.iter().map(|i| i.derive(label)).collect()),
            Rx::Star(inner) => Rx::seq(vec![inner.derive(label), Rx::star(inner.clone())]),
        }
    }

    /// The labels on which the derivative is non-empty (the "next expected"
    /// set), used for implicit-start-tag inference and error messages.
    pub fn next_labels(&self, out: &mut Vec<Label>) {
        match self {
            Rx::Fail | Rx::Eps => {}
            Rx::Sym(l) => {
                if !out.contains(l) {
                    out.push(l.clone());
                }
            }
            Rx::Seq(items) => {
                for item in items {
                    item.next_labels(out);
                    if !item.nullable() {
                        break;
                    }
                }
            }
            Rx::Alt(items) => {
                for item in items {
                    item.next_labels(out);
                }
            }
            Rx::Star(inner) => inner.next_labels(out),
        }
    }
}

/// Expand `&` groups into choices of permuted sequences, so the derivative
/// and matcher engines only see `,`/`|` structure.
pub fn expand_and(expr: &ContentExpr) -> Result<ContentExpr> {
    Ok(match expr {
        ContentExpr::Pcdata | ContentExpr::Ref(_) => expr.clone(),
        ContentExpr::Seq(items) => {
            ContentExpr::Seq(items.iter().map(expand_and).collect::<Result<Vec<_>>>()?)
        }
        ContentExpr::Choice(items) => {
            ContentExpr::Choice(items.iter().map(expand_and).collect::<Result<Vec<_>>>()?)
        }
        ContentExpr::Occur(inner, occ) => ContentExpr::Occur(Box::new(expand_and(inner)?), *occ),
        ContentExpr::And(items) => {
            if items.len() > MAX_AND_GROUP {
                return Err(SgmlError::nowhere(ErrorKind::AndGroupTooLarge {
                    size: items.len(),
                    max: MAX_AND_GROUP,
                }));
            }
            let expanded: Vec<ContentExpr> =
                items.iter().map(expand_and).collect::<Result<Vec<_>>>()?;
            let mut alts = Vec::new();
            permute(
                &expanded,
                &mut Vec::new(),
                &mut vec![false; expanded.len()],
                &mut alts,
            );
            ContentExpr::Choice(alts)
        }
    })
}

fn permute(
    items: &[ContentExpr],
    current: &mut Vec<ContentExpr>,
    used: &mut Vec<bool>,
    out: &mut Vec<ContentExpr>,
) {
    if current.len() == items.len() {
        out.push(ContentExpr::Seq(current.clone()));
        return;
    }
    for i in 0..items.len() {
        if !used[i] {
            used[i] = true;
            current.push(items[i].clone());
            permute(items, current, used, out);
            current.pop();
            used[i] = false;
        }
    }
}

/// Compile a content model to its derivative form. `Any` compiles to
/// `(l₁ | l₂ | … | #PCDATA)*` over the supplied element alphabet.
pub fn compile(model: &ContentModel, alphabet: &[String]) -> Result<Rc<Rx>> {
    Ok(match model {
        ContentModel::Empty => Rc::new(Rx::Eps),
        ContentModel::Pcdata => Rx::star(Rc::new(Rx::Sym(Label::Text))),
        ContentModel::Any => {
            let mut alts: Vec<Rc<Rx>> = alphabet
                .iter()
                .map(|n| Rc::new(Rx::Sym(Label::Elem(n.clone()))))
                .collect();
            alts.push(Rc::new(Rx::Sym(Label::Text)));
            Rx::star(Rx::alt(alts))
        }
        ContentModel::Model(expr) => compile_expr(&expand_and(expr)?),
    })
}

fn compile_expr(expr: &ContentExpr) -> Rc<Rx> {
    match expr {
        ContentExpr::Pcdata => Rx::star(Rc::new(Rx::Sym(Label::Text))),
        ContentExpr::Ref(n) => Rc::new(Rx::Sym(Label::Elem(n.clone()))),
        ContentExpr::Seq(items) => Rx::seq(items.iter().map(compile_expr).collect()),
        ContentExpr::Choice(items) => Rx::alt(items.iter().map(compile_expr).collect()),
        ContentExpr::And(_) => unreachable!("expand_and removes & groups"),
        ContentExpr::Occur(inner, occ) => {
            let r = compile_expr(inner);
            match occ {
                Occurrence::Opt => Rx::alt(vec![Rc::new(Rx::Eps), r]),
                Occurrence::Star => Rx::star(r),
                Occurrence::Plus => Rx::seq(vec![r.clone(), Rx::star(r)]),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Backtracking matcher with parse trees
// ---------------------------------------------------------------------------

/// A parse of a child sequence against a content expression.
#[derive(Debug, Clone, PartialEq)]
pub enum MatchNode {
    /// Matched the child at this index (element or text run).
    Child(usize),
    /// Matched ε.
    Empty,
    /// One node per member of a `Seq`.
    Seq(Vec<MatchNode>),
    /// `Choice`: which alternative (index into the choice) and its parse.
    Choice(usize, Box<MatchNode>),
    /// `Occur`: the matched instances (empty for `?`/`*` taken zero times).
    Repeat(Vec<MatchNode>),
    /// `And`: operand parses in *matched* order as `(operand index, parse)`.
    And(Vec<(usize, MatchNode)>),
}

impl MatchNode {
    /// Collect, in order, the child indices covered by this parse.
    pub fn child_indices(&self, out: &mut Vec<usize>) {
        match self {
            MatchNode::Child(i) => out.push(*i),
            MatchNode::Empty => {}
            MatchNode::Seq(items) | MatchNode::Repeat(items) => {
                for m in items {
                    m.child_indices(out);
                }
            }
            MatchNode::Choice(_, inner) => inner.child_indices(out),
            MatchNode::And(items) => {
                for (_, m) in items {
                    m.child_indices(out);
                }
            }
        }
    }
}

/// Match a full child sequence against a content expression, returning a
/// parse tree, or `None` if the children do not belong to the model's
/// language.
pub fn match_children(expr: &ContentExpr, labels: &[Label]) -> Option<MatchNode> {
    let ends = matches_from(expr, labels, 0);
    ends.into_iter()
        .find(|(end, _)| *end == labels.len())
        .map(|(_, node)| node)
}

/// All `(end, parse)` pairs for matches of `expr` starting at `start`.
/// Deduplicated by end position (first parse wins — deterministic models
/// have at most one anyway).
fn matches_from(expr: &ContentExpr, labels: &[Label], start: usize) -> Vec<(usize, MatchNode)> {
    match expr {
        ContentExpr::Pcdata => {
            // Pure character data: a leaf #PCDATA matches zero or more text
            // runs (SGML treats interleaved runs as one data stream).
            let mut out = vec![(start, MatchNode::Empty)];
            let mut i = start;
            let mut matched = Vec::new();
            while i < labels.len() && labels[i] == Label::Text {
                matched.push(MatchNode::Child(i));
                i += 1;
                out.push((i, MatchNode::Repeat(matched.clone())));
            }
            out
        }
        ContentExpr::Ref(n) => match labels.get(start) {
            Some(Label::Elem(m)) if m == n => vec![(start + 1, MatchNode::Child(start))],
            _ => vec![],
        },
        ContentExpr::Seq(items) => {
            let mut states: Vec<(usize, Vec<MatchNode>)> = vec![(start, Vec::new())];
            for item in items {
                let mut next = Vec::new();
                for (pos, trail) in &states {
                    for (end, node) in matches_from(item, labels, *pos) {
                        if !next
                            .iter()
                            .any(|(e, _): &(usize, Vec<MatchNode>)| *e == end)
                        {
                            let mut t = trail.clone();
                            t.push(node);
                            next.push((end, t));
                        }
                    }
                }
                states = next;
                if states.is_empty() {
                    return vec![];
                }
            }
            states
                .into_iter()
                .map(|(end, trail)| (end, MatchNode::Seq(trail)))
                .collect()
        }
        ContentExpr::Choice(alts) => {
            let mut out: Vec<(usize, MatchNode)> = Vec::new();
            for (k, alt) in alts.iter().enumerate() {
                for (end, node) in matches_from(alt, labels, start) {
                    if !out.iter().any(|(e, _)| *e == end) {
                        out.push((end, MatchNode::Choice(k, Box::new(node))));
                    }
                }
            }
            out
        }
        ContentExpr::And(items) => {
            // Try operands in every feasible order (operands are typically
            // few; see MAX_AND_GROUP).
            let mut out: Vec<(usize, MatchNode)> = Vec::new();
            let mut used = vec![false; items.len()];
            and_search(items, labels, start, &mut used, &mut Vec::new(), &mut out);
            out
        }
        ContentExpr::Occur(inner, occ) => {
            let (min, max) = match occ {
                Occurrence::Opt => (0usize, Some(1usize)),
                Occurrence::Plus => (1, None),
                Occurrence::Star => (0, None),
            };
            let mut out: Vec<(usize, MatchNode)> = Vec::new();
            let mut states: Vec<(usize, Vec<MatchNode>)> = vec![(start, Vec::new())];
            let mut count = 0usize;
            if min == 0 {
                out.push((start, MatchNode::Repeat(Vec::new())));
            }
            loop {
                count += 1;
                if let Some(mx) = max {
                    if count > mx {
                        break;
                    }
                }
                let mut next = Vec::new();
                for (pos, trail) in &states {
                    for (end, node) in matches_from(inner, labels, *pos) {
                        // Guard against ε-loops: an iteration must consume.
                        if end == *pos {
                            continue;
                        }
                        if !next
                            .iter()
                            .any(|(e, _): &(usize, Vec<MatchNode>)| *e == end)
                        {
                            let mut t = trail.clone();
                            t.push(node);
                            next.push((end, t));
                        }
                    }
                }
                if next.is_empty() {
                    break;
                }
                if count >= min {
                    for (end, trail) in &next {
                        if !out.iter().any(|(e, _)| e == end) {
                            out.push((*end, MatchNode::Repeat(trail.clone())));
                        }
                    }
                }
                states = next;
            }
            // `+` with exactly the min count also needs recording when the
            // first round already satisfied min (handled above since
            // count >= min check runs every round).
            out
        }
    }
}

fn and_search(
    items: &[ContentExpr],
    labels: &[Label],
    pos: usize,
    used: &mut Vec<bool>,
    trail: &mut Vec<(usize, MatchNode)>,
    out: &mut Vec<(usize, MatchNode)>,
) {
    if trail.len() == items.len() {
        if !out.iter().any(|(e, _)| *e == pos) {
            out.push((pos, MatchNode::And(trail.clone())));
        }
        return;
    }
    for i in 0..items.len() {
        if used[i] {
            continue;
        }
        used[i] = true;
        for (end, node) in matches_from(&items[i], labels, pos) {
            trail.push((i, node));
            and_search(items, labels, end, used, trail, out);
            trail.pop();
        }
        used[i] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(names: &[&str]) -> Vec<Label> {
        names
            .iter()
            .map(|n| {
                if *n == "#" {
                    Label::Text
                } else {
                    Label::Elem(n.to_string())
                }
            })
            .collect()
    }

    fn model(src: &str) -> ContentExpr {
        // Reuse the DTD parser for convenience.
        let dtd = crate::dtd::Dtd::parse(&format!("<!ELEMENT x - - {src}>")).unwrap();
        match &dtd.element("x").unwrap().content {
            ContentModel::Model(e) => e.clone(),
            ContentModel::Pcdata => ContentExpr::Pcdata,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn derivative_accepts_simple_seq() {
        let rx = compile(&ContentModel::Model(model("(a, b)")), &[]).unwrap();
        let rx = rx.derive(&Label::Elem("a".into()));
        assert!(!rx.is_fail());
        assert!(!rx.nullable());
        let rx = rx.derive(&Label::Elem("b".into()));
        assert!(rx.nullable());
        assert!(rx.derive(&Label::Elem("a".into())).is_fail());
    }

    #[test]
    fn derivative_rejects_wrong_order() {
        let rx = compile(&ContentModel::Model(model("(a, b)")), &[]).unwrap();
        assert!(rx.derive(&Label::Elem("b".into())).is_fail());
    }

    #[test]
    fn derivative_handles_occurrences() {
        let rx = compile(&ContentModel::Model(model("(a+, b?)")), &[]).unwrap();
        let a = Label::Elem("a".into());
        let b = Label::Elem("b".into());
        let rx = rx.derive(&a);
        assert!(rx.nullable(), "a alone is complete");
        let rx2 = rx.derive(&a).derive(&a).derive(&b);
        assert!(rx2.nullable());
        assert!(rx2.derive(&b).is_fail(), "only one b allowed");
    }

    #[test]
    fn next_labels_reports_expectations() {
        let rx = compile(&ContentModel::Model(model("(title, body+)")), &[]).unwrap();
        let mut out = Vec::new();
        rx.next_labels(&mut out);
        assert_eq!(out, vec![Label::Elem("title".into())]);
        let rx = rx.derive(&Label::Elem("title".into()));
        let mut out = Vec::new();
        rx.next_labels(&mut out);
        assert_eq!(out, vec![Label::Elem("body".into())]);
    }

    #[test]
    fn and_expansion_accepts_both_orders() {
        let rx = compile(&ContentModel::Model(model("(to & from)")), &[]).unwrap();
        let to = Label::Elem("to".into());
        let from = Label::Elem("from".into());
        assert!(rx.derive(&to).derive(&from).nullable());
        assert!(rx.derive(&from).derive(&to).nullable());
        assert!(rx.derive(&from).derive(&from).is_fail());
    }

    #[test]
    fn and_group_too_large_rejected() {
        let expr = ContentExpr::And((0..6).map(|i| ContentExpr::Ref(format!("e{i}"))).collect());
        assert!(matches!(
            expand_and(&expr).unwrap_err().kind,
            ErrorKind::AndGroupTooLarge { size: 6, max: 5 }
        ));
    }

    #[test]
    fn pcdata_model_accepts_text_runs() {
        let rx = compile(&ContentModel::Pcdata, &[]).unwrap();
        assert!(rx.nullable(), "empty text is fine");
        assert!(rx.derive(&Label::Text).derive(&Label::Text).nullable());
        assert!(rx.derive(&Label::Elem("a".into())).is_fail());
    }

    #[test]
    fn any_model_accepts_alphabet() {
        let rx = compile(&ContentModel::Any, &["a".to_string(), "b".to_string()]).unwrap();
        assert!(rx
            .derive(&Label::Elem("a".into()))
            .derive(&Label::Text)
            .derive(&Label::Elem("b".into()))
            .nullable());
        assert!(rx.derive(&Label::Elem("zz".into())).is_fail());
    }

    #[test]
    fn empty_model_accepts_nothing() {
        let rx = compile(&ContentModel::Empty, &[]).unwrap();
        assert!(rx.nullable());
        assert!(rx.derive(&Label::Text).is_fail());
    }

    #[test]
    fn match_simple_seq() {
        let m = match_children(&model("(a, b)"), &l(&["a", "b"])).unwrap();
        assert_eq!(
            m,
            MatchNode::Seq(vec![MatchNode::Child(0), MatchNode::Child(1)])
        );
        assert!(match_children(&model("(a, b)"), &l(&["b", "a"])).is_none());
        assert!(match_children(&model("(a, b)"), &l(&["a"])).is_none());
    }

    #[test]
    fn match_reports_choice_branch() {
        // The paper's section model.
        let section = model("((title, body+) | (title, body*, subsectn+))");
        let m = match_children(&section, &l(&["title", "body", "body"])).unwrap();
        match m {
            MatchNode::Choice(0, _) => {}
            other => panic!("expected first branch, got {other:?}"),
        }
        let m = match_children(&section, &l(&["title", "subsectn"])).unwrap();
        match m {
            MatchNode::Choice(1, _) => {}
            other => panic!("expected second branch, got {other:?}"),
        }
        let m = match_children(&section, &l(&["title", "body", "subsectn"])).unwrap();
        assert!(matches!(m, MatchNode::Choice(1, _)));
    }

    #[test]
    fn match_repeat_groups_children() {
        let m = match_children(
            &model("(title, author+)"),
            &l(&["title", "author", "author"]),
        )
        .unwrap();
        match m {
            MatchNode::Seq(items) => {
                assert_eq!(items[0], MatchNode::Child(0));
                match &items[1] {
                    MatchNode::Repeat(insts) => assert_eq!(insts.len(), 2),
                    other => panic!("expected repeat, got {other:?}"),
                }
            }
            other => panic!("expected seq, got {other:?}"),
        }
    }

    #[test]
    fn match_optional_absent_and_present() {
        let figure = model("(picture, caption?)");
        let m = match_children(&figure, &l(&["picture"])).unwrap();
        match &m {
            MatchNode::Seq(items) => assert_eq!(items[1], MatchNode::Repeat(vec![])),
            other => panic!("{other:?}"),
        }
        let m = match_children(&figure, &l(&["picture", "caption"])).unwrap();
        match &m {
            MatchNode::Seq(items) => {
                assert_eq!(items[1], MatchNode::Repeat(vec![MatchNode::Child(1)]))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn match_and_records_order() {
        let pre = ContentExpr::And(vec![
            ContentExpr::Ref("to".into()),
            ContentExpr::Ref("from".into()),
        ]);
        let m = match_children(&pre, &l(&["from", "to"])).unwrap();
        match m {
            MatchNode::And(parts) => {
                assert_eq!(parts[0].0, 1, "operand `from` matched first");
                assert_eq!(parts[1].0, 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn match_child_indices_cover_in_order() {
        let section = model("((title, body+) | (title, body*, subsectn+))");
        let m = match_children(&section, &l(&["title", "body", "subsectn", "subsectn"])).unwrap();
        let mut idx = Vec::new();
        m.child_indices(&mut idx);
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }

    #[test]
    fn match_pcdata_leaf() {
        let m = match_children(&ContentExpr::Pcdata, &l(&["#", "#"])).unwrap();
        let mut idx = Vec::new();
        m.child_indices(&mut idx);
        assert_eq!(idx, vec![0, 1]);
        assert!(match_children(&ContentExpr::Pcdata, &l(&["a"])).is_none());
    }

    #[test]
    fn plus_requires_one() {
        let m = model("(a+)");
        assert!(match_children(&m, &l(&[])).is_none());
        assert!(match_children(&m, &l(&["a"])).is_some());
        assert!(match_children(&m, &l(&["a", "a", "a"])).is_some());
    }

    #[test]
    fn nested_groups_match() {
        let m = model("((a, b)+, c?)");
        assert!(match_children(&m, &l(&["a", "b", "a", "b", "c"])).is_some());
        assert!(match_children(&m, &l(&["a", "b", "a"])).is_none());
    }

    #[test]
    fn display_round_trip_via_dtd() {
        let e = model("((title, body+) | (title, body*, subsectn+))");
        assert_eq!(
            e.to_string(),
            "((title, body+) | (title, body*, subsectn+))"
        );
    }
}
