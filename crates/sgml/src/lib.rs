//! # docql-sgml — an SGML subset parser (§2)
//!
//! From-scratch implementation of the SGML features the paper relies on:
//! DTD parsing (element declarations with `,`/`&`/`|` connectors and
//! `?`/`+`/`*` occurrence indicators, attribute lists, entities), document
//! instance parsing with **tag-omission inference** driven by content-model
//! derivatives, content-model matching with parse trees (consumed by the
//! SGML→O₂ mapping), and whole-document validation including ID/IDREF
//! resolution.
//!
//! Stands in for the Euroclid SGML parser the paper's prototype extended.

pub mod content;
pub mod cursor;
pub mod doc;
pub mod dtd;
pub mod error;
pub mod fixtures;
pub mod parser;
pub mod validate;

// Used by parser unit tests.
#[cfg(test)]
pub(crate) use fixtures as test_fixtures;

pub use content::{match_children, ContentExpr, ContentModel, Label, MatchNode, Occurrence};
pub use doc::{Document, Element, Node};
pub use dtd::{AttDefault, AttList, AttType, Dtd, ElementDecl, EntityDecl, Minimization};
pub use error::{ErrorKind, Pos, Result, SgmlError};
pub use parser::DocParser;
pub use validate::{is_valid, validate};
