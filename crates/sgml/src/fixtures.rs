//! The paper's running example, transcribed: the Fig. 1 DTD and a Fig. 2
//! document instance.
//!
//! Fig. 2 as printed elides required material behind `…` (it shows no
//! `affil`, no `acknowl`, and its `paragr` elements omit the `#REQUIRED`
//! `reflabel` attribute and carry no referent `figure`). The constant below
//! completes those elisions minimally so the instance is valid against the
//! Fig. 1 DTD: an `affil`, an `acknowl`, a `figure` labelled `fig1` in the
//! first section, and `reflabel="fig1"` on the paragraphs.

/// Fig. 1: A DTD for a document of type `article`.
pub const ARTICLE_DTD: &str = r#"<!DOCTYPE article [
<!ELEMENT article - - (title, author+, affil, abstract, section+, acknowl)>
<!ATTLIST article  status (final | draft) draft>
<!ELEMENT title - O (#PCDATA)>
<!ELEMENT author - O (#PCDATA)>
<!ELEMENT affil - O (#PCDATA)>
<!ELEMENT abstract - O (#PCDATA)>
<!ELEMENT section - O ((title, body+) | (title, body*, subsectn+))>
<!ELEMENT subsectn - O (title, body+)>
<!ELEMENT body - O (figure | paragr)>
<!ELEMENT figure - O (picture, caption?)>
<!ATTLIST figure   label ID #IMPLIED>
<!ELEMENT picture - O EMPTY>
<!ATTLIST picture  sizex NMTOKEN "16cm"
                   sizey NMTOKEN #IMPLIED
                   file ENTITY #IMPLIED>
<!ELEMENT caption O O (#PCDATA)>
<!ENTITY fig1 SYSTEM "/u/christop/SGML/image1" NDATA >
<!ELEMENT paragr - O (#PCDATA)>
<!ATTLIST paragr   reflabel IDREF #REQUIRED>
<!ELEMENT acknowl - O (#PCDATA)>
]>"#;

/// Fig. 2: An SGML document of type `article` (elisions completed; see
/// module docs). Note the omitted `</author>` end tags, as in the paper.
pub const FIG2_DOCUMENT: &str = r#"<article status="final">
<title> From Structured Documents to Novel Query Facilities </title>
<author> V. Christophides
<author> S. Abiteboul
<author> S. Cluet
<author> M. Scholl
</author>
<affil> I.N.R.I.A. </affil>
<abstract> Structured documents (e.g., SGML) can benefit a lot from database
support and more specifically from object-oriented database (OODB) management
systems... </abstract>
<section>
<title> Introduction </title>
<body><figure label="fig1"><picture file="fig1">
<caption> The mapping at a glance </caption></figure></body>
<body><paragr reflabel="fig1"> This paper is organized as follows. Section 2
introduces the SGML standard. The mapping from SGML to the O2 DBMS is defined
in Section 3. Section 4 presents the extension ... </paragr>
</body></section>
<section>
<title> SGML preliminaries </title>
<body><paragr reflabel="fig1"> In this section, we present the main features
of SGML. (A general presentation is clearly beyond the scope of this paper.)
</paragr></body></section>
<acknowl> We are grateful to O2 Technology, Euroclid and AIS Berger-Levrault
for their technical support during this project. </acknowl>
</article>"#;

/// A small letters DTD exercising the `&` connector (§4.4 / Q6): a preamble
/// whose recipient (`to`) and sender (`from`) come in permutable order.
pub const LETTER_DTD: &str = r#"<!DOCTYPE letter [
<!ELEMENT letter - - (preamble, subject?, para+)>
<!ELEMENT preamble - - (to & from)>
<!ELEMENT to - O (#PCDATA)>
<!ELEMENT from - O (#PCDATA)>
<!ELEMENT subject - O (#PCDATA)>
<!ELEMENT para - O (#PCDATA)>
]>"#;
