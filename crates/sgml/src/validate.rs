//! Whole-document validation against a DTD.
//!
//! The [`crate::parser::DocParser`] validates incrementally while parsing;
//! this module re-validates *programmatically constructed* trees (e.g. the
//! synthetic corpus generator builds [`crate::doc::Document`]s directly) and
//! performs the document-global checks the streaming parser cannot:
//! ID uniqueness and IDREF resolution (Fig. 1 lines 12/18).

use crate::content::{match_children, ContentExpr, ContentModel, Label};
use crate::doc::{Document, Element, Node};
use crate::dtd::{AttDefault, AttType, Dtd};
use crate::error::{ErrorKind, SgmlError};
use std::collections::HashSet;

/// Validate a document against a DTD. Returns every violation found.
pub fn validate(doc: &Document, dtd: &Dtd) -> Vec<SgmlError> {
    let mut v = Validator {
        dtd,
        errors: Vec::new(),
        ids: HashSet::new(),
        idrefs: Vec::new(),
    };
    if !dtd.doctype.is_empty() && doc.root.name != dtd.doctype {
        v.errors
            .push(SgmlError::nowhere(ErrorKind::ContentModelMismatch {
                element: doc.root.name.clone(),
                detail: format!("document element must be `{}`", dtd.doctype),
            }));
    }
    v.element(&doc.root);
    // Global referential checks.
    for idref in &v.idrefs {
        if !v.ids.contains(idref) {
            v.errors.push(SgmlError::nowhere(ErrorKind::UnresolvedIdref(
                idref.clone(),
            )));
        }
    }
    v.errors
}

/// Is the document valid?
pub fn is_valid(doc: &Document, dtd: &Dtd) -> bool {
    validate(doc, dtd).is_empty()
}

struct Validator<'d> {
    dtd: &'d Dtd,
    errors: Vec<SgmlError>,
    ids: HashSet<String>,
    idrefs: Vec<String>,
}

impl Validator<'_> {
    fn element(&mut self, e: &Element) {
        let Some(decl) = self.dtd.element(&e.name) else {
            self.errors
                .push(SgmlError::nowhere(ErrorKind::UnknownElement(
                    e.name.clone(),
                )));
            return;
        };
        self.attributes(e);
        // Build the child label sequence appropriate for the content model.
        let accepts_text = model_accepts_text(&decl.content);
        let labels: Vec<Label> = e
            .children
            .iter()
            .filter_map(|c| match c {
                Node::Element(el) => Some(Label::Elem(el.name.clone())),
                Node::Text(t) => {
                    if accepts_text {
                        Some(Label::Text)
                    } else if t.trim().is_empty() {
                        None
                    } else {
                        Some(Label::Text) // will be reported as mismatch
                    }
                }
            })
            .collect();
        let ok = match &decl.content {
            ContentModel::Empty => labels.is_empty(),
            ContentModel::Any => true,
            ContentModel::Pcdata => labels.iter().all(|l| *l == Label::Text),
            ContentModel::Model(expr) => match crate::content::expand_and(expr) {
                Ok(expanded) => match_children(&expanded, &labels).is_some(),
                Err(err) => {
                    self.errors.push(err);
                    true
                }
            },
        };
        if !ok {
            self.errors
                .push(SgmlError::nowhere(ErrorKind::ContentModelMismatch {
                    element: e.name.clone(),
                    detail: format!(
                        "children [{}] do not match {}",
                        labels
                            .iter()
                            .map(|l| l.to_string())
                            .collect::<Vec<_>>()
                            .join(", "),
                        decl.content
                    ),
                }));
        }
        for c in e.child_elements() {
            self.element(c);
        }
    }

    fn attributes(&mut self, e: &Element) {
        let decls = self.dtd.attributes_of(&e.name);
        for (n, v) in &e.attrs {
            let Some(decl) = decls.iter().find(|d| &d.name == n) else {
                self.errors
                    .push(SgmlError::nowhere(ErrorKind::UnknownAttribute {
                        element: e.name.clone(),
                        attribute: n.clone(),
                    }));
                continue;
            };
            match &decl.ty {
                AttType::Enumerated(allowed) => {
                    if !allowed.contains(v) {
                        self.errors
                            .push(SgmlError::nowhere(ErrorKind::BadAttributeValue {
                                element: e.name.clone(),
                                attribute: n.clone(),
                                value: v.clone(),
                                allowed: allowed.clone(),
                            }));
                    }
                }
                AttType::Id => {
                    if !self.ids.insert(v.clone()) {
                        self.errors
                            .push(SgmlError::nowhere(ErrorKind::DuplicateId(v.clone())));
                    }
                }
                AttType::Idref => self.idrefs.push(v.clone()),
                AttType::Idrefs => {
                    self.idrefs.extend(v.split_whitespace().map(str::to_owned));
                }
                AttType::Entity => {
                    if self.dtd.entity(v).is_none() {
                        self.errors
                            .push(SgmlError::nowhere(ErrorKind::UnknownEntity(v.clone())));
                    }
                }
                AttType::Cdata | AttType::NmToken => {}
            }
        }
        for decl in decls {
            if matches!(decl.default, AttDefault::Required)
                && !e.attrs.iter().any(|(n, _)| n == &decl.name)
            {
                self.errors
                    .push(SgmlError::nowhere(ErrorKind::MissingRequiredAttribute {
                        element: e.name.clone(),
                        attribute: decl.name.clone(),
                    }));
            }
        }
    }
}

fn model_accepts_text(model: &ContentModel) -> bool {
    fn expr_has_pcdata(e: &ContentExpr) -> bool {
        match e {
            ContentExpr::Pcdata => true,
            ContentExpr::Ref(_) => false,
            ContentExpr::Seq(items) | ContentExpr::And(items) | ContentExpr::Choice(items) => {
                items.iter().any(expr_has_pcdata)
            }
            ContentExpr::Occur(inner, _) => expr_has_pcdata(inner),
        }
    }
    match model {
        ContentModel::Pcdata | ContentModel::Any => true,
        ContentModel::Empty => false,
        ContentModel::Model(e) => expr_has_pcdata(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{ARTICLE_DTD, FIG2_DOCUMENT};
    use crate::parser::DocParser;

    fn fig2() -> (Dtd, Document) {
        let dtd = Dtd::parse(ARTICLE_DTD).unwrap();
        let doc = DocParser::new(&dtd).unwrap().parse(FIG2_DOCUMENT).unwrap();
        (dtd, doc)
    }

    #[test]
    fn fig2_is_valid() {
        let (dtd, doc) = fig2();
        let errs = validate(&doc, &dtd);
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn unresolved_idref_detected() {
        let (dtd, mut doc) = fig2();
        // Point a paragraph at a label that no figure declares.
        fn retarget(e: &mut Element) {
            if e.name == "paragr" {
                for (n, v) in &mut e.attrs {
                    if n == "reflabel" {
                        *v = "ghost".to_string();
                    }
                }
            }
            for c in &mut e.children {
                if let Node::Element(el) = c {
                    retarget(el);
                }
            }
        }
        retarget(&mut doc.root);
        let errs = validate(&doc, &dtd);
        assert!(errs
            .iter()
            .any(|e| matches!(&e.kind, ErrorKind::UnresolvedIdref(id) if id == "ghost")));
    }

    #[test]
    fn duplicate_id_detected() {
        let dtd = Dtd::parse(ARTICLE_DTD).unwrap();
        let mut fig = Element::new("figure");
        fig.attrs.push(("label".into(), "f".into()));
        fig.children.push(Node::Element(Element::new("picture")));
        let mut body1 = Element::new("body");
        body1.children.push(Node::Element(fig.clone()));
        let mut body2 = Element::new("body");
        body2.children.push(Node::Element(fig));
        let mut title = Element::new("title");
        title.children.push(Node::Text("T".into()));
        let mut section = Element::new("section");
        section.children = vec![
            Node::Element(title.clone()),
            Node::Element(body1),
            Node::Element(body2),
        ];
        let mut root = Element::new("article");
        let mk_text = |name: &str| {
            let mut e = Element::new(name);
            e.children.push(Node::Text("x".into()));
            Node::Element(e)
        };
        root.children = vec![
            Node::Element(title),
            mk_text("author"),
            mk_text("affil"),
            mk_text("abstract"),
            Node::Element(section),
            mk_text("acknowl"),
        ];
        let errs = validate(&Document { root }, &dtd);
        assert!(errs
            .iter()
            .any(|e| matches!(&e.kind, ErrorKind::DuplicateId(id) if id == "f")));
    }

    #[test]
    fn content_model_violation_detected() {
        let dtd = Dtd::parse(ARTICLE_DTD).unwrap();
        let mut root = Element::new("article");
        root.children.push(Node::Element(Element::new("abstract"))); // wrong order/missing parts
        let errs = validate(&Document { root }, &dtd);
        assert!(errs
            .iter()
            .any(|e| matches!(&e.kind, ErrorKind::ContentModelMismatch { .. })));
    }

    #[test]
    fn stray_text_in_element_content_detected() {
        let dtd = Dtd::parse(ARTICLE_DTD).unwrap();
        let mut root = Element::new("article");
        root.children.push(Node::Text("loose text".into()));
        let errs = validate(&Document { root }, &dtd);
        assert!(!errs.is_empty());
    }

    #[test]
    fn wrong_doctype_detected() {
        let dtd = Dtd::parse(ARTICLE_DTD).unwrap();
        let doc = Document {
            root: Element::new("title"),
        };
        let errs = validate(&doc, &dtd);
        assert!(errs
            .iter()
            .any(|e| matches!(&e.kind, ErrorKind::ContentModelMismatch { .. })));
    }
}
