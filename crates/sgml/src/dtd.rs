//! DTD parsing: `<!DOCTYPE … [ <!ELEMENT …> <!ATTLIST …> <!ENTITY …> ]>`.
//!
//! Supports the SGML features the paper exercises (§2): element declarations
//! with tag-minimization indicators (`- O`), content models built from the
//! `,` (ordered aggregation), `&` (unordered aggregation) and `|` (choice)
//! connectors with `?`, `+`, `*` occurrence indicators, `#PCDATA` / `EMPTY` /
//! `ANY` declared content, attribute lists (CDATA, ID, IDREF, NMTOKEN,
//! ENTITY, enumerated groups, with `#REQUIRED` / `#IMPLIED` / literal
//! defaults), and internal / external (`SYSTEM … NDATA`) entities.

use crate::content::{ContentExpr, ContentModel, Occurrence};
use crate::cursor::Cursor;
use crate::error::{ErrorKind, Result, SgmlError};
use std::collections::HashMap;
use std::fmt;

/// Tag minimization: can the start/end tag be omitted? (`- O` syntax: `-`
/// means required, `O` means omissible.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Minimization {
    /// Start tag may be omitted.
    pub start_omissible: bool,
    /// End tag may be omitted.
    pub end_omissible: bool,
}

/// `<!ELEMENT name - O (content)>`
#[derive(Debug, Clone, PartialEq)]
pub struct ElementDecl {
    /// Element (generic identifier) name, lower-cased as is SGML custom.
    pub name: String,
    /// Tag minimization indicators.
    pub minimization: Minimization,
    /// Declared content.
    pub content: ContentModel,
}

/// Declared type of an attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum AttType {
    /// Character data.
    Cdata,
    /// Unique identifier (cross-reference target).
    Id,
    /// Reference to an ID elsewhere in the document.
    Idref,
    /// List of IDREFs.
    Idrefs,
    /// Name token.
    NmToken,
    /// Entity name (e.g. an external graphic, Fig. 1 line 14).
    Entity,
    /// Enumerated name-token group, e.g. `(final | draft)`.
    Enumerated(Vec<String>),
}

/// Default-value specification of an attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum AttDefault {
    /// `#REQUIRED` — must be supplied on every instance.
    Required,
    /// `#IMPLIED` — may be absent.
    Implied,
    /// A literal default value (e.g. `"16cm"`, or `draft` for an enumerated
    /// attribute).
    Value(String),
}

/// One attribute definition within an ATTLIST.
#[derive(Debug, Clone, PartialEq)]
pub struct AttDef {
    /// Attribute name.
    pub name: String,
    /// Declared type.
    pub ty: AttType,
    /// Default specification.
    pub default: AttDefault,
}

/// `<!ATTLIST element …>`
#[derive(Debug, Clone, PartialEq)]
pub struct AttList {
    /// Element the attributes belong to.
    pub element: String,
    /// The attribute definitions.
    pub atts: Vec<AttDef>,
}

/// `<!ENTITY name "text">` or `<!ENTITY name SYSTEM "sysid" NDATA [notation]>`
#[derive(Debug, Clone, PartialEq)]
pub enum EntityDecl {
    /// Internal text entity, replaced in content.
    Internal { name: String, text: String },
    /// External (typically non-SGML data, e.g. an image file).
    External {
        name: String,
        system_id: String,
        notation: Option<String>,
    },
}

impl EntityDecl {
    /// The entity's name.
    pub fn name(&self) -> &str {
        match self {
            EntityDecl::Internal { name, .. } | EntityDecl::External { name, .. } => name,
        }
    }
}

/// A parsed document type definition.
#[derive(Debug, Clone, Default)]
pub struct Dtd {
    /// The document element named by `<!DOCTYPE name [ … ]>`.
    pub doctype: String,
    /// Element declarations, in source order.
    pub elements: Vec<ElementDecl>,
    /// Attribute lists (merged per element by [`Dtd::attributes_of`]).
    pub attlists: Vec<AttList>,
    /// Entity declarations.
    pub entities: Vec<EntityDecl>,
    element_index: HashMap<String, usize>,
}

impl Dtd {
    /// Parse a DTD from `<!DOCTYPE name [ … ]>` text (or from a bare internal
    /// subset if `src` starts directly with `<!ELEMENT`).
    pub fn parse(src: &str) -> Result<Dtd> {
        Parser {
            cur: Cursor::new(src),
        }
        .parse_dtd()
    }

    /// Look up an element declaration by (case-insensitive) name.
    pub fn element(&self, name: &str) -> Option<&ElementDecl> {
        self.element_index
            .get(&name.to_ascii_lowercase())
            .map(|&i| &self.elements[i])
    }

    /// All attribute definitions declared for an element, merged across its
    /// ATTLIST declarations in source order.
    pub fn attributes_of(&self, element: &str) -> Vec<&AttDef> {
        let element = element.to_ascii_lowercase();
        self.attlists
            .iter()
            .filter(|a| a.element == element)
            .flat_map(|a| a.atts.iter())
            .collect()
    }

    /// Find an entity by name.
    pub fn entity(&self, name: &str) -> Option<&EntityDecl> {
        self.entities.iter().find(|e| e.name() == name)
    }

    /// Names of all declared elements, in declaration order.
    pub fn element_names(&self) -> impl Iterator<Item = &str> {
        self.elements.iter().map(|e| e.name.as_str())
    }

    fn index(&mut self) -> Result<()> {
        for (i, e) in self.elements.iter().enumerate() {
            if self.element_index.insert(e.name.clone(), i).is_some() {
                return Err(SgmlError::nowhere(ErrorKind::DuplicateElement(
                    e.name.clone(),
                )));
            }
        }
        for a in &self.attlists {
            if !self.element_index.contains_key(&a.element) {
                return Err(SgmlError::nowhere(ErrorKind::AttlistForUnknownElement(
                    a.element.clone(),
                )));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Dtd {
    /// Re-emit the DTD in `<!DOCTYPE … [ … ]>` form (Fig. 1 regeneration).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "<!DOCTYPE {} [", self.doctype)?;
        for e in &self.elements {
            let min = |b: bool| if b { "O" } else { "-" };
            write!(
                f,
                "<!ELEMENT {} {} {} ",
                e.name,
                min(e.minimization.start_omissible),
                min(e.minimization.end_omissible)
            )?;
            writeln!(f, "{}>", e.content)?;
            for list in self.attlists.iter().filter(|a| a.element == e.name) {
                write!(f, "<!ATTLIST {}", e.name)?;
                for att in &list.atts {
                    let ty = match &att.ty {
                        AttType::Cdata => "CDATA".to_string(),
                        AttType::Id => "ID".to_string(),
                        AttType::Idref => "IDREF".to_string(),
                        AttType::Idrefs => "IDREFS".to_string(),
                        AttType::NmToken => "NMTOKEN".to_string(),
                        AttType::Entity => "ENTITY".to_string(),
                        AttType::Enumerated(vs) => format!("({})", vs.join(" | ")),
                    };
                    let dflt = match &att.default {
                        AttDefault::Required => "#REQUIRED".to_string(),
                        AttDefault::Implied => "#IMPLIED".to_string(),
                        AttDefault::Value(v) => format!("\"{v}\""),
                    };
                    write!(f, " {} {} {}", att.name, ty, dflt)?;
                }
                writeln!(f, ">")?;
            }
        }
        for ent in &self.entities {
            match ent {
                EntityDecl::Internal { name, text } => {
                    writeln!(f, "<!ENTITY {name} \"{text}\">")?;
                }
                EntityDecl::External {
                    name,
                    system_id,
                    notation,
                } => match notation {
                    Some(n) => writeln!(f, "<!ENTITY {name} SYSTEM \"{system_id}\" NDATA {n}>")?,
                    None => writeln!(f, "<!ENTITY {name} SYSTEM \"{system_id}\" NDATA >")?,
                },
            }
        }
        write!(f, "]>")
    }
}

struct Parser<'a> {
    cur: Cursor<'a>,
}

impl<'a> Parser<'a> {
    fn parse_dtd(mut self) -> Result<Dtd> {
        let mut dtd = Dtd::default();
        self.cur.skip_ws_and_comments();
        if self.cur.eat("<!DOCTYPE") {
            self.cur.skip_ws();
            dtd.doctype = self.cur.name(false)?.to_ascii_lowercase();
            self.cur.skip_ws();
            self.cur.expect("[")?;
        }
        loop {
            self.cur.skip_ws_and_comments();
            if self.cur.at_eof() {
                break;
            }
            if self.cur.eat("]") {
                self.cur.skip_ws();
                let _ = self.cur.eat(">");
                break;
            }
            if self.cur.eat("<!ELEMENT") {
                let decls = self.element_decl()?;
                dtd.elements.extend(decls);
            } else if self.cur.eat("<!ATTLIST") {
                dtd.attlists.push(self.attlist_decl()?);
            } else if self.cur.eat("<!ENTITY") {
                dtd.entities.push(self.entity_decl()?);
            } else {
                return Err(SgmlError::new(
                    self.cur.pos(),
                    ErrorKind::Unexpected {
                        expected: "`<!ELEMENT`, `<!ATTLIST`, `<!ENTITY` or `]>`".to_string(),
                        found: format!(
                            "`{}`",
                            self.cur.rest().chars().take(12).collect::<String>()
                        ),
                    },
                ));
            }
        }
        if dtd.doctype.is_empty() {
            if let Some(first) = dtd.elements.first() {
                dtd.doctype = first.name.clone();
            }
        }
        dtd.index()?;
        Ok(dtd)
    }

    /// `<!ELEMENT name - O (model)>`; a name group `(a | b)` declares several
    /// elements with the same model (standard SGML shorthand).
    fn element_decl(&mut self) -> Result<Vec<ElementDecl>> {
        self.cur.skip_ws();
        let mut names = Vec::new();
        if self.cur.eat("(") {
            loop {
                self.cur.skip_ws();
                names.push(self.cur.name(false)?.to_ascii_lowercase());
                self.cur.skip_ws();
                if self.cur.eat("|") {
                    continue;
                }
                self.cur.expect(")")?;
                break;
            }
        } else {
            names.push(self.cur.name(false)?.to_ascii_lowercase());
        }
        self.cur.skip_ws();
        // Minimization indicators are optional in our input subset.
        let mut minimization = Minimization::default();
        let mut saw_min = false;
        if matches!(self.cur.peek(), Some(b'-' | b'O' | b'o')) {
            // Disambiguate `- O` from the start of a content model: a content
            // model always starts with `(` or a reserved word.
            let c = self.cur.peek().unwrap();
            if c == b'-' || self.cur.peek_at(1).is_none_or(|b| b.is_ascii_whitespace()) {
                minimization.start_omissible = c != b'-';
                self.cur.bump();
                self.cur.skip_ws();
                match self.cur.peek() {
                    Some(b'-') => {
                        self.cur.bump();
                    }
                    Some(b'O' | b'o') => {
                        minimization.end_omissible = true;
                        self.cur.bump();
                    }
                    other => {
                        return Err(SgmlError::new(
                            self.cur.pos(),
                            ErrorKind::Unexpected {
                                expected: "`-` or `O` (end-tag minimization)".to_string(),
                                found: other
                                    .map(|b| format!("`{}`", b as char))
                                    .unwrap_or_else(|| "end of input".to_string()),
                            },
                        ));
                    }
                }
                saw_min = true;
            }
        }
        let _ = saw_min;
        self.cur.skip_ws();
        let content = self.content_model()?;
        self.cur.skip_ws();
        self.cur.expect(">")?;
        Ok(names
            .into_iter()
            .map(|name| ElementDecl {
                name,
                minimization,
                content: content.clone(),
            })
            .collect())
    }

    fn content_model(&mut self) -> Result<ContentModel> {
        self.cur.skip_ws();
        if self.cur.eat("EMPTY") {
            return Ok(ContentModel::Empty);
        }
        if self.cur.eat("ANY") {
            return Ok(ContentModel::Any);
        }
        let expr = self.content_expr()?;
        // `(#PCDATA)` alone means pure character data.
        if expr == ContentExpr::Pcdata {
            return Ok(ContentModel::Pcdata);
        }
        Ok(ContentModel::Model(expr))
    }

    /// A model group or single token, with optional occurrence indicator.
    fn content_expr(&mut self) -> Result<ContentExpr> {
        self.cur.skip_ws();
        let base = if self.cur.eat("(") {
            let inner = self.model_group()?;
            self.cur.expect(")")?;
            inner
        } else if self.cur.eat("#PCDATA") {
            ContentExpr::Pcdata
        } else {
            let name = self.cur.name(false)?.to_ascii_lowercase();
            ContentExpr::Ref(name)
        };
        Ok(self.occurrence(base))
    }

    /// Contents of a parenthesised group: `a, b, c` or `a | b` or `a & b`.
    fn model_group(&mut self) -> Result<ContentExpr> {
        let first = self.content_expr()?;
        self.cur.skip_ws();
        let connector = match self.cur.peek() {
            Some(b',') => b',',
            Some(b'|') => b'|',
            Some(b'&') => b'&',
            _ => return Ok(first),
        };
        let mut items = vec![first];
        while self.cur.peek() == Some(connector) {
            self.cur.bump();
            items.push(self.content_expr()?);
            self.cur.skip_ws();
        }
        // Reject mixed connectors at one level (SGML requires homogeneity).
        if let Some(b @ (b',' | b'|' | b'&')) = self.cur.peek() {
            return Err(SgmlError::new(
                self.cur.pos(),
                ErrorKind::Unexpected {
                    expected: format!("`{}` or `)`", connector as char),
                    found: format!("`{}` (mixed connectors)", b as char),
                },
            ));
        }
        Ok(match connector {
            b',' => ContentExpr::Seq(items),
            b'|' => ContentExpr::Choice(items),
            _ => ContentExpr::And(items),
        })
    }

    fn occurrence(&mut self, base: ContentExpr) -> ContentExpr {
        let occ = match self.cur.peek() {
            Some(b'?') => Occurrence::Opt,
            Some(b'+') => Occurrence::Plus,
            Some(b'*') => Occurrence::Star,
            _ => return base,
        };
        self.cur.bump();
        ContentExpr::Occur(Box::new(base), occ)
    }

    fn attlist_decl(&mut self) -> Result<AttList> {
        self.cur.skip_ws();
        let element = self.cur.name(false)?.to_ascii_lowercase();
        let mut atts = Vec::new();
        loop {
            self.cur.skip_ws();
            if self.cur.eat(">") {
                break;
            }
            let name = self.cur.name(false)?.to_ascii_lowercase();
            self.cur.skip_ws();
            let ty = if self.cur.eat("CDATA") {
                AttType::Cdata
            } else if self.cur.eat("IDREFS") {
                AttType::Idrefs
            } else if self.cur.eat("IDREF") {
                AttType::Idref
            } else if self.cur.eat("ID") {
                AttType::Id
            } else if self.cur.eat("NMTOKEN") {
                AttType::NmToken
            } else if self.cur.eat("ENTITY") {
                AttType::Entity
            } else if self.cur.eat("(") {
                let mut names = Vec::new();
                loop {
                    self.cur.skip_ws();
                    names.push(self.cur.name(false)?.to_ascii_lowercase());
                    self.cur.skip_ws();
                    if self.cur.eat("|") {
                        continue;
                    }
                    self.cur.expect(")")?;
                    break;
                }
                AttType::Enumerated(names)
            } else {
                return Err(SgmlError::new(
                    self.cur.pos(),
                    ErrorKind::Unexpected {
                        expected: "an attribute type".to_string(),
                        found: format!(
                            "`{}`",
                            self.cur.rest().chars().take(12).collect::<String>()
                        ),
                    },
                ));
            };
            self.cur.skip_ws();
            let default = if self.cur.eat("#REQUIRED") {
                AttDefault::Required
            } else if self.cur.eat("#IMPLIED") {
                AttDefault::Implied
            } else if matches!(self.cur.peek(), Some(b'"' | b'\'')) {
                AttDefault::Value(self.cur.quoted()?)
            } else {
                // Bare name-token default (e.g. `draft` in Fig. 1 line 3).
                AttDefault::Value(self.cur.name(false)?.to_ascii_lowercase())
            };
            atts.push(AttDef { name, ty, default });
        }
        Ok(AttList { element, atts })
    }

    fn entity_decl(&mut self) -> Result<EntityDecl> {
        self.cur.skip_ws();
        let name = self.cur.name(false)?;
        self.cur.skip_ws();
        if self.cur.eat("SYSTEM") {
            self.cur.skip_ws();
            let system_id = self.cur.quoted()?;
            self.cur.skip_ws();
            let notation = if self.cur.eat("NDATA") {
                self.cur.skip_ws();
                if self.cur.peek() == Some(b'>') {
                    None
                } else {
                    Some(self.cur.name(false)?)
                }
            } else {
                None
            };
            self.cur.skip_ws();
            self.cur.expect(">")?;
            Ok(EntityDecl::External {
                name,
                system_id,
                notation,
            })
        } else {
            let text = self.cur.quoted()?;
            self.cur.skip_ws();
            self.cur.expect(">")?;
            Ok(EntityDecl::Internal { name, text })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::fixtures::ARTICLE_DTD;
    #[allow(dead_code)]
    const UNUSED: &str = r#"<!DOCTYPE article [
<!ELEMENT article - - (title, author+, affil, abstract, section+, acknowl)>
<!ATTLIST article  status (final | draft) draft>
<!ELEMENT title - O (#PCDATA)>
<!ELEMENT author - O (#PCDATA)>
<!ELEMENT affil - O (#PCDATA)>
<!ELEMENT abstract - O (#PCDATA)>
<!ELEMENT section - O ((title, body+) | (title, body*, subsectn+))>
<!ELEMENT subsectn - O (title, body+)>
<!ELEMENT body - O (figure | paragr)>
<!ELEMENT figure - O (picture, caption?)>
<!ATTLIST figure   label ID #IMPLIED>
<!ELEMENT picture - O EMPTY>
<!ATTLIST picture  sizex NMTOKEN "16cm"
                   sizey NMTOKEN #IMPLIED
                   file ENTITY #IMPLIED>
<!ELEMENT caption O O (#PCDATA)>
<!ENTITY fig1 SYSTEM "/u/christop/SGML/image1" NDATA >
<!ELEMENT paragr - O (#PCDATA)>
<!ATTLIST paragr   reflabel IDREF #REQUIRED>
<!ELEMENT acknowl - O (#PCDATA)>
]>"#;

    #[test]
    fn parses_fig1_dtd() {
        let dtd = Dtd::parse(ARTICLE_DTD).unwrap();
        assert_eq!(dtd.doctype, "article");
        assert_eq!(dtd.elements.len(), 13);
        assert_eq!(dtd.attlists.len(), 4);
        assert_eq!(dtd.entities.len(), 1);
    }

    #[test]
    fn article_content_model_shape() {
        let dtd = Dtd::parse(ARTICLE_DTD).unwrap();
        let article = dtd.element("article").unwrap();
        match &article.content {
            ContentModel::Model(ContentExpr::Seq(items)) => {
                assert_eq!(items.len(), 6);
                assert_eq!(items[0], ContentExpr::Ref("title".to_string()));
                assert_eq!(
                    items[1],
                    ContentExpr::Occur(
                        Box::new(ContentExpr::Ref("author".to_string())),
                        Occurrence::Plus
                    )
                );
            }
            other => panic!("unexpected model: {other:?}"),
        }
    }

    #[test]
    fn section_model_is_choice_of_groups() {
        let dtd = Dtd::parse(ARTICLE_DTD).unwrap();
        let section = dtd.element("section").unwrap();
        match &section.content {
            ContentModel::Model(ContentExpr::Choice(alts)) => {
                assert_eq!(alts.len(), 2);
                assert!(matches!(alts[0], ContentExpr::Seq(_)));
                assert!(matches!(alts[1], ContentExpr::Seq(_)));
            }
            other => panic!("unexpected model: {other:?}"),
        }
    }

    #[test]
    fn minimization_parsed() {
        let dtd = Dtd::parse(ARTICLE_DTD).unwrap();
        assert!(!dtd.element("article").unwrap().minimization.end_omissible);
        assert!(dtd.element("title").unwrap().minimization.end_omissible);
        assert!(!dtd.element("title").unwrap().minimization.start_omissible);
        let caption = dtd.element("caption").unwrap();
        assert!(caption.minimization.start_omissible);
        assert!(caption.minimization.end_omissible);
    }

    #[test]
    fn attributes_parsed() {
        let dtd = Dtd::parse(ARTICLE_DTD).unwrap();
        let atts = dtd.attributes_of("article");
        assert_eq!(atts.len(), 1);
        assert_eq!(atts[0].name, "status");
        assert_eq!(
            atts[0].ty,
            AttType::Enumerated(vec!["final".to_string(), "draft".to_string()])
        );
        assert_eq!(atts[0].default, AttDefault::Value("draft".to_string()));

        let picture = dtd.attributes_of("picture");
        assert_eq!(picture.len(), 3);
        assert_eq!(picture[0].default, AttDefault::Value("16cm".to_string()));
        assert_eq!(picture[1].default, AttDefault::Implied);
        assert_eq!(picture[2].ty, AttType::Entity);

        let paragr = dtd.attributes_of("paragr");
        assert_eq!(paragr[0].ty, AttType::Idref);
        assert_eq!(paragr[0].default, AttDefault::Required);
    }

    #[test]
    fn entity_parsed() {
        let dtd = Dtd::parse(ARTICLE_DTD).unwrap();
        match dtd.entity("fig1").unwrap() {
            EntityDecl::External {
                system_id,
                notation,
                ..
            } => {
                assert_eq!(system_id, "/u/christop/SGML/image1");
                assert!(notation.is_none());
            }
            other => panic!("unexpected entity: {other:?}"),
        }
    }

    #[test]
    fn empty_and_pcdata_models() {
        let dtd = Dtd::parse(ARTICLE_DTD).unwrap();
        assert_eq!(dtd.element("picture").unwrap().content, ContentModel::Empty);
        assert_eq!(dtd.element("title").unwrap().content, ContentModel::Pcdata);
    }

    #[test]
    fn display_round_trips() {
        let dtd = Dtd::parse(ARTICLE_DTD).unwrap();
        let emitted = dtd.to_string();
        let reparsed = Dtd::parse(&emitted).unwrap();
        assert_eq!(reparsed.doctype, dtd.doctype);
        assert_eq!(reparsed.elements, dtd.elements);
        assert_eq!(reparsed.attlists, dtd.attlists);
        assert_eq!(reparsed.entities, dtd.entities);
    }

    #[test]
    fn duplicate_element_rejected() {
        let r = Dtd::parse("<!ELEMENT a - - (#PCDATA)>\n<!ELEMENT a - - (#PCDATA)>");
        assert!(matches!(
            r.unwrap_err().kind,
            ErrorKind::DuplicateElement(_)
        ));
    }

    #[test]
    fn attlist_for_unknown_element_rejected() {
        let r = Dtd::parse("<!ELEMENT a - - (#PCDATA)>\n<!ATTLIST b x CDATA #IMPLIED>");
        assert!(matches!(
            r.unwrap_err().kind,
            ErrorKind::AttlistForUnknownElement(_)
        ));
    }

    #[test]
    fn mixed_connectors_rejected() {
        let r = Dtd::parse("<!ELEMENT a - - (b, c | d)>");
        assert!(r.is_err());
    }

    #[test]
    fn and_connector_parsed() {
        let dtd = Dtd::parse("<!ELEMENT pre - - (to & from)>\n<!ELEMENT to - O (#PCDATA)>\n<!ELEMENT from - O (#PCDATA)>").unwrap();
        match &dtd.element("pre").unwrap().content {
            ContentModel::Model(ContentExpr::And(items)) => assert_eq!(items.len(), 2),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn name_group_declares_multiple_elements() {
        let dtd = Dtd::parse("<!ELEMENT (b | i) - - (#PCDATA)>").unwrap();
        assert!(dtd.element("b").is_some());
        assert!(dtd.element("i").is_some());
    }

    #[test]
    fn internal_entity_parsed() {
        let dtd = Dtd::parse("<!ELEMENT a - - (#PCDATA)>\n<!ENTITY inria \"I.N.R.I.A.\">").unwrap();
        match dtd.entity("inria").unwrap() {
            EntityDecl::Internal { text, .. } => assert_eq!(text, "I.N.R.I.A."),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn missing_minimization_defaults_to_required_tags() {
        let dtd = Dtd::parse("<!ELEMENT a (#PCDATA)>").unwrap();
        let e = dtd.element("a").unwrap();
        assert!(!e.minimization.start_omissible);
        assert!(!e.minimization.end_omissible);
    }
}
