//! Property tests for the SGML layer: content-model engines agree
//! (derivatives vs backtracking matcher), generated documents round-trip
//! through serialisation, and the parser is robust on mangled inputs.
//!
//! Originally written against an external property-testing library and
//! gated off; now running on the in-repo `docql-prop` harness.

use docql_prop::{check, element, one_of, prop_assert_eq, recursive, string_of, vec_of, zip, Gen};
use docql_sgml::content::{compile, expand_and, match_children, Label};
use docql_sgml::{ContentExpr, Occurrence};

const CASES: usize = 128;

const ELEMS: &[&str] = &["a", "b", "c"];

fn arb_expr() -> Gen<ContentExpr> {
    let leaf = element(
        ELEMS
            .iter()
            .map(|e| ContentExpr::Ref(e.to_string()))
            .collect(),
    );
    recursive(leaf, 3, |inner| {
        let occ = element(vec![Occurrence::Opt, Occurrence::Plus, Occurrence::Star]);
        one_of(vec![
            vec_of(inner.clone(), 1..3).map(|es| ContentExpr::Seq(es.clone())),
            vec_of(inner.clone(), 1..3).map(|es| ContentExpr::Choice(es.clone())),
            vec_of(inner.clone(), 2..3).map(|es| ContentExpr::And(es.clone())),
            zip(inner.clone(), occ).map(|(e, o)| ContentExpr::Occur(Box::new(e.clone()), *o)),
        ])
    })
}

fn arb_labels() -> Gen<Vec<Label>> {
    vec_of(
        element(ELEMS.iter().map(|e| Label::Elem(e.to_string())).collect()),
        0..6,
    )
}

#[test]
fn derivative_and_matcher_agree() {
    check(
        "derivative_and_matcher_agree",
        CASES,
        &zip(arb_expr(), arb_labels()),
        |(expr, labels)| {
            let expanded = expand_and(expr).unwrap();
            // Derivative acceptance.
            let rx = compile(&docql_sgml::ContentModel::Model(expr.clone()), &[]).unwrap();
            let mut state = rx;
            let mut rejected = false;
            for l in labels {
                let next = state.derive(l);
                if next.is_fail() {
                    rejected = true;
                    break;
                }
                state = next;
            }
            let deriv_accepts = !rejected && state.nullable();
            // Backtracking matcher.
            let match_accepts = match_children(&expanded, labels).is_some();
            prop_assert_eq!(
                deriv_accepts,
                match_accepts,
                "engines disagree on {labels:?} for {expr:?}"
            );
            Ok(())
        },
    );
}

#[test]
fn match_tree_covers_all_children_in_order() {
    check(
        "match_tree_covers_all_children_in_order",
        CASES,
        &zip(arb_expr(), arb_labels()),
        |(expr, labels)| {
            let expanded = expand_and(expr).unwrap();
            if let Some(tree) = match_children(&expanded, labels) {
                let mut idx = Vec::new();
                tree.child_indices(&mut idx);
                prop_assert_eq!(idx, (0..labels.len()).collect::<Vec<_>>());
            }
            Ok(())
        },
    );
}

#[test]
fn parser_never_panics_on_mangled_dtd() {
    let charset = "<>!ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz(),|&?+* -[]\"#";
    check(
        "parser_never_panics_on_mangled_dtd",
        CASES,
        &string_of(charset, 0, 80),
        |src| {
            let _ = docql_sgml::Dtd::parse(src);
            Ok(())
        },
    );
}

#[test]
fn doc_parser_never_panics_on_mangled_input() {
    check(
        "doc_parser_never_panics_on_mangled_input",
        CASES,
        &string_of("<>/abcdefghijklmnopqrstuvwxyz \"=", 0, 60),
        |src| {
            let dtd = docql_sgml::Dtd::parse(
                "<!DOCTYPE a [ <!ELEMENT a - - (b*)> <!ELEMENT b - O (#PCDATA)> ]>",
            )
            .unwrap();
            let parser = docql_sgml::DocParser::new(&dtd).unwrap();
            let _ = parser.parse(src);
            Ok(())
        },
    );
}

mod corpus_round_trip {
    use docql_corpus::{generate_article, generate_letter, ArticleParams, LetterParams};
    use docql_prop::{bool_any, check, prop_assert, prop_assert_eq, usize_in, zip, zip3};
    use docql_sgml::{validate, DocParser, Dtd};

    const CASES: usize = 24;

    #[test]
    fn article_serialisation_round_trips() {
        check(
            "article_serialisation_round_trips",
            CASES,
            &zip3(usize_in(0..1000), usize_in(1..8), usize_in(0..3)),
            |(seed, sections, subsections)| {
                let dtd = Dtd::parse(docql_sgml::fixtures::ARTICLE_DTD).unwrap();
                let parser = DocParser::new(&dtd).unwrap();
                let doc = generate_article(&ArticleParams {
                    seed: *seed as u64,
                    sections: *sections,
                    subsections: *subsections,
                    ..ArticleParams::default()
                });
                prop_assert!(validate(&doc, &dtd).is_empty());
                let text = doc.to_sgml();
                let reparsed = parser.parse(&text).unwrap();
                prop_assert!(validate(&reparsed, &dtd).is_empty());
                // Structure is preserved exactly (text normalisation aside).
                prop_assert_eq!(reparsed.root.subtree_size(), doc.root.subtree_size());
                prop_assert_eq!(reparsed.root.text_content(), doc.root.text_content());
                Ok(())
            },
        );
    }

    #[test]
    fn letter_serialisation_round_trips() {
        check(
            "letter_serialisation_round_trips",
            CASES,
            &zip(usize_in(0..1000), bool_any()),
            |(seed, sender_first)| {
                let dtd = Dtd::parse(docql_sgml::fixtures::LETTER_DTD).unwrap();
                let parser = DocParser::new(&dtd).unwrap();
                let doc = generate_letter(&LetterParams {
                    seed: *seed as u64,
                    sender_first: Some(*sender_first),
                    paras: 2,
                });
                let reparsed = parser.parse(&doc.to_sgml()).unwrap();
                prop_assert_eq!(&reparsed, &doc);
                Ok(())
            },
        );
    }
}
