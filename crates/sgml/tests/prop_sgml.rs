// Property-based suite, disabled while the build is offline: `proptest`
// cannot be fetched in this container, so the whole file is compiled out
// (`cfg(any())` is never true). Re-enable by removing this gate and
// restoring the `proptest` dev-dependency.
#![cfg(any())]

//! Property tests for the SGML layer: content-model engines agree
//! (derivatives vs backtracking matcher), generated documents round-trip
//! through serialisation, and the parser is robust on mangled inputs.

use docql_sgml::content::{compile, expand_and, match_children, Label};
use docql_sgml::{ContentExpr, Occurrence};
use proptest::prelude::*;

const ELEMS: &[&str] = &["a", "b", "c"];

fn arb_expr() -> impl Strategy<Value = ContentExpr> {
    let leaf = prop_oneof![(0..ELEMS.len()).prop_map(|i| ContentExpr::Ref(ELEMS[i].to_string())),];
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(ContentExpr::Seq),
            prop::collection::vec(inner.clone(), 1..3).prop_map(ContentExpr::Choice),
            prop::collection::vec(inner.clone(), 2..3).prop_map(ContentExpr::And),
            (
                inner.clone(),
                prop_oneof![
                    Just(Occurrence::Opt),
                    Just(Occurrence::Plus),
                    Just(Occurrence::Star)
                ]
            )
                .prop_map(|(e, o)| ContentExpr::Occur(Box::new(e), o)),
        ]
    })
}

fn arb_labels() -> impl Strategy<Value = Vec<Label>> {
    prop::collection::vec(
        (0..ELEMS.len()).prop_map(|i| Label::Elem(ELEMS[i].to_string())),
        0..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn derivative_and_matcher_agree(expr in arb_expr(), labels in arb_labels()) {
        let expanded = expand_and(&expr).unwrap();
        // Derivative acceptance.
        let rx = compile(
            &docql_sgml::ContentModel::Model(expr.clone()),
            &[],
        ).unwrap();
        let mut state = rx;
        let mut rejected = false;
        for l in &labels {
            let next = state.derive(l);
            if next.is_fail() {
                rejected = true;
                break;
            }
            state = next;
        }
        let deriv_accepts = !rejected && state.nullable();
        // Backtracking matcher.
        let match_accepts = match_children(&expanded, &labels).is_some();
        prop_assert_eq!(deriv_accepts, match_accepts,
            "engines disagree on {:?} for {:?}", labels, expr);
    }

    #[test]
    fn match_tree_covers_all_children_in_order(expr in arb_expr(), labels in arb_labels()) {
        let expanded = expand_and(&expr).unwrap();
        if let Some(tree) = match_children(&expanded, &labels) {
            let mut idx = Vec::new();
            tree.child_indices(&mut idx);
            prop_assert_eq!(idx, (0..labels.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parser_never_panics_on_mangled_dtd(src in "[<>!A-Za-z(),|&?+* \\-\\[\\]\"#]{0,80}") {
        let _ = docql_sgml::Dtd::parse(&src);
    }

    #[test]
    fn doc_parser_never_panics_on_mangled_input(src in "[<>/a-z \"=]{0,60}") {
        let dtd = docql_sgml::Dtd::parse(
            "<!DOCTYPE a [ <!ELEMENT a - - (b*)> <!ELEMENT b - O (#PCDATA)> ]>",
        ).unwrap();
        let parser = docql_sgml::DocParser::new(&dtd).unwrap();
        let _ = parser.parse(&src);
    }
}

mod corpus_round_trip {
    use docql_corpus::{generate_article, generate_letter, ArticleParams, LetterParams};
    use docql_sgml::{validate, DocParser, Dtd};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn article_serialisation_round_trips(
            seed in 0u64..1000,
            sections in 1usize..8,
            subsections in 0usize..3,
        ) {
            let dtd = Dtd::parse(docql_sgml::fixtures::ARTICLE_DTD).unwrap();
            let parser = DocParser::new(&dtd).unwrap();
            let doc = generate_article(&ArticleParams {
                seed,
                sections,
                subsections,
                ..ArticleParams::default()
            });
            prop_assert!(validate(&doc, &dtd).is_empty());
            let text = doc.to_sgml();
            let reparsed = parser.parse(&text).unwrap();
            prop_assert!(validate(&reparsed, &dtd).is_empty());
            // Structure is preserved exactly (text normalisation aside).
            prop_assert_eq!(
                reparsed.root.subtree_size(),
                doc.root.subtree_size()
            );
            prop_assert_eq!(
                reparsed.root.text_content(),
                doc.root.text_content()
            );
        }

        #[test]
        fn letter_serialisation_round_trips(seed in 0u64..1000, sender_first in any::<bool>()) {
            let dtd = Dtd::parse(docql_sgml::fixtures::LETTER_DTD).unwrap();
            let parser = DocParser::new(&dtd).unwrap();
            let doc = generate_letter(&LetterParams {
                seed,
                sender_first: Some(sender_first),
                paras: 2,
            });
            let reparsed = parser.parse(&doc.to_sgml()).unwrap();
            prop_assert_eq!(&reparsed, &doc);
        }
    }
}
