//! Durable storage for docql: a checksummed write-ahead log, snapshot
//! segments, and crash recovery — all std-only, no external dependencies.
//!
//! The durability contract (wired up by `docql-store`'s `PersistentStore`):
//!
//! 1. Every committed write (document ingest, root binding) is appended to
//!    the WAL ([`wal`]) and fsynced *before* the new store version is
//!    published to readers — write-ahead in the classical sense.
//! 2. `checkpoint()` captures the current MVCC snapshot as a
//!    [`StoreImage`], writes it as an immutable segment file ([`snapshot`])
//!    with tmp → fsync → rename discipline, and only then truncates the
//!    log.
//! 3. Recovery loads the newest segment that passes its checksum (corrupt
//!    ones are skipped, never partially applied), then replays the WAL's
//!    valid prefix past the segment's applied seqno. A damaged log tail is
//!    detected by checksum and cleanly truncated — a partially written
//!    record is as if it never happened.
//!
//! Every byte read back from disk is covered by a CRC-32 ([`crc32()`]) and
//! decoded through bounds-checked readers ([`codec`]), so torn writes,
//! truncation, and bit flips yield errors or clean truncation — never
//! panics, never silently wrong data. Crash shapes themselves are testable:
//! `docql-guard`'s seeded [`IoFaultStream`](docql_guard::IoFaultStream)
//! plugs into the WAL and injects short writes, torn tails, and flipped
//! bytes at record boundaries.

#![warn(missing_docs)]

pub mod codec;
pub mod crc32;
pub mod snapshot;
pub mod tempdir;
pub mod wal;

pub use codec::{CodecError, Reader, Writer};
pub use crc32::crc32;
pub use snapshot::{
    decode_segment, encode_segment, gc_segments, list_segments, load_newest_valid,
    parse_segment_name, read_meta, read_segment, segment_file_name, write_meta, write_segment,
    SegmentError, StoreImage, META_FILE,
};
pub use tempdir::TempDir;
pub use wal::{
    encode_frame, scan, AppendReceipt, Wal, WalError, WalOp, WalRecord, WalScan, WAL_FILE,
};

use docql_obs::{Counter, Gauge, Histogram, SharedRegistry};

/// Pre-resolved handles for the persistence metrics, registered once
/// against a store's [`SharedRegistry`]. Recording is caller-gated on
/// [`DurableMetrics::enabled`] like the other docql metric families.
#[derive(Debug, Clone)]
pub struct DurableMetrics {
    /// `docql_durable_wal_appends_total` — committed WAL records.
    pub wal_appends: Counter,
    /// `docql_durable_wal_bytes_total` — committed WAL bytes.
    pub wal_bytes: Counter,
    /// `docql_durable_wal_append_ns` — `write_all` wall time per record.
    pub wal_append_ns: Histogram,
    /// `docql_durable_wal_fsync_ns` — `sync_data` wall time per record
    /// (the durability point; its percentiles are the commit-latency
    /// floor).
    pub wal_fsync_ns: Histogram,
    /// `docql_durable_recovery_ns` — wall time of a full recovery (segment
    /// load plus WAL replay).
    pub recovery_ns: Histogram,
    /// `docql_durable_checkpoints_total` — completed checkpoints.
    pub checkpoints: Counter,
    /// `docql_durable_checkpoint_ns` — checkpoint wall time, nanoseconds.
    pub checkpoint_ns: Histogram,
    /// `docql_durable_recovery_replayed_records_total` — WAL records
    /// replayed during recovery.
    pub recovery_replayed_records: Counter,
    /// `docql_durable_recovery_truncated_bytes_total` — damaged tail bytes
    /// truncated during recovery.
    pub recovery_truncated_bytes: Counter,
    /// `docql_durable_segment_bytes` — size of the newest segment.
    pub segment_bytes: Gauge,
    /// `docql_durable_segments_removed_total` — old checkpoint segments
    /// collected by GC after a checkpoint.
    pub segments_removed: Counter,
    registry: SharedRegistry,
}

impl DurableMetrics {
    /// Resolve the persistence metric handles against `registry`.
    pub fn register(registry: &SharedRegistry) -> DurableMetrics {
        DurableMetrics {
            wal_appends: registry.counter("docql_durable_wal_appends_total"),
            wal_bytes: registry.counter("docql_durable_wal_bytes_total"),
            wal_append_ns: registry.histogram("docql_durable_wal_append_ns"),
            wal_fsync_ns: registry.histogram("docql_durable_wal_fsync_ns"),
            recovery_ns: registry.histogram("docql_durable_recovery_ns"),
            checkpoints: registry.counter("docql_durable_checkpoints_total"),
            checkpoint_ns: registry.histogram("docql_durable_checkpoint_ns"),
            recovery_replayed_records: registry
                .counter("docql_durable_recovery_replayed_records_total"),
            recovery_truncated_bytes: registry
                .counter("docql_durable_recovery_truncated_bytes_total"),
            segment_bytes: registry.gauge("docql_durable_segment_bytes"),
            segments_removed: registry.counter("docql_durable_segments_removed_total"),
            registry: registry.clone(),
        }
    }

    /// Is the backing registry recording?
    pub fn enabled(&self) -> bool {
        self.registry.enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use docql_obs::MetricsRegistry;
    use std::sync::Arc;

    #[test]
    fn metrics_register_and_record() {
        let registry: SharedRegistry = Arc::new(MetricsRegistry::new());
        registry.set_enabled(true);
        let m = DurableMetrics::register(&registry);
        assert!(m.enabled());
        m.wal_appends.inc();
        m.wal_bytes.add(128);
        m.segment_bytes.set(4096);
        assert_eq!(m.wal_appends.get(), 1);
        assert_eq!(m.wal_bytes.get(), 128);
    }
}
