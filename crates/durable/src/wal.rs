//! The checksummed, length-prefixed write-ahead log.
//!
//! One record per committed write (a document ingest or a root binding).
//! The on-disk frame is
//!
//! ```text
//! [len: u32][crc: u32][payload: len bytes]
//! payload = [seqno: u64][tag: u8][body]
//! ```
//!
//! with `crc = crc32(payload)`. Appends are `write_all` + `fsync`, so a
//! record is *committed* exactly when its fsync returns. Recovery scans the
//! file front to back, accepting frames while the length fits, the
//! checksum verifies, the payload decodes, and sequence numbers ascend; the
//! first violation ends the valid prefix and everything after it —
//! a torn tail, a short write, bit rot — is truncated away, never loaded.
//!
//! Fault injection: a seeded [`IoFaultStream`] (from `docql-guard`) can be
//! attached, and each append then draws a fault decision at the record
//! boundary. An injected fault writes the *damaged* bytes a crash would
//! have left (short prefix, torn tail, flipped byte), marks the log
//! crashed, and returns an error — the handle refuses further appends and
//! the only way forward is to reopen, exactly like a process restart.

use crate::codec::{CodecError, Reader, Writer};
use crate::crc32::crc32;
use docql_guard::{IoFault, IoFaultStream};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// File name of the log inside a store directory.
pub const WAL_FILE: &str = "wal.log";

/// A frame longer than this is treated as corruption, not a record — it
/// bounds what a garbage length field can make the scanner swallow.
const MAX_FRAME_PAYLOAD: u32 = 1 << 30;

/// One logged operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// A document ingest, carrying the validated SGML source text (replay
    /// re-parses it — parse determinism gives identical objects and oids).
    Ingest {
        /// The document's SGML text.
        sgml: String,
    },
    /// A named-root binding to a document object.
    Bind {
        /// The root-of-persistence name.
        name: String,
        /// The bound object id (`Oid.0`).
        oid: u32,
    },
}

const TAG_INGEST: u8 = 1;
const TAG_BIND: u8 = 2;

/// A decoded log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Monotone sequence number (1-based; segments record the highest
    /// applied seqno, so replay starts just past it).
    pub seqno: u64,
    /// The logged operation.
    pub op: WalOp,
}

/// What a successful [`Wal::append`] committed: the record, its on-disk
/// frame length, and the split write/fsync wall times (the fsync is where
/// commit latency lives; callers feed both into histograms and traces).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppendReceipt {
    /// The committed record (seqno assigned by this append).
    pub record: WalRecord,
    /// On-disk frame length in bytes.
    pub frame_len: u64,
    /// Nanoseconds spent in `write_all`.
    pub write_ns: u64,
    /// Nanoseconds spent in `sync_data` (the durability point).
    pub fsync_ns: u64,
}

fn saturating_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Encode one record as its on-disk frame.
pub fn encode_frame(record: &WalRecord) -> Vec<u8> {
    let mut payload = Writer::new();
    payload.u64(record.seqno);
    match &record.op {
        WalOp::Ingest { sgml } => {
            payload.u8(TAG_INGEST);
            payload.str(sgml);
        }
        WalOp::Bind { name, oid } => {
            payload.u8(TAG_BIND);
            payload.str(name);
            payload.u32(*oid);
        }
    }
    let payload = payload.into_bytes();
    let mut frame = Writer::new();
    frame.u32(payload.len() as u32);
    frame.u32(crc32(&payload));
    let mut bytes = frame.into_bytes();
    bytes.extend_from_slice(&payload);
    bytes
}

fn decode_payload(payload: &[u8]) -> Result<WalRecord, CodecError> {
    let mut r = Reader::new(payload);
    let seqno = r.u64()?;
    let op = match r.u8()? {
        TAG_INGEST => WalOp::Ingest {
            sgml: r.str()?.to_string(),
        },
        TAG_BIND => WalOp::Bind {
            name: r.str()?.to_string(),
            oid: r.u32()?,
        },
        tag => {
            return Err(CodecError::BadTag {
                what: "wal op",
                tag,
            })
        }
    };
    r.finish()?;
    Ok(WalRecord { seqno, op })
}

/// The result of scanning a log image: the records of the valid prefix and
/// how much trailing damage (if any) was cut away.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScan {
    /// Records of the valid prefix, in order.
    pub records: Vec<WalRecord>,
    /// Length in bytes of the valid prefix.
    pub valid_len: u64,
    /// Bytes past the valid prefix (0 for a clean log).
    pub truncated_bytes: u64,
}

/// Scan a log image, accepting the longest valid prefix. Never fails:
/// damage ends the prefix and is reported as `truncated_bytes`.
pub fn scan(buf: &[u8]) -> WalScan {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut last_seqno = 0u64;
    loop {
        let rest = &buf[pos..];
        if rest.len() < 8 {
            break;
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len > MAX_FRAME_PAYLOAD || rest.len() - 8 < len as usize {
            break;
        }
        let payload = &rest[8..8 + len as usize];
        if crc32(payload) != crc {
            break;
        }
        let Ok(record) = decode_payload(payload) else {
            break;
        };
        if record.seqno <= last_seqno {
            break;
        }
        last_seqno = record.seqno;
        records.push(record);
        pos += 8 + len as usize;
    }
    WalScan {
        records,
        valid_len: pos as u64,
        truncated_bytes: (buf.len() - pos) as u64,
    }
}

/// Why an append failed.
#[derive(Debug)]
pub enum WalError {
    /// The underlying file operation failed.
    Io(io::Error),
    /// The attached fault stream injected a simulated crash; the damaged
    /// bytes are on disk and this handle is dead (see [`WalError::Crashed`]).
    InjectedFault(IoFault),
    /// A previous append crashed (injected or real); the handle refuses
    /// further writes — reopen the log to recover.
    Crashed,
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io: {e}"),
            WalError::InjectedFault(fault) => write!(f, "injected wal fault: {fault}"),
            WalError::Crashed => f.write_str("wal crashed; reopen to recover"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> WalError {
        WalError::Io(e)
    }
}

/// An open write-ahead log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    next_seqno: u64,
    len: u64,
    crashed: bool,
    faults: Option<IoFaultStream>,
}

impl Wal {
    /// Open (creating if absent) the log at `path`, scan it, and truncate
    /// any damaged tail so the file holds exactly the valid prefix.
    pub fn open(path: &Path) -> io::Result<(Wal, WalScan)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        let scanned = scan(&buf);
        if scanned.truncated_bytes > 0 {
            file.set_len(scanned.valid_len)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(scanned.valid_len))?;
        let next_seqno = scanned.records.last().map_or(1, |r| r.seqno + 1);
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                next_seqno,
                len: scanned.valid_len,
                crashed: false,
                faults: None,
            },
            scanned,
        ))
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes of committed log.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// The seqno the next append will carry.
    pub fn next_seqno(&self) -> u64 {
        self.next_seqno
    }

    /// Continue numbering past `n - 1` (recovery sets this when a snapshot
    /// segment has applied records beyond what the log holds).
    pub fn set_next_seqno(&mut self, n: u64) {
        self.next_seqno = self.next_seqno.max(n);
    }

    /// Attach (or clear) a seeded I/O fault stream; each subsequent append
    /// draws one fault decision at its record boundary.
    pub fn set_fault_stream(&mut self, faults: Option<IoFaultStream>) {
        self.faults = faults;
    }

    /// Has an append crashed this handle?
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Append one operation: encode, (maybe) injected-fault, `write_all`,
    /// `fsync`. On success the record is durable and the receipt carries
    /// its frame length plus the split write/fsync wall times (for metrics
    /// and query traces); on failure the handle is crashed — state on disk
    /// is whatever the simulated or real crash left, and recovery via
    /// [`Wal::open`] restores the committed prefix.
    pub fn append(&mut self, op: WalOp) -> Result<AppendReceipt, WalError> {
        if self.crashed {
            return Err(WalError::Crashed);
        }
        let record = WalRecord {
            seqno: self.next_seqno,
            op,
        };
        let frame = encode_frame(&record);
        if let Some(fault) = self.faults.as_ref().and_then(|f| f.draw()) {
            let salt = self.faults.as_ref().map_or(0, |f| f.entropy());
            let damaged = damage(&frame, fault, salt);
            self.crashed = true;
            // Best-effort: land the damage like a crash would, then report.
            let _ = self.file.write_all(&damaged);
            let _ = self.file.sync_data();
            return Err(WalError::InjectedFault(fault));
        }
        let t0 = Instant::now();
        if let Err(e) = self.file.write_all(&frame) {
            self.crashed = true;
            return Err(WalError::Io(e));
        }
        let t1 = Instant::now();
        if let Err(e) = self.file.sync_data() {
            self.crashed = true;
            return Err(WalError::Io(e));
        }
        let fsync_ns = saturating_ns(t1.elapsed());
        let frame_len = frame.len() as u64;
        self.len += frame_len;
        self.next_seqno += 1;
        Ok(AppendReceipt {
            record,
            frame_len,
            write_ns: saturating_ns(t1.duration_since(t0)),
            fsync_ns,
        })
    }

    /// Drop every record (the post-checkpoint step: the snapshot segment
    /// now carries everything the log held). Sequence numbering continues.
    pub fn truncate(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_data()?;
        self.len = 0;
        Ok(())
    }
}

/// The bytes a crash of shape `fault` leaves on disk instead of `frame`.
fn damage(frame: &[u8], fault: IoFault, salt: u64) -> Vec<u8> {
    match fault {
        IoFault::ShortWrite => {
            // Somewhere strictly inside the frame, header included.
            let cut = 1 + (salt as usize) % (frame.len() - 1);
            frame[..cut].to_vec()
        }
        IoFault::TornTail => {
            // A partial frame followed by stale sector garbage.
            let cut = 1 + (salt as usize) % (frame.len() - 1);
            let mut bytes = frame[..cut].to_vec();
            let garbage_len = 1 + (salt >> 32) as usize % 24;
            let mut g = salt | 1;
            for _ in 0..garbage_len {
                g = g.wrapping_mul(0x94D0_49BB_1331_11EB).rotate_left(17);
                bytes.push((g >> 24) as u8);
            }
            bytes
        }
        IoFault::FlipByte => {
            let mut bytes = frame.to_vec();
            let at = (salt as usize) % bytes.len();
            let bit = 1u8 << ((salt >> 48) % 8);
            bytes[at] ^= bit;
            bytes
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    fn records(n: u64) -> Vec<WalRecord> {
        (1..=n)
            .map(|seqno| WalRecord {
                seqno,
                op: if seqno % 3 == 0 {
                    WalOp::Bind {
                        name: format!("root{seqno}"),
                        oid: seqno as u32,
                    }
                } else {
                    WalOp::Ingest {
                        sgml: format!("<doc>{seqno}</doc>"),
                    }
                },
            })
            .collect()
    }

    #[test]
    fn scan_round_trips_clean_log() {
        let recs = records(5);
        let mut buf = Vec::new();
        for r in &recs {
            buf.extend_from_slice(&encode_frame(r));
        }
        let s = scan(&buf);
        assert_eq!(s.records, recs);
        assert_eq!(s.valid_len, buf.len() as u64);
        assert_eq!(s.truncated_bytes, 0);
    }

    #[test]
    fn scan_truncates_any_single_byte_flip_to_a_prefix() {
        let recs = records(4);
        let mut buf = Vec::new();
        let mut boundaries = vec![0usize];
        for r in &recs {
            buf.extend_from_slice(&encode_frame(r));
            boundaries.push(buf.len());
        }
        for at in 0..buf.len() {
            let mut damaged = buf.clone();
            damaged[at] ^= 0x10;
            let s = scan(&damaged);
            // The flip lands inside some record k; everything before k
            // survives, nothing at or after it does.
            let k = boundaries.iter().position(|&b| at < b).unwrap() - 1;
            assert_eq!(s.records, recs[..k], "flip at byte {at}");
            assert_eq!(s.valid_len, boundaries[k] as u64);
            assert!(s.truncated_bytes > 0);
        }
    }

    #[test]
    fn scan_stops_on_non_monotone_seqno() {
        let a = encode_frame(&WalRecord {
            seqno: 1,
            op: WalOp::Ingest { sgml: "x".into() },
        });
        let mut buf = a.clone();
        buf.extend_from_slice(&a); // replayed frame: seqno 1 again
        let s = scan(&buf);
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.truncated_bytes, a.len() as u64);
    }

    #[test]
    fn open_truncates_damage_and_appends_continue() {
        let dir = TempDir::new("docql-wal-test").unwrap();
        let path = dir.join(WAL_FILE);
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            for i in 0..3 {
                wal.append(WalOp::Ingest {
                    sgml: format!("<doc>{i}</doc>"),
                })
                .unwrap();
            }
        }
        // Torn tail: half a frame of garbage after the good records.
        let mut bytes = std::fs::read(&path).unwrap();
        let clean = bytes.len();
        bytes.extend_from_slice(&[0xAB; 7]);
        std::fs::write(&path, &bytes).unwrap();

        let (mut wal, scanned) = Wal::open(&path).unwrap();
        assert_eq!(scanned.records.len(), 3);
        assert_eq!(scanned.valid_len, clean as u64);
        assert_eq!(scanned.truncated_bytes, 7);
        assert_eq!(wal.next_seqno(), 4);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean as u64);

        let receipt = wal
            .append(WalOp::Bind {
                name: "my_article".into(),
                oid: 9,
            })
            .unwrap();
        assert_eq!(receipt.record.seqno, 4);
        assert!(receipt.frame_len > 0);
        let (_, rescan) = Wal::open(&path).unwrap();
        assert_eq!(rescan.records.len(), 4);
    }

    #[test]
    fn injected_fault_crashes_handle_and_recovery_drops_the_record() {
        let dir = TempDir::new("docql-wal-test").unwrap();
        let path = dir.join(WAL_FILE);
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(WalOp::Ingest {
            sgml: "<doc>ok</doc>".into(),
        })
        .unwrap();
        // A stream whose first draw always faults: probe seeds.
        let mut seed = 0u64;
        let fault = loop {
            let s = IoFaultStream::new(seed);
            if let Some(f) = s.draw() {
                break f;
            }
            seed += 1;
        };
        wal.set_fault_stream(Some(IoFaultStream::new(seed)));
        let err = wal
            .append(WalOp::Ingest {
                sgml: "<doc>crashed</doc>".into(),
            })
            .unwrap_err();
        assert!(matches!(err, WalError::InjectedFault(f) if f == fault));
        assert!(wal.is_crashed());
        assert!(matches!(
            wal.append(WalOp::Ingest { sgml: "x".into() }).unwrap_err(),
            WalError::Crashed
        ));
        // Reopen: only the committed record survives.
        let (_, scanned) = Wal::open(&path).unwrap();
        assert_eq!(scanned.records.len(), 1);
        assert_eq!(
            scanned.records[0].op,
            WalOp::Ingest {
                sgml: "<doc>ok</doc>".into()
            }
        );
    }

    #[test]
    fn truncate_keeps_numbering() {
        let dir = TempDir::new("docql-wal-test").unwrap();
        let path = dir.join(WAL_FILE);
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(WalOp::Ingest { sgml: "a".into() }).unwrap();
        wal.append(WalOp::Ingest { sgml: "b".into() }).unwrap();
        wal.truncate().unwrap();
        assert_eq!(wal.len_bytes(), 0);
        let receipt = wal.append(WalOp::Ingest { sgml: "c".into() }).unwrap();
        assert_eq!(
            receipt.record.seqno, 3,
            "numbering continues across truncation"
        );
        let (_, scanned) = Wal::open(&path).unwrap();
        assert_eq!(scanned.records.len(), 1);
        assert_eq!(scanned.records[0].seqno, 3);
    }
}
