//! Std-only temporary directories for the durability test suites — the
//! workspace carries no `tempfile` dependency, and crash-recovery tests
//! create dozens of store directories per run, so cleanup must be
//! automatic. Uniqueness comes from SplitMix64 over (pid, wall clock,
//! process-wide counter); the directory is removed on drop, best-effort.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::{env, fs, io};

/// A uniquely named directory under [`std::env::temp_dir`], deleted
/// (recursively, best-effort) when the value drops.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create `<tmp>/<prefix>-<unique>`. The name is drawn from a seeded
    /// SplitMix64 stream, retried on collision.
    pub fn new(prefix: &str) -> io::Result<TempDir> {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0);
        let mut state = u64::from(std::process::id()).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ nanos
            ^ COUNTER
                .fetch_add(1, Ordering::Relaxed)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        for _ in 0..64 {
            let tag = splitmix64(&mut state);
            let path = env::temp_dir().join(format!("{prefix}-{tag:016x}"));
            match fs::create_dir(&path) {
                Ok(()) => return Ok(TempDir { path }),
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e),
            }
        }
        Err(io::Error::new(
            io::ErrorKind::AlreadyExists,
            "temp dir name space exhausted",
        ))
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A path inside the directory.
    pub fn join(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

/// SplitMix64 — same constants and stream as `docql-corpus`/`docql-prop`/
/// `docql-guard`, vendored so this crate stays dependency-light.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_unique_dirs_and_cleans_up() {
        let a = TempDir::new("docql-durable-test").unwrap();
        let b = TempDir::new("docql-durable-test").unwrap();
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        fs::write(a.join("f.bin"), b"data").unwrap();
        fs::create_dir(a.join("sub")).unwrap();
        let kept = a.path().to_path_buf();
        drop(a);
        assert!(!kept.exists(), "drop removes the tree");
        assert!(b.path().is_dir(), "sibling untouched");
    }
}
