//! Snapshot segments: one immutable, checksummed file per checkpoint,
//! holding the complete materialized store — object slots, roots, document
//! list, flat text table, text-index postings, and path-extent targets —
//! in a flat, section-directed layout that loads with a single sequential
//! read and no SGML re-parsing.
//!
//! File layout:
//!
//! ```text
//! [magic: b"DQSEG001"][crc: u32][payload_len: u64][payload]
//! payload = [nsections: u32]
//!           [directory: nsections × (id: u32, off: u64, len: u64)]
//!           [section bodies]
//! ```
//!
//! with `crc = crc32(payload)`, section offsets relative to payload start.
//! The directory makes the format skippable (a reader ignores section ids
//! it does not know) and mmap-friendly: every section is a contiguous,
//! independently decodable byte range.
//!
//! Symbols ([`Sym`]) are process-global intern handles and **not** stable
//! across restarts, so every encoded symbol goes through a per-segment
//! string table (section 2); decode re-interns by name.
//!
//! Segments are written with the tmp → fsync → rename → dir-fsync
//! discipline, so a crash mid-checkpoint leaves either no new segment or a
//! complete one — and a torn rename window is covered because the WAL is
//! truncated only *after* the rename lands. Corrupt segments are detected
//! by checksum at load and skipped in favour of the next-newest.

use crate::codec::{CodecError, Reader, Writer};
use crate::crc32::crc32;
use docql_model::{Oid, Sym, Value};
use docql_paths::ExtStep;
use std::collections::HashMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};

/// Segment file magic (8 bytes, format version 001).
pub const SEGMENT_MAGIC: &[u8; 8] = b"DQSEG001";
/// Store-meta file magic (8 bytes).
pub const META_MAGIC: &[u8; 8] = b"DQMETA01";
/// File name of the store meta (DTD text + declared extra roots).
pub const META_FILE: &str = "store.meta";

/// Nesting depth cap for decoded [`Value`]s — corrupt input that slips past
/// the checksum must not be able to blow the stack.
const MAX_VALUE_DEPTH: u32 = 256;

const SEC_META: u32 = 1;
const SEC_SYMTAB: u32 = 2;
const SEC_OBJECTS: u32 = 3;
const SEC_ROOTS: u32 = 4;
const SEC_DOCUMENTS: u32 = 5;
const SEC_TEXT: u32 = 6;
const SEC_POSTINGS: u32 = 7;
const SEC_DOCWORDS: u32 = 8;
const SEC_EXTENTS: u32 = 9;
const SEC_EXTENT_ROOTS: u32 = 10;

/// One term's posting list: `(doc id, word positions)` per document.
pub type TermPostings = Vec<(u64, Vec<u32>)>;

/// One path's extent: `(root oid, target values)` per indexed root.
pub type PathTargets = Vec<(u32, Vec<Value>)>;

/// A successfully loaded segment: `(applied seqno, image, byte size)`.
pub type LoadedSegment = (u64, StoreImage, u64);

/// The complete materialized state of a store, as captured by a checkpoint
/// and restored by recovery. Field order mirrors the section layout.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StoreImage {
    /// Highest WAL seqno whose effects this image contains.
    pub applied_seqno: u64,
    /// Object slots in oid order (`objects[i]` is oid `i`): class + value.
    pub objects: Vec<(Sym, Value)>,
    /// Named roots of persistence, sorted by name string.
    pub roots: Vec<(Sym, Value)>,
    /// Ingested document roots (`Oid.0`), in ingest order.
    pub documents: Vec<u32>,
    /// Flat document text by root oid, sorted by oid.
    pub text: Vec<(u32, String)>,
    /// Text-index postings: term → (doc id, positions), both levels sorted.
    pub postings: Vec<(String, TermPostings)>,
    /// Per-document word counts, sorted by doc id.
    pub doc_words: Vec<(u64, u32)>,
    /// Path-extent targets: path steps → (root oid, target values).
    pub extents: Vec<(Vec<ExtStep>, PathTargets)>,
    /// Roots the extent index has indexed (`Oid.0`), sorted.
    pub extent_roots: Vec<u32>,
}

/// Why a segment (or meta) file failed to load. Any of these means "do not
/// trust this file" — recovery skips it, never partially applies it.
#[derive(Debug)]
pub enum SegmentError {
    /// The underlying file operation failed.
    Io(io::Error),
    /// Wrong magic bytes — not a segment, or an unknown format version.
    BadMagic,
    /// Stated payload length disagrees with the file.
    BadLength,
    /// Payload checksum mismatch.
    Checksum,
    /// Payload decoded wrongly (should be unreachable behind a good
    /// checksum; indicates version skew or a software bug).
    Codec(CodecError),
}

impl fmt::Display for SegmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentError::Io(e) => write!(f, "segment io: {e}"),
            SegmentError::BadMagic => f.write_str("bad segment magic"),
            SegmentError::BadLength => f.write_str("segment length mismatch"),
            SegmentError::Checksum => f.write_str("segment checksum mismatch"),
            SegmentError::Codec(e) => write!(f, "segment payload: {e}"),
        }
    }
}

impl std::error::Error for SegmentError {}

impl From<io::Error> for SegmentError {
    fn from(e: io::Error) -> SegmentError {
        SegmentError::Io(e)
    }
}

impl From<CodecError> for SegmentError {
    fn from(e: CodecError) -> SegmentError {
        SegmentError::Codec(e)
    }
}

// ---------------------------------------------------------------------------
// Symbol table

#[derive(Default)]
struct SymEncoder {
    ids: HashMap<Sym, u32>,
    names: Vec<String>,
}

impl SymEncoder {
    fn id(&mut self, s: Sym) -> u32 {
        if let Some(&id) = self.ids.get(&s) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(s.as_str().to_string());
        self.ids.insert(s, id);
        id
    }

    fn encode(&self, w: &mut Writer) {
        w.count(self.names.len());
        for name in &self.names {
            w.str(name);
        }
    }
}

struct SymDecoder {
    syms: Vec<Sym>,
}

impl SymDecoder {
    fn decode(r: &mut Reader<'_>) -> Result<SymDecoder, CodecError> {
        let n = r.count(4)?;
        let mut syms = Vec::with_capacity(n);
        for _ in 0..n {
            syms.push(Sym::new(r.str()?));
        }
        Ok(SymDecoder { syms })
    }

    fn sym(&self, id: u32) -> Result<Sym, CodecError> {
        self.syms
            .get(id as usize)
            .copied()
            .ok_or(CodecError::Corrupt("symbol id out of table"))
    }
}

// ---------------------------------------------------------------------------
// Value / ExtStep codecs

const VAL_NIL: u8 = 0;
const VAL_INT: u8 = 1;
const VAL_FLOAT: u8 = 2;
const VAL_BOOL: u8 = 3;
const VAL_STR: u8 = 4;
const VAL_OID: u8 = 5;
const VAL_TUPLE: u8 = 6;
const VAL_UNION: u8 = 7;
const VAL_LIST: u8 = 8;
const VAL_SET: u8 = 9;

fn encode_value(w: &mut Writer, syms: &mut SymEncoder, v: &Value) {
    match v {
        Value::Nil => w.u8(VAL_NIL),
        Value::Int(i) => {
            w.u8(VAL_INT);
            w.i64(*i);
        }
        Value::Float(x) => {
            w.u8(VAL_FLOAT);
            w.f64(*x);
        }
        Value::Bool(b) => {
            w.u8(VAL_BOOL);
            w.u8(u8::from(*b));
        }
        Value::Str(s) => {
            w.u8(VAL_STR);
            w.str(s);
        }
        Value::Oid(o) => {
            w.u8(VAL_OID);
            w.u32(o.0);
        }
        Value::Tuple(fields) => {
            w.u8(VAL_TUPLE);
            w.count(fields.len());
            for (name, fv) in fields {
                w.u32(syms.id(*name));
                encode_value(w, syms, fv);
            }
        }
        Value::Union(marker, inner) => {
            w.u8(VAL_UNION);
            w.u32(syms.id(*marker));
            encode_value(w, syms, inner);
        }
        Value::List(items) => {
            w.u8(VAL_LIST);
            w.count(items.len());
            for item in items {
                encode_value(w, syms, item);
            }
        }
        Value::Set(items) => {
            w.u8(VAL_SET);
            w.count(items.len());
            for item in items {
                encode_value(w, syms, item);
            }
        }
    }
}

fn decode_value(r: &mut Reader<'_>, syms: &SymDecoder, depth: u32) -> Result<Value, CodecError> {
    if depth > MAX_VALUE_DEPTH {
        return Err(CodecError::Corrupt("value nesting too deep"));
    }
    Ok(match r.u8()? {
        VAL_NIL => Value::Nil,
        VAL_INT => Value::Int(r.i64()?),
        VAL_FLOAT => Value::Float(r.f64()?),
        VAL_BOOL => Value::Bool(r.u8()? != 0),
        VAL_STR => Value::Str(r.str()?.to_string()),
        VAL_OID => Value::Oid(Oid(r.u32()?)),
        VAL_TUPLE => {
            let n = r.count(5)?;
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                let name = syms.sym(r.u32()?)?;
                fields.push((name, decode_value(r, syms, depth + 1)?));
            }
            Value::Tuple(fields)
        }
        VAL_UNION => {
            let marker = syms.sym(r.u32()?)?;
            Value::Union(marker, Box::new(decode_value(r, syms, depth + 1)?))
        }
        VAL_LIST => {
            let n = r.count(1)?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(decode_value(r, syms, depth + 1)?);
            }
            Value::List(items)
        }
        VAL_SET => {
            let n = r.count(1)?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(decode_value(r, syms, depth + 1)?);
            }
            Value::Set(items)
        }
        tag => return Err(CodecError::BadTag { what: "value", tag }),
    })
}

const STEP_ATTR: u8 = 0;
const STEP_LIST_ELEM: u8 = 1;
const STEP_SET_ELEM: u8 = 2;
const STEP_DEREF: u8 = 3;

fn encode_step(w: &mut Writer, syms: &mut SymEncoder, s: &ExtStep) {
    match s {
        ExtStep::Attr(a) => {
            w.u8(STEP_ATTR);
            w.u32(syms.id(*a));
        }
        ExtStep::ListElem => w.u8(STEP_LIST_ELEM),
        ExtStep::SetElem => w.u8(STEP_SET_ELEM),
        ExtStep::Deref => w.u8(STEP_DEREF),
    }
}

fn decode_step(r: &mut Reader<'_>, syms: &SymDecoder) -> Result<ExtStep, CodecError> {
    Ok(match r.u8()? {
        STEP_ATTR => ExtStep::Attr(syms.sym(r.u32()?)?),
        STEP_LIST_ELEM => ExtStep::ListElem,
        STEP_SET_ELEM => ExtStep::SetElem,
        STEP_DEREF => ExtStep::Deref,
        tag => {
            return Err(CodecError::BadTag {
                what: "ext step",
                tag,
            })
        }
    })
}

// ---------------------------------------------------------------------------
// Section bodies

fn encode_sections(image: &StoreImage) -> Vec<(u32, Vec<u8>)> {
    let mut syms = SymEncoder::default();

    let mut meta = Writer::new();
    meta.u64(image.applied_seqno);

    let mut objects = Writer::new();
    objects.count(image.objects.len());
    for (class, value) in &image.objects {
        objects.u32(syms.id(*class));
        encode_value(&mut objects, &mut syms, value);
    }

    let mut roots = Writer::new();
    roots.count(image.roots.len());
    for (name, value) in &image.roots {
        roots.u32(syms.id(*name));
        encode_value(&mut roots, &mut syms, value);
    }

    let mut documents = Writer::new();
    documents.count(image.documents.len());
    for oid in &image.documents {
        documents.u32(*oid);
    }

    let mut text = Writer::new();
    text.count(image.text.len());
    for (oid, s) in &image.text {
        text.u32(*oid);
        text.str(s);
    }

    let mut postings = Writer::new();
    postings.count(image.postings.len());
    for (term, docs) in &image.postings {
        postings.str(term);
        postings.count(docs.len());
        for (doc, positions) in docs {
            postings.u64(*doc);
            postings.count(positions.len());
            for p in positions {
                postings.u32(*p);
            }
        }
    }

    let mut doc_words = Writer::new();
    doc_words.count(image.doc_words.len());
    for (doc, words) in &image.doc_words {
        doc_words.u64(*doc);
        doc_words.u32(*words);
    }

    let mut extents = Writer::new();
    extents.count(image.extents.len());
    for (steps, by_root) in &image.extents {
        extents.count(steps.len());
        for step in steps {
            encode_step(&mut extents, &mut syms, step);
        }
        extents.count(by_root.len());
        for (root, targets) in by_root {
            extents.u32(*root);
            extents.count(targets.len());
            for t in targets {
                encode_value(&mut extents, &mut syms, t);
            }
        }
    }

    let mut extent_roots = Writer::new();
    extent_roots.count(image.extent_roots.len());
    for oid in &image.extent_roots {
        extent_roots.u32(*oid);
    }

    // The symbol table is encoded last (every other section registers
    // symbols into it) but readers locate it via the directory regardless.
    let mut symtab = Writer::new();
    syms.encode(&mut symtab);

    vec![
        (SEC_META, meta.into_bytes()),
        (SEC_SYMTAB, symtab.into_bytes()),
        (SEC_OBJECTS, objects.into_bytes()),
        (SEC_ROOTS, roots.into_bytes()),
        (SEC_DOCUMENTS, documents.into_bytes()),
        (SEC_TEXT, text.into_bytes()),
        (SEC_POSTINGS, postings.into_bytes()),
        (SEC_DOCWORDS, doc_words.into_bytes()),
        (SEC_EXTENTS, extents.into_bytes()),
        (SEC_EXTENT_ROOTS, extent_roots.into_bytes()),
    ]
}

/// Encode an image as complete segment-file bytes (magic + checksum +
/// directory + sections).
pub fn encode_segment(image: &StoreImage) -> Vec<u8> {
    let sections = encode_sections(image);
    let header_len = 4 + sections.len() * 20;
    let mut dir = Writer::new();
    dir.count(sections.len());
    let mut off = header_len as u64;
    for (id, body) in &sections {
        dir.u32(*id);
        dir.u64(off);
        dir.u64(body.len() as u64);
        off += body.len() as u64;
    }
    let mut payload = dir.into_bytes();
    for (_, body) in &sections {
        payload.extend_from_slice(body);
    }
    let mut file = Vec::with_capacity(8 + 12 + payload.len());
    file.extend_from_slice(SEGMENT_MAGIC);
    file.extend_from_slice(&crc32(&payload).to_le_bytes());
    file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    file.extend_from_slice(&payload);
    file
}

fn section_table(payload: &[u8]) -> Result<Vec<(u32, &[u8])>, SegmentError> {
    let mut r = Reader::new(payload);
    let n = r.count(20)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let id = r.u32()?;
        let off = r.u64()? as usize;
        let len = r.u64()? as usize;
        let end = off
            .checked_add(len)
            .ok_or(CodecError::Corrupt("section range overflow"))?;
        if end > payload.len() {
            return Err(SegmentError::Codec(CodecError::Corrupt(
                "section range out of payload",
            )));
        }
        out.push((id, &payload[off..end]));
    }
    Ok(out)
}

fn section<'a>(table: &[(u32, &'a [u8])], id: u32) -> Result<&'a [u8], SegmentError> {
    table
        .iter()
        .find(|(sid, _)| *sid == id)
        .map(|(_, body)| *body)
        .ok_or(SegmentError::Codec(CodecError::Corrupt("missing section")))
}

/// Decode segment-file bytes back into a [`StoreImage`].
pub fn decode_segment(bytes: &[u8]) -> Result<StoreImage, SegmentError> {
    if bytes.len() < 20 {
        return Err(SegmentError::BadLength);
    }
    if &bytes[..8] != SEGMENT_MAGIC {
        return Err(SegmentError::BadMagic);
    }
    let crc = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    let len = u64::from_le_bytes([
        bytes[12], bytes[13], bytes[14], bytes[15], bytes[16], bytes[17], bytes[18], bytes[19],
    ]);
    let payload = &bytes[20..];
    if payload.len() as u64 != len {
        return Err(SegmentError::BadLength);
    }
    if crc32(payload) != crc {
        return Err(SegmentError::Checksum);
    }
    let table = section_table(payload)?;

    let syms = SymDecoder::decode(&mut Reader::new(section(&table, SEC_SYMTAB)?))?;

    let mut r = Reader::new(section(&table, SEC_META)?);
    let applied_seqno = r.u64()?;
    r.finish()?;

    let mut r = Reader::new(section(&table, SEC_OBJECTS)?);
    let n = r.count(5)?;
    let mut objects = Vec::with_capacity(n);
    for _ in 0..n {
        let class = syms.sym(r.u32()?)?;
        objects.push((class, decode_value(&mut r, &syms, 0)?));
    }
    r.finish()?;

    let mut r = Reader::new(section(&table, SEC_ROOTS)?);
    let n = r.count(5)?;
    let mut roots = Vec::with_capacity(n);
    for _ in 0..n {
        let name = syms.sym(r.u32()?)?;
        roots.push((name, decode_value(&mut r, &syms, 0)?));
    }
    r.finish()?;

    let mut r = Reader::new(section(&table, SEC_DOCUMENTS)?);
    let n = r.count(4)?;
    let mut documents = Vec::with_capacity(n);
    for _ in 0..n {
        documents.push(r.u32()?);
    }
    r.finish()?;

    let mut r = Reader::new(section(&table, SEC_TEXT)?);
    let n = r.count(8)?;
    let mut text = Vec::with_capacity(n);
    for _ in 0..n {
        let oid = r.u32()?;
        text.push((oid, r.str()?.to_string()));
    }
    r.finish()?;

    let mut r = Reader::new(section(&table, SEC_POSTINGS)?);
    let n = r.count(8)?;
    let mut postings = Vec::with_capacity(n);
    for _ in 0..n {
        let term = r.str()?.to_string();
        let ndocs = r.count(12)?;
        let mut docs = Vec::with_capacity(ndocs);
        for _ in 0..ndocs {
            let doc = r.u64()?;
            let npos = r.count(4)?;
            let mut positions = Vec::with_capacity(npos);
            for _ in 0..npos {
                positions.push(r.u32()?);
            }
            docs.push((doc, positions));
        }
        postings.push((term, docs));
    }
    r.finish()?;

    let mut r = Reader::new(section(&table, SEC_DOCWORDS)?);
    let n = r.count(12)?;
    let mut doc_words = Vec::with_capacity(n);
    for _ in 0..n {
        let doc = r.u64()?;
        doc_words.push((doc, r.u32()?));
    }
    r.finish()?;

    let mut r = Reader::new(section(&table, SEC_EXTENTS)?);
    let n = r.count(8)?;
    let mut extents = Vec::with_capacity(n);
    for _ in 0..n {
        let nsteps = r.count(1)?;
        let mut steps = Vec::with_capacity(nsteps);
        for _ in 0..nsteps {
            steps.push(decode_step(&mut r, &syms)?);
        }
        let nroots = r.count(8)?;
        let mut by_root = Vec::with_capacity(nroots);
        for _ in 0..nroots {
            let root = r.u32()?;
            let ntargets = r.count(1)?;
            let mut targets = Vec::with_capacity(ntargets);
            for _ in 0..ntargets {
                targets.push(decode_value(&mut r, &syms, 0)?);
            }
            by_root.push((root, targets));
        }
        extents.push((steps, by_root));
    }
    r.finish()?;

    let mut r = Reader::new(section(&table, SEC_EXTENT_ROOTS)?);
    let n = r.count(4)?;
    let mut extent_roots = Vec::with_capacity(n);
    for _ in 0..n {
        extent_roots.push(r.u32()?);
    }
    r.finish()?;

    Ok(StoreImage {
        applied_seqno,
        objects,
        roots,
        documents,
        text,
        postings,
        doc_words,
        extents,
        extent_roots,
    })
}

// ---------------------------------------------------------------------------
// Files

/// The file name of the segment capturing everything up to `seqno`.
pub fn segment_file_name(seqno: u64) -> String {
    format!("seg-{seqno:016x}.dqs")
}

/// Parse a segment file name back to its seqno.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("seg-")?.strip_suffix(".dqs")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

fn sync_dir(dir: &Path) -> io::Result<()> {
    // Directory fsync makes the rename itself durable; on platforms where
    // opening a directory for write is not supported this is a no-op.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Write `image` as a new segment in `dir` using the atomic tmp → fsync →
/// rename → dir-fsync discipline. Returns the final path and byte size.
pub fn write_segment(dir: &Path, image: &StoreImage) -> io::Result<(PathBuf, u64)> {
    let bytes = encode_segment(image);
    let final_path = dir.join(segment_file_name(image.applied_seqno));
    let tmp_path = dir.join(format!("{}.tmp", segment_file_name(image.applied_seqno)));
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    sync_dir(dir)?;
    Ok((final_path, bytes.len() as u64))
}

/// Read and fully validate the segment at `path`.
pub fn read_segment(path: &Path) -> Result<StoreImage, SegmentError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    decode_segment(&bytes)
}

/// Segment files in `dir`, oldest first (by applied seqno). Non-segment
/// names (including `.tmp` leftovers) are ignored.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seqno) = entry.file_name().to_str().and_then(parse_segment_name) {
            out.push((seqno, entry.path()));
        }
    }
    out.sort_by_key(|(seqno, _)| *seqno);
    Ok(out)
}

/// Load the newest segment that validates, skipping corrupt ones. Returns
/// the loaded `(seqno, image, byte size)` (if any segment was good) and how
/// many newer segments were skipped as corrupt.
pub fn load_newest_valid(dir: &Path) -> io::Result<(Option<LoadedSegment>, usize)> {
    let mut skipped = 0usize;
    let segments = list_segments(dir)?;
    for (seqno, path) in segments.into_iter().rev() {
        match read_segment(&path) {
            Ok(image) => {
                let size = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                return Ok((Some((seqno, image, size)), skipped));
            }
            Err(SegmentError::Io(e)) if e.kind() == io::ErrorKind::NotFound => skipped += 1,
            Err(_) => skipped += 1,
        }
    }
    Ok((None, skipped))
}

/// Remove checkpoint segments older than the newest `keep` **valid** ones.
///
/// Only validating segments count toward the retention quota, so a corrupt
/// newest segment never causes its recovery fallback to be collected —
/// after GC, [`load_newest_valid`] still has `keep` good generations to
/// fall back through. `keep` is clamped to at least 1. Corrupt segments
/// newer than the quota fill are left in place as evidence; everything
/// older than the quota fill — valid or not — is removed. Returns the
/// removed paths, oldest first.
pub fn gc_segments(dir: &Path, keep: usize) -> io::Result<Vec<PathBuf>> {
    let keep = keep.max(1);
    let mut valid_kept = 0usize;
    let mut removed = Vec::new();
    for (_seqno, path) in list_segments(dir)?.into_iter().rev() {
        if valid_kept < keep {
            if read_segment(&path).is_ok() {
                valid_kept += 1;
            }
            continue;
        }
        fs::remove_file(&path)?;
        removed.push(path);
    }
    if !removed.is_empty() {
        sync_dir(dir)?;
    }
    removed.reverse();
    Ok(removed)
}

// ---------------------------------------------------------------------------
// Store meta (schema text + declared roots — needed before any DocStore
// can be constructed, so it lives outside the segment/WAL cycle and is
// written once at store creation)

/// Write the store meta file (DTD text + declared extra root names).
pub fn write_meta(dir: &Path, dtd_text: &str, extra_roots: &[String]) -> io::Result<()> {
    let mut w = Writer::new();
    w.str(dtd_text);
    w.count(extra_roots.len());
    for root in extra_roots {
        w.str(root);
    }
    let payload = w.into_bytes();
    let mut bytes = Vec::with_capacity(12 + payload.len());
    bytes.extend_from_slice(META_MAGIC);
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);
    let tmp = dir.join(format!("{META_FILE}.tmp"));
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, dir.join(META_FILE))?;
    sync_dir(dir)?;
    Ok(())
}

/// Read and validate the store meta file: `(dtd_text, extra_roots)`.
pub fn read_meta(dir: &Path) -> Result<(String, Vec<String>), SegmentError> {
    let mut bytes = Vec::new();
    File::open(dir.join(META_FILE))?.read_to_end(&mut bytes)?;
    if bytes.len() < 12 {
        return Err(SegmentError::BadLength);
    }
    if &bytes[..8] != META_MAGIC {
        return Err(SegmentError::BadMagic);
    }
    let crc = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    let payload = &bytes[12..];
    if crc32(payload) != crc {
        return Err(SegmentError::Checksum);
    }
    let mut r = Reader::new(payload);
    let dtd_text = r.str()?.to_string();
    let n = r.count(4)?;
    let mut extra_roots = Vec::with_capacity(n);
    for _ in 0..n {
        extra_roots.push(r.str()?.to_string());
    }
    r.finish()?;
    Ok((dtd_text, extra_roots))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    fn sample_image() -> StoreImage {
        let title = Sym::new("title");
        let body = Sym::new("body");
        let para = Sym::new("para");
        StoreImage {
            applied_seqno: 42,
            objects: vec![
                (
                    Sym::new("Article"),
                    Value::tuple([
                        (title, Value::str("On Durability")),
                        (body, Value::List(vec![Value::Oid(Oid(1))])),
                    ]),
                ),
                (para, Value::union("para", Value::str("text"))),
            ],
            roots: vec![
                (Sym::new("my_article"), Value::Oid(Oid(0))),
                (
                    Sym::new("scores"),
                    Value::set([Value::Int(3), Value::Float(-0.5)]),
                ),
            ],
            documents: vec![0],
            text: vec![(0, "On Durability text".to_string())],
            postings: vec![
                ("durability".to_string(), vec![(0, vec![1])]),
                ("text".to_string(), vec![(0, vec![2, 7])]),
            ],
            doc_words: vec![(0, 3)],
            extents: vec![
                (
                    vec![ExtStep::Attr(title)],
                    vec![(0, vec![Value::str("On Durability")])],
                ),
                (
                    vec![ExtStep::Attr(body), ExtStep::ListElem, ExtStep::Deref],
                    vec![(0, vec![Value::union("para", Value::str("text"))])],
                ),
            ],
            extent_roots: vec![0],
        }
    }

    #[test]
    fn segment_round_trips() {
        let image = sample_image();
        let bytes = encode_segment(&image);
        let back = decode_segment(&bytes).unwrap();
        assert_eq!(back, image);
    }

    #[test]
    fn any_byte_flip_is_detected() {
        let bytes = encode_segment(&sample_image());
        for at in 0..bytes.len() {
            let mut damaged = bytes.clone();
            damaged[at] ^= 0x40;
            assert!(
                decode_segment(&damaged).is_err(),
                "flip at byte {at} accepted"
            );
        }
    }

    #[test]
    fn truncation_at_every_cut_is_detected() {
        let bytes = encode_segment(&sample_image());
        for cut in 0..bytes.len() {
            assert!(
                decode_segment(&bytes[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn file_names_round_trip() {
        assert_eq!(segment_file_name(0x2a), "seg-000000000000002a.dqs");
        assert_eq!(parse_segment_name("seg-000000000000002a.dqs"), Some(0x2a));
        assert_eq!(parse_segment_name("seg-000000000000002a.dqs.tmp"), None);
        assert_eq!(parse_segment_name("wal.log"), None);
        assert_eq!(parse_segment_name("seg-2a.dqs"), None);
    }

    #[test]
    fn newest_valid_segment_wins_and_corrupt_ones_are_skipped() {
        let dir = TempDir::new("docql-seg-test").unwrap();
        let mut old = sample_image();
        old.applied_seqno = 10;
        let mut new = sample_image();
        new.applied_seqno = 20;
        write_segment(dir.path(), &old).unwrap();
        let (new_path, _) = write_segment(dir.path(), &new).unwrap();

        let (loaded, skipped) = load_newest_valid(dir.path()).unwrap();
        let (seqno, image, size) = loaded.unwrap();
        assert_eq!((seqno, skipped), (20, 0));
        assert_eq!(image, new);
        assert!(size > 0);

        // Corrupt the newest: recovery falls back to the older one.
        let mut bytes = fs::read(&new_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&new_path, &bytes).unwrap();
        let (loaded, skipped) = load_newest_valid(dir.path()).unwrap();
        let (seqno, image, _) = loaded.unwrap();
        assert_eq!((seqno, skipped), (10, 1));
        assert_eq!(image, old);
    }

    #[test]
    fn gc_counts_only_valid_segments_toward_the_quota() {
        let dir = TempDir::new("docql-seg-gc-test").unwrap();
        let mut paths = Vec::new();
        for seqno in [10u64, 20, 30] {
            let mut image = sample_image();
            image.applied_seqno = seqno;
            paths.push(write_segment(dir.path(), &image).unwrap().0);
        }

        // Corrupt the newest, then GC with keep=1: the corrupt file must
        // not count, so seg-20 (the fallback) survives and only seg-10
        // goes. Recovery afterwards still finds a valid generation.
        let mut bytes = fs::read(&paths[2]).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&paths[2], &bytes).unwrap();
        let removed = gc_segments(dir.path(), 1).unwrap();
        assert_eq!(removed, vec![paths[0].clone()]);
        let (loaded, skipped) = load_newest_valid(dir.path()).unwrap();
        let (seqno, _, _) = loaded.unwrap();
        assert_eq!((seqno, skipped), (20, 1));

        // keep=0 is clamped to 1; with everything already within quota
        // (one corrupt newer + one valid), nothing more is collected.
        assert!(gc_segments(dir.path(), 0).unwrap().is_empty());
        assert_eq!(list_segments(dir.path()).unwrap().len(), 2);

        // All segments valid: keep=1 removes every older generation.
        let mut image = sample_image();
        image.applied_seqno = 40;
        write_segment(dir.path(), &image).unwrap();
        let removed = gc_segments(dir.path(), 1).unwrap();
        assert_eq!(removed.len(), 2, "seg-20 and corrupt seg-30 collected");
        let left = list_segments(dir.path()).unwrap();
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].0, 40);
    }

    #[test]
    fn meta_round_trips_and_rejects_corruption() {
        let dir = TempDir::new("docql-meta-test").unwrap();
        write_meta(
            dir.path(),
            "<!DOCTYPE article []>",
            &["my_article".to_string()],
        )
        .unwrap();
        let (dtd, roots) = read_meta(dir.path()).unwrap();
        assert_eq!(dtd, "<!DOCTYPE article []>");
        assert_eq!(roots, vec!["my_article".to_string()]);

        let path = dir.join(META_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let at = bytes.len() - 3;
        bytes[at] ^= 1;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_meta(dir.path()), Err(SegmentError::Checksum)));
    }
}
