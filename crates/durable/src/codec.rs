//! Flat little-endian binary codec shared by WAL records and snapshot
//! segments: fixed-width integers, length-prefixed byte strings, and a
//! typed error that never panics on corrupt input — every read is bounds-
//! checked, so a decoder fed garbage returns [`CodecError`], it does not
//! index out of range or allocate unboundedly.

use std::fmt;

/// Why a decode failed. Decoders run behind a checksum, so in practice
/// these surface only for truncated files and software bugs — but they are
/// the reason corrupt input is an `Err`, never undefined behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes remain than the next field needs.
    Truncated {
        /// Bytes the read needed.
        want: usize,
        /// Bytes that remained.
        have: usize,
    },
    /// An enum tag byte outside the encodable range.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8,
    /// A structural invariant failed (named for diagnostics).
    Corrupt(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { want, have } => {
                write!(f, "truncated: wanted {want} byte(s), {have} left")
            }
            CodecError::BadTag { what, tag } => write!(f, "bad {what} tag {tag:#04x}"),
            CodecError::BadUtf8 => f.write_str("string is not valid UTF-8"),
            CodecError::Corrupt(what) => write!(f, "corrupt {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only byte sink with the codec's write vocabulary.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Has nothing been written?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `f64` by bit pattern (round-trips NaNs and signed zeros exactly).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Length-prefixed (`u32`) raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// An element count (`u32`), for the sequence that follows.
    pub fn count(&mut self, n: usize) {
        self.u32(n as u32);
    }
}

/// Bounds-checked cursor over encoded bytes.
#[derive(Debug, Clone, Copy)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Has everything been consumed?
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                want: n,
                have: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// One raw byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Length-prefixed raw bytes (borrowed; the length is validated against
    /// the remaining input before anything is sliced).
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// Length-prefixed UTF-8 string (borrowed).
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| CodecError::BadUtf8)
    }

    /// An element count, sanity-bounded: a count implies at least
    /// `min_elem_bytes` per element, so counts larger than the remaining
    /// input can carry are rejected before any allocation sized by them.
    pub fn count(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(CodecError::Corrupt("element count exceeds input"));
        }
        Ok(n)
    }

    /// Require full consumption (catches trailing garbage inside a
    /// checksummed envelope — i.e. encoder/decoder version skew).
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(CodecError::Corrupt("trailing bytes"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.i64(-42);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.str("héllo");
        w.bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.str("some payload");
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(r.str().is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn oversized_count_rejected_before_allocation() {
        let mut w = Writer::new();
        w.u32(u32::MAX); // claims 4 billion elements
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(
            r.count(8),
            Err(CodecError::Corrupt("element count exceeds input"))
        );
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(r.u8().unwrap(), 1);
        assert_eq!(r.finish(), Err(CodecError::Corrupt("trailing bytes")));
    }
}
