//! Vendored CRC-32 (IEEE 802.3: reflected, polynomial `0xEDB88320`) — the
//! checksum guarding every WAL record and snapshot segment. Table-driven,
//! with the table built at compile time; no dependency, no allocation.
//!
//! CRC-32 detects all single-bit and single-byte errors and all burst
//! errors up to 32 bits — exactly the corruption shapes a torn or bit-rotted
//! log tail exhibits — which is what lets recovery distinguish "valid
//! prefix" from "damage starts here" without trusting any length field.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 of `data` (IEEE, as produced by zlib's `crc32`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_every_single_byte_flip() {
        let data = b"a checksummed write-ahead log record payload";
        let base = crc32(data);
        let mut buf = data.to_vec();
        for i in 0..buf.len() {
            for bit in 0..8u8 {
                buf[i] ^= 1 << bit;
                assert_ne!(crc32(&buf), base, "flip at byte {i} bit {bit} undetected");
                buf[i] ^= 1 << bit;
            }
        }
    }
}
