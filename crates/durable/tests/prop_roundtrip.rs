//! Property tests for the durable formats, on the in-repo `docql-prop`
//! harness (shrinking, `DOCQL_PROP_SEED`/`DOCQL_PROP_CASES` from the
//! environment):
//!
//! * WAL frames: encode → scan is the identity on any record sequence;
//!   a single bit flip anywhere truncates the scan to exactly the records
//!   before the damaged frame; scanning arbitrary garbage never panics.
//! * Segments: encode → decode is the identity on any [`StoreImage`]
//!   (random values, postings, extent targets included); any single bit
//!   flip and any truncation is detected — a damaged segment is never
//!   decoded into a different image.

use docql_durable::snapshot::{decode_segment, encode_segment, StoreImage};
use docql_durable::wal::{encode_frame, scan, WalOp, WalRecord};
use docql_model::{sym, Oid, Value};
use docql_paths::ExtStep;
use docql_prop::{
    bool_any, check, element, f64_any, i64_any, just, one_of, prop_assert, prop_assert_eq,
    recursive, string_of, usize_in, vec_of, zip, zip3, Gen,
};

const CASES: usize = 128;

fn small_name() -> Gen<String> {
    element(
        ["a", "b", "title", "body", "sec"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    )
}

/// Arbitrary [`Value`], including floats (compared via the model's own
/// `PartialEq`, which is total), oids, and nested collections.
fn arb_value() -> Gen<Value> {
    let leaf = one_of(vec![
        just(Value::Nil),
        i64_any().map(|i| Value::Int(*i)),
        f64_any().map(|f| Value::Float(*f)),
        bool_any().map(|b| Value::Bool(*b)),
        string_of("abc xyz<&>/\n", 0, 8).map(|s| Value::str(s.clone())),
        usize_in(0..10_000).map(|o| Value::Oid(Oid(*o as u32))),
    ]);
    recursive(leaf, 3, |inner| {
        one_of(vec![
            vec_of(inner.clone(), 0..4).map(|vs| Value::list(vs.clone())),
            vec_of(inner.clone(), 0..4).map(|vs| Value::set(vs.clone())),
            vec_of(zip(small_name(), inner.clone()), 0..3).map(|fs| Value::tuple(fs.clone())),
            zip(small_name(), inner.clone()).map(|(n, v)| Value::union(n.clone(), v.clone())),
        ])
    })
}

fn arb_step() -> Gen<ExtStep> {
    one_of(vec![
        small_name().map(|n| ExtStep::Attr(sym(n))),
        just(ExtStep::ListElem),
        just(ExtStep::SetElem),
        just(ExtStep::Deref),
    ])
}

fn arb_u32(bound: usize) -> Gen<u32> {
    usize_in(0..bound).map(|x| *x as u32)
}

/// Arbitrary [`StoreImage`] — not necessarily a *consistent* store, which
/// is the point: the codec must round-trip anything the type can hold.
fn arb_image() -> Gen<StoreImage> {
    let objects = vec_of(zip(small_name(), arb_value()), 0..6).map(|os| {
        os.iter()
            .map(|(n, v)| (sym(n), v.clone()))
            .collect::<Vec<_>>()
    });
    let roots = vec_of(zip(small_name(), arb_value()), 0..4).map(|rs| {
        rs.iter()
            .map(|(n, v)| (sym(n), v.clone()))
            .collect::<Vec<_>>()
    });
    let postings = vec_of(
        zip(
            string_of("abcdef", 1, 6),
            vec_of(
                zip(
                    usize_in(0..500).map(|d| *d as u64),
                    vec_of(arb_u32(10_000), 0..5),
                ),
                0..4,
            ),
        ),
        0..4,
    );
    let extents = vec_of(
        zip(
            vec_of(arb_step(), 0..4),
            vec_of(zip(arb_u32(10_000), vec_of(arb_value(), 0..3)), 0..3),
        ),
        0..3,
    );
    let scalars = zip3(
        usize_in(0..1_000_000).map(|s| *s as u64),
        vec_of(arb_u32(10_000), 0..6),
        vec_of(zip(arb_u32(10_000), string_of("abc <&>\n", 0, 12)), 0..4),
    );
    let words = zip(
        vec_of(
            zip(usize_in(0..500).map(|d| *d as u64), arb_u32(1_000)),
            0..4,
        ),
        vec_of(arb_u32(10_000), 0..4),
    );
    zip3(zip3(objects, roots, scalars), zip(postings, extents), words).map(
        |(
            (objects, roots, (applied_seqno, documents, text)),
            (postings, extents),
            (doc_words, extent_roots),
        )| {
            StoreImage {
                applied_seqno: *applied_seqno,
                objects: objects.clone(),
                roots: roots.clone(),
                documents: documents.clone(),
                text: text.clone(),
                postings: postings.clone(),
                doc_words: doc_words.clone(),
                extents: extents.clone(),
                extent_roots: extent_roots.clone(),
            }
        },
    )
}

fn arb_op() -> Gen<WalOp> {
    one_of(vec![
        string_of("abc xyz<&>/\n", 0, 24).map(|s| WalOp::Ingest { sgml: s.clone() }),
        zip(small_name(), arb_u32(10_000)).map(|(n, o)| WalOp::Bind {
            name: n.clone(),
            oid: *o,
        }),
    ])
}

fn records_of(ops: &[WalOp]) -> Vec<WalRecord> {
    ops.iter()
        .enumerate()
        .map(|(i, op)| WalRecord {
            seqno: i as u64 + 1,
            op: op.clone(),
        })
        .collect()
}

fn log_bytes(records: &[WalRecord]) -> (Vec<u8>, Vec<usize>) {
    let mut buf = Vec::new();
    let mut bounds = vec![0usize];
    for r in records {
        buf.extend_from_slice(&encode_frame(r));
        bounds.push(buf.len());
    }
    (buf, bounds)
}

#[test]
fn wal_records_round_trip_through_scan() {
    check(
        "wal_records_round_trip_through_scan",
        256,
        &vec_of(arb_op(), 0..8),
        |ops| {
            let records = records_of(ops);
            let (buf, _) = log_bytes(&records);
            let scanned = scan(&buf);
            prop_assert_eq!(&scanned.records, &records);
            prop_assert_eq!(scanned.valid_len, buf.len() as u64);
            prop_assert_eq!(scanned.truncated_bytes, 0u64);
            Ok(())
        },
    );
}

#[test]
fn wal_single_bit_flip_truncates_to_the_frame_before_the_damage() {
    let gen = zip3(vec_of(arb_op(), 1..8), usize_in(0..1 << 20), usize_in(0..8));
    check(
        "wal_single_bit_flip_truncates_to_the_frame_before_the_damage",
        256,
        &gen,
        |(ops, pos_raw, bit)| {
            let records = records_of(ops);
            let (mut buf, bounds) = log_bytes(&records);
            let pos = pos_raw % buf.len();
            buf[pos] ^= 1 << bit;
            // The frame the flip lands in: bounds[k] <= pos < bounds[k+1].
            let k = bounds.partition_point(|&b| b <= pos) - 1;
            let scanned = scan(&buf);
            prop_assert_eq!(&scanned.records, &records[..k]);
            prop_assert_eq!(scanned.valid_len, bounds[k] as u64);
            prop_assert_eq!(scanned.truncated_bytes, (buf.len() - bounds[k]) as u64);
            Ok(())
        },
    );
}

#[test]
fn wal_scan_of_arbitrary_garbage_never_panics_and_stays_in_bounds() {
    check(
        "wal_scan_of_arbitrary_garbage_never_panics_and_stays_in_bounds",
        256,
        &vec_of(usize_in(0..256), 0..64),
        |bytes| {
            let buf: Vec<u8> = bytes.iter().map(|&b| b as u8).collect();
            let scanned = scan(&buf);
            prop_assert!(scanned.valid_len <= buf.len() as u64);
            prop_assert_eq!(
                scanned.valid_len + scanned.truncated_bytes,
                buf.len() as u64
            );
            Ok(())
        },
    );
}

#[test]
fn segment_encode_decode_is_the_identity() {
    check(
        "segment_encode_decode_is_the_identity",
        CASES,
        &arb_image(),
        |image| {
            let bytes = encode_segment(image);
            let back = decode_segment(&bytes)
                .map_err(|e| format!("decode of a clean segment failed: {e}"))?;
            prop_assert_eq!(&back, image);
            Ok(())
        },
    );
}

#[test]
fn segment_single_bit_flip_is_always_detected() {
    let gen = zip3(arb_image(), usize_in(0..1 << 20), usize_in(0..8));
    check(
        "segment_single_bit_flip_is_always_detected",
        CASES,
        &gen,
        |(image, pos_raw, bit)| {
            let mut bytes = encode_segment(image);
            let pos = pos_raw % bytes.len();
            bytes[pos] ^= 1 << bit;
            prop_assert!(
                decode_segment(&bytes).is_err(),
                "flip at byte {} bit {} went undetected",
                pos,
                bit
            );
            Ok(())
        },
    );
}

#[test]
fn segment_truncation_is_always_detected() {
    let gen = zip(arb_image(), usize_in(0..1 << 20));
    check(
        "segment_truncation_is_always_detected",
        CASES,
        &gen,
        |(image, cut_raw)| {
            let bytes = encode_segment(image);
            let cut = cut_raw % bytes.len(); // strictly shorter than full
            prop_assert!(
                decode_segment(&bytes[..cut]).is_err(),
                "truncation to {} of {} bytes went undetected",
                cut,
                bytes.len()
            );
            Ok(())
        },
    );
}
